//! Cross-crate integration: the full evaluation pipeline on a small mesh.
//!
//! These tests run real experiments (simulator + fault models + power +
//! controllers) and assert the *qualitative* properties the paper's
//! evaluation depends on — delivery guarantees, scheme orderings under
//! stress, determinism.

use rlnoc::core::benchmarks::{PhaseSpec, WorkloadProfile};
use rlnoc::core::experiment::{ErrorControlScheme, Experiment, ExperimentReport};
use rlnoc::sim::config::NocConfig;
use rlnoc::sim::traffic::TrafficPattern;

/// A small, hot configuration that exercises every protocol path in a
/// few seconds. The error rate is raised above the default calibration
/// because the 4×4 mesh's short paths (≈2.7 hops) otherwise keep the CRC
/// baseline out of the error-dominated regime the assertions probe.
fn run(scheme: ErrorControlScheme, seed: u64) -> ExperimentReport {
    Experiment::builder()
        .scheme(scheme)
        .workload(WorkloadProfile::canneal())
        .noc(NocConfig::builder().mesh(4, 4).build())
        .timing(rlnoc::fault::timing::TimingErrorParams {
            p_ref: 5e-3,
            ..Default::default()
        })
        .seed(seed)
        .pretrain_cycles(60_000)
        .warmup_cycles(1_000)
        .measure_cycles(10_000)
        .drain_limit(80_000)
        .build()
        .expect("valid configuration")
        .run()
}

#[test]
fn every_scheme_delivers_every_packet() {
    for scheme in ErrorControlScheme::ALL {
        let report = run(scheme, 5);
        assert!(report.drained, "{scheme}: network failed to drain");
        assert_eq!(
            report.packets_delivered, report.packets_injected,
            "{scheme}: packets lost"
        );
        assert_eq!(report.silent_corruptions, 0, "{scheme}: corrupted delivery");
        assert!(report.avg_latency_cycles > 0.0);
        assert!(report.total_energy_j() > 0.0);
    }
}

#[test]
fn arq_reduces_retransmission_traffic_vs_crc() {
    let crc = run(ErrorControlScheme::StaticCrc, 6);
    let arq = run(ErrorControlScheme::StaticArqEcc, 6);
    assert!(
        arq.retransmitted_packets_equiv < crc.retransmitted_packets_equiv,
        "ARQ {} >= CRC {}",
        arq.retransmitted_packets_equiv,
        crc.retransmitted_packets_equiv
    );
    assert!(
        arq.avg_latency_cycles < crc.avg_latency_cycles,
        "per-hop correction must beat end-to-end retransmission on latency"
    );
}

#[test]
fn crc_scheme_pays_with_crc_failures_not_nacks() {
    let crc = run(ErrorControlScheme::StaticCrc, 7);
    assert!(
        crc.crc_failures > 0,
        "hot canneal must produce CRC failures"
    );
    assert_eq!(crc.hop_nacks, 0, "no ARQ hardware in the CRC scheme");
    assert_eq!(crc.ecc_corrections, 0);
    assert_eq!(crc.flit_retransmissions, 0);
}

#[test]
fn arq_scheme_corrects_most_errors_in_place() {
    let arq = run(ErrorControlScheme::StaticArqEcc, 7);
    assert!(arq.ecc_corrections > 0, "SECDED must correct single flips");
    assert!(
        arq.ecc_corrections > arq.hop_nacks,
        "single-bit errors dominate the flip distribution"
    );
    assert!(
        arq.crc_failures < arq.ecc_corrections / 4,
        "few multi-bit escapes reach the destination CRC"
    );
}

#[test]
fn experiments_are_bit_reproducible() {
    let a = run(ErrorControlScheme::ProposedRl, 11);
    let b = run(ErrorControlScheme::ProposedRl, 11);
    assert_eq!(a, b);
}

#[test]
fn learning_schemes_track_static_arq_or_better_on_hot_uniform_load() {
    // On a uniformly hot workload the optimum is close to "ECC everywhere",
    // so the adaptive schemes must land in the CRC–ARQ latency band, far
    // from the CRC baseline.
    let crc = run(ErrorControlScheme::StaticCrc, 8);
    let arq = run(ErrorControlScheme::StaticArqEcc, 8);
    for scheme in [
        ErrorControlScheme::DecisionTree,
        ErrorControlScheme::ProposedRl,
    ] {
        let adaptive = run(scheme, 8);
        assert!(
            adaptive.avg_latency_cycles < crc.avg_latency_cycles,
            "{scheme} latency {} not below CRC {}",
            adaptive.avg_latency_cycles,
            crc.avg_latency_cycles
        );
        assert!(
            adaptive.avg_latency_cycles < arq.avg_latency_cycles * 2.0,
            "{scheme} latency {} far above ARQ {}",
            adaptive.avg_latency_cycles,
            arq.avg_latency_cycles
        );
    }
}

#[test]
fn cold_workload_lets_adaptive_schemes_gate_ecc_off() {
    // swaptions is light and cool: the DT (and usually RL) should spend
    // most router-epochs in mode 0, saving the ECC overhead.
    let report = Experiment::builder()
        .scheme(ErrorControlScheme::DecisionTree)
        .workload(WorkloadProfile::swaptions())
        .noc(NocConfig::builder().mesh(4, 4).build())
        .seed(5)
        .pretrain_cycles(60_000)
        .warmup_cycles(1_000)
        .measure_cycles(10_000)
        .drain_limit(80_000)
        .build()
        .expect("valid configuration")
        .run();
    let total: u64 = report.mode_histogram.iter().sum();
    assert!(
        report.mode_histogram[0] * 2 > total,
        "expected mostly mode 0 on a cold workload, got {:?}",
        report.mode_histogram
    );
}

#[test]
fn custom_workload_phases_drive_the_pipeline() {
    let workload = WorkloadProfile {
        name: "spiky",
        phases: vec![
            PhaseSpec {
                cycles: 200,
                injection_rate: 0.03,
                pattern: TrafficPattern::Transpose,
            },
            PhaseSpec {
                cycles: 800,
                injection_rate: 0.002,
                pattern: TrafficPattern::UniformRandom,
            },
        ],
        duration_cycles: 8_000,
    };
    let report = Experiment::builder()
        .scheme(ErrorControlScheme::StaticArqEcc)
        .workload(workload)
        .noc(NocConfig::builder().mesh(4, 4).build())
        .seed(3)
        .warmup_cycles(500)
        .drain_limit(60_000)
        .build()
        .expect("valid configuration")
        .run();
    assert!(report.drained);
    assert_eq!(report.packets_delivered, report.packets_injected);
    assert_eq!(report.workload, "spiky");
}
