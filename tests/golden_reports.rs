//! Golden-report regression tests.
//!
//! Each file under `tests/golden/` is the canonical rendering
//! ([`rlnoc_runner::render_report`]) of one fixed-seed experiment —
//! one per error-control scheme on a 4×4 mesh. The simulator kernel is
//! free to change *how* it computes (arena allocation, event-wheel
//! reuse, dense packet tables), but a freshly generated report must
//! stay byte-identical to the committed fixture. Any behavioural drift
//! — an extra RNG draw, a reordered arbiter grant, a changed counter —
//! shows up here as a diff.
//!
//! To intentionally re-baseline after a semantic change:
//!
//! ```sh
//! REGEN_GOLDEN=1 cargo test --test golden_reports
//! ```

use rlnoc_core::campaign::Campaign;
use rlnoc_core::{ErrorControlScheme, WorkloadProfile};
use std::path::PathBuf;

/// The fixed campaign whose per-scheme reports are pinned. Small enough
/// for tier-1 (4×4 mesh, short phases), long enough that every scheme
/// exercises its error-control path (retransmissions, NACKs, ECC
/// corrections all non-zero at the quick-campaign fault rate).
fn golden_campaign() -> Campaign {
    let mut campaign = Campaign::quick();
    campaign.workloads = vec![WorkloadProfile::blackscholes()];
    campaign.schemes = vec![
        ErrorControlScheme::StaticCrc,
        ErrorControlScheme::StaticArqEcc,
        ErrorControlScheme::ProposedRl,
    ];
    campaign.pretrain_cycles = 4_000;
    campaign.measure_cycles = Some(4_000);
    campaign
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.report"))
}

fn fixture_name(scheme: ErrorControlScheme) -> &'static str {
    match scheme {
        ErrorControlScheme::StaticCrc => "crc",
        ErrorControlScheme::StaticArqEcc => "arq_ecc",
        ErrorControlScheme::DecisionTree => "dt",
        ErrorControlScheme::ProposedRl => "rl",
    }
}

#[test]
fn reports_match_committed_goldens_byte_for_byte() {
    let regen = std::env::var("REGEN_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0");
    let campaign = golden_campaign();
    let result = campaign.run();
    assert_eq!(result.reports.len(), 3);

    let mut mismatches = Vec::new();
    for report in &result.reports {
        let fresh = rlnoc_runner::render_report(report);
        let path = golden_path(fixture_name(report.scheme));
        if regen {
            std::fs::write(&path, &fresh).expect("write golden fixture");
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); generate with REGEN_GOLDEN=1",
                path.display()
            )
        });
        if fresh != committed {
            mismatches.push(format!(
                "{}:\n--- committed\n{committed}\n--- fresh\n{fresh}",
                path.display()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "report drift vs golden fixtures (REGEN_GOLDEN=1 re-baselines):\n{}",
        mismatches.join("\n")
    );
}

/// The batched lockstep engine against the same fixtures: all three
/// scheme tasks run as one mixed `BatchSim` group (they share a mesh
/// and seed, so they also share route tables) and every rendered
/// report must still match its committed golden byte for byte.
#[test]
fn batched_engine_reproduces_the_committed_goldens() {
    let campaign = golden_campaign();
    let tasks = campaign.tasks();
    let reports =
        rlnoc_core::Experiment::run_batch(tasks.iter().map(|t| campaign.experiment(t)).collect());
    assert_eq!(reports.len(), 3);
    for report in &reports {
        let fresh = rlnoc_runner::render_report(report);
        let path = golden_path(fixture_name(report.scheme));
        let Ok(committed) = std::fs::read_to_string(&path) else {
            // reports_match_committed_goldens_byte_for_byte reports the
            // missing-fixture case with a regeneration hint.
            continue;
        };
        assert_eq!(
            fresh,
            committed,
            "batched report drifts from {}",
            path.display()
        );
    }
}

#[test]
fn golden_fixtures_parse_back_bit_exactly() {
    // The fixtures are not just byte-stable — they round-trip through
    // the checkpoint parser, so a resume sees exactly these values.
    for name in ["crc", "arq_ecc", "rl"] {
        let path = golden_path(name);
        let Ok(text) = std::fs::read_to_string(&path) else {
            // reports_match_committed_goldens_byte_for_byte reports the
            // missing-fixture case with a regeneration hint.
            continue;
        };
        let report = rlnoc_runner::parse_report(&format!("{text}end\n")).expect("fixture parses");
        assert_eq!(rlnoc_runner::render_report(&report), text);
    }
}
