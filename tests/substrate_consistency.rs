//! Cross-crate consistency checks between the simulator, the coding
//! layer, the fault models, and the power model.

use rlnoc::coding::crc::Crc32;
use rlnoc::core::modes::OperationMode;
use rlnoc::core::protocol::FaultTolerantProtocol;
use rlnoc::fault::injector::FaultInjector;
use rlnoc::fault::timing::TimingErrorModel;
use rlnoc::power::energy::EnergyModel;
use rlnoc::sim::config::NocConfig;
use rlnoc::sim::error_control::{ErrorControl, HopOutcome, TransferKind};
use rlnoc::sim::flit::{Packet, PacketClass, PacketId};
use rlnoc::sim::network::Network;
use rlnoc::sim::stats::EventCounters;
use rlnoc::sim::topology::{Direction, LinkId, Mesh, NodeId};

fn sample_flit(seed: u64) -> rlnoc::sim::flit::Flit {
    Packet {
        id: PacketId(seed),
        src: NodeId(0),
        dst: NodeId(15),
        num_flits: 1,
        class: PacketClass::Data,
        injected_at: 0,
        payload_seed: seed,
    }
    .make_flit(0, 0, &Crc32::new())
}

/// The protocol's observed error rate must match the analytic model the
/// controller (and the DT oracle) relies on.
#[test]
fn injected_error_rate_matches_model_prediction() {
    let mesh = Mesh::new(4, 4);
    let mut protocol = FaultTolerantProtocol::new(
        mesh,
        TimingErrorModel::default(),
        rlnoc::fault::variation::VariationMap::uniform(4, 4),
        99,
    );
    protocol.set_temperatures(&[90.0; 16]);
    protocol.set_utilizations(&[0.2; 16]);
    let expected = protocol.raw_error_probability(0);
    let link = LinkId {
        src: NodeId(0),
        dir: Direction::East,
    };
    let mut counters = EventCounters::default();
    let trials = 200_000u64;
    for i in 0..trials {
        let mut f = sample_flit(i);
        let _ = protocol.hop_transfer(
            link,
            &mut f,
            0,
            TransferKind::Original,
            false,
            &mut counters,
        );
    }
    let observed = protocol.faults_injected() as f64 / trials as f64;
    let rel = (observed - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "observed rate {observed:.5} vs model {expected:.5} (rel err {rel:.3})"
    );
}

/// Every flit the protocol rejects would genuinely fail SECDED; every
/// accepted one passes the end-to-end CRC unless ≥3 bits flipped.
#[test]
fn protocol_rejects_are_honest() {
    let mesh = Mesh::new(4, 4);
    let mut protocol = FaultTolerantProtocol::new(
        mesh,
        TimingErrorModel::default(),
        rlnoc::fault::variation::VariationMap::uniform(4, 4),
        123,
    );
    protocol.set_all_modes(OperationMode::Mode1);
    protocol.set_temperatures(&[105.0; 16]);
    protocol.set_utilizations(&[0.3; 16]);
    let link = LinkId {
        src: NodeId(0),
        dir: Direction::East,
    };
    let crc = Crc32::new();
    let mut counters = EventCounters::default();
    let (mut rejects, mut crc_fails_after_accept) = (0u64, 0u64);
    for i in 0..50_000u64 {
        let mut f = sample_flit(i);
        match protocol.hop_transfer(link, &mut f, 0, TransferKind::Original, true, &mut counters) {
            HopOutcome::Reject => rejects += 1,
            _ => {
                if !f.crc_ok(&crc) {
                    crc_fails_after_accept += 1;
                }
            }
        }
    }
    assert!(rejects > 0, "hot link must reject some flits");
    // Mis-corrections (≥3 flips) escape SECDED but are rare relative to
    // rejections (flip distribution: doubles 25%, triples 5%).
    assert!(
        crc_fails_after_accept < rejects,
        "escapes ({crc_fails_after_accept}) should be rarer than rejects ({rejects})"
    );
}

/// Power accounting is conservative: energy computed from the network's
/// counters equals the per-component breakdown sum.
#[test]
fn energy_breakdown_is_consistent_with_totals() {
    let config = NocConfig::builder().mesh(4, 4).build();
    let mut protocol = FaultTolerantProtocol::fault_free(config.mesh, 1);
    protocol.set_all_modes(OperationMode::Mode1);
    let mut net = Network::new(config, protocol, 3);
    for i in 0..10u16 {
        net.offer(NodeId(i), NodeId(15 - i));
    }
    assert!(net.run_until_quiescent(5_000));
    let model = EnergyModel::default();
    for c in net.counters() {
        let breakdown = model.dynamic_breakdown(c);
        let total = model.dynamic_energy(c);
        assert!((breakdown.total() - total).abs() <= 1e-18);
    }
    // ECC work happened on every inter-router hop (mode 1 everywhere).
    let ecc: u64 = net.counters().iter().map(|c| c.ecc_encodes).sum();
    assert!(ecc > 0);
}

/// Deterministic fault streams: same seed, same faults, across the whole
/// stack.
#[test]
fn fault_injection_is_deterministic_across_stack() {
    let model = TimingErrorModel::default();
    let run = |seed: u64| {
        let mut inj = FaultInjector::new(seed);
        (0..1_000)
            .map(|_| inj.sample_flips(&model, 0.05))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

/// Mode 3's timing relaxation must eliminate errors end-to-end, not just
/// in the model: a mode-3 network transports hot traffic without a single
/// retransmission.
#[test]
fn mode3_network_is_error_free_under_heat() {
    let config = NocConfig::builder().mesh(4, 4).build();
    let mut protocol = FaultTolerantProtocol::new(
        config.mesh,
        TimingErrorModel::default(),
        rlnoc::fault::variation::VariationMap::uniform(4, 4),
        5,
    );
    protocol.set_all_modes(OperationMode::Mode3);
    protocol.set_temperatures(&[105.0; 16]);
    protocol.set_utilizations(&[0.3; 16]);
    let mut net = Network::new(config, protocol, 6);
    for i in 0..16u16 {
        for j in 0..16u16 {
            if i != j {
                net.offer(NodeId(i), NodeId(j));
            }
        }
    }
    assert!(net.run_until_quiescent(30_000));
    let stats = net.stats();
    assert_eq!(stats.packets_delivered, stats.packets_injected);
    assert_eq!(stats.hop_nacks, 0, "relaxed timing must prevent NACKs");
    assert_eq!(stats.packets_failed_crc, 0);
}
