//! `rlnoc` — facade crate for the RL-driven fault-tolerant NoC workspace.
//!
//! This crate re-exports every subsystem so that examples and downstream
//! users need a single dependency:
//!
//! * [`sim`] — cycle-accurate NoC simulator (mesh, VC routers, traffic).
//! * [`fault`] — timing-error, thermal, and process-variation models.
//! * [`coding`] — CRC, SECDED, and ARQ building blocks.
//! * [`power`] — ORION-style power/energy/area models.
//! * [`rl`] — tabular Q-learning and the decision-tree baseline.
//! * [`core`] — the paper's contribution: dynamic fault-tolerant operation
//!   modes, per-router controllers, and the experiment driver.
//!
//! # Quickstart
//!
//! ```
//! use rlnoc::core::{Experiment, ErrorControlScheme};
//! use rlnoc::core::benchmarks::WorkloadProfile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Experiment::builder()
//!     .scheme(ErrorControlScheme::ProposedRl)
//!     .workload(WorkloadProfile::blackscholes())
//!     .warmup_cycles(2_000)
//!     .measure_cycles(6_000)
//!     .seed(7)
//!     .build()?
//!     .run();
//! assert!(report.packets_delivered > 0);
//! # Ok(())
//! # }
//! ```

pub use noc_coding as coding;
pub use noc_fault as fault;
pub use noc_power as power;
pub use noc_rl as rl;
pub use noc_sim as sim;
pub use rlnoc_core as core;
