//! Whole-network benchmarks: simulation throughput per cycle under load,
//! for the bare simulator and for the full fault-tolerant protocol.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use noc_fault::hardfault::{HardFault, HardFaultSchedule};
use noc_sim::config::NocConfig;
use noc_sim::error_control::PerfectLink;
use noc_sim::network::{HardFaultEvent, HardFaultKind, Network};
use noc_sim::topology::{Mesh, NodeId, Torus};
use noc_sim::traffic::{SyntheticSource, TrafficPattern, TrafficSource};
use rlnoc_core::modes::OperationMode;
use rlnoc_core::protocol::FaultTolerantProtocol;

/// Builds a warmed-up 8×8 network with uniform traffic at `rate`.
fn warmed_perfect(rate: f64) -> (Network<PerfectLink>, SyntheticSource) {
    let config = NocConfig::default();
    let mut net = Network::new(config, PerfectLink::new(), 7);
    let mut traffic = SyntheticSource::new(net.mesh(), TrafficPattern::UniformRandom, rate, 7);
    for _ in 0..2_000 {
        step_once(&mut net, &mut traffic);
    }
    (net, traffic)
}

fn step_once<E: noc_sim::error_control::ErrorControl>(
    net: &mut Network<E>,
    traffic: &mut SyntheticSource,
) {
    let cycle = net.cycle();
    let mut offers = Vec::new();
    traffic.generate(cycle, &mut |s, d| offers.push((s, d)));
    for (s, d) in offers {
        net.offer(s, d);
    }
    net.step();
}

fn bench_network_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_cycle_8x8");
    for &rate in &[0.005, 0.02] {
        group.bench_function(format!("perfect_rate_{rate}"), |b| {
            b.iter_batched(
                || warmed_perfect(rate),
                |(mut net, mut traffic)| {
                    for _ in 0..100 {
                        step_once(&mut net, &mut traffic);
                    }
                    net.cycle()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Builds a warmed-up 8×8 network routing on the fault-adaptive
/// up\*/down\* table: 20% of the mesh links fail at cycle 1, so every
/// measured cycle pays the degraded-topology data path (table lookups
/// instead of the X-Y fast path, plus the skewed load it produces).
fn warmed_degraded(rate: f64) -> (Network<PerfectLink>, SyntheticSource) {
    let config = NocConfig::default();
    let mut net = Network::new(config, PerfectLink::new(), 7);
    let links = (8 - 1) * 8 + 8 * (8 - 1); // 112 mesh links
    let schedule = HardFaultSchedule::random(Mesh::new(8, 8), links * 20 / 100, 0, (1, 1), 0x5EED);
    let events = schedule
        .entries
        .iter()
        .map(|e| HardFaultEvent {
            cycle: e.cycle,
            kind: match e.fault {
                HardFault::Link { node, dir } => HardFaultKind::Link {
                    node: NodeId(node),
                    dir,
                },
                HardFault::Router { node } => HardFaultKind::Router { node: NodeId(node) },
            },
        })
        .collect();
    net.set_hard_faults(events);
    let mut traffic = SyntheticSource::new(net.mesh(), TrafficPattern::UniformRandom, rate, 7);
    for _ in 0..2_000 {
        step_once(&mut net, &mut traffic);
    }
    assert!(
        net.hard_faults_active(),
        "degraded bench must route on the fault table"
    );
    (net, traffic)
}

fn bench_degraded_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_cycle_8x8_degraded");
    group.bench_function("links_20pct_rate_0.02", |b| {
        b.iter_batched(
            || warmed_degraded(0.02),
            |(mut net, mut traffic)| {
                for _ in 0..100 {
                    step_once(&mut net, &mut traffic);
                }
                net.cycle()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Builds a warmed-up 16×16 torus network with uniform traffic at
/// `rate`; with `degraded`, 20% of the torus links (wrap links
/// included) fail at cycle 1 so every measured cycle routes on the
/// up\*/down\* fault table instead of the date-line DOR fast path.
fn warmed_torus(rate: f64, degraded: bool) -> (Network<PerfectLink>, SyntheticSource) {
    let topo = Torus::new(16, 16);
    let config = NocConfig::builder().topology(topo).build();
    let mut net = Network::new(config, PerfectLink::new(), 7);
    if degraded {
        let links = noc_fault::hardfault::topo_links(topo) as usize; // 512 torus links
        let schedule = HardFaultSchedule::random(topo, links * 20 / 100, 0, (1, 1), 0x5EED);
        let events = schedule
            .entries
            .iter()
            .map(|e| HardFaultEvent {
                cycle: e.cycle,
                kind: match e.fault {
                    HardFault::Link { node, dir } => HardFaultKind::Link {
                        node: NodeId(node),
                        dir,
                    },
                    HardFault::Router { node } => HardFaultKind::Router { node: NodeId(node) },
                },
            })
            .collect();
        net.set_hard_faults(events);
    }
    let mut traffic = SyntheticSource::new(net.mesh(), TrafficPattern::UniformRandom, rate, 7);
    for _ in 0..2_000 {
        step_once(&mut net, &mut traffic);
    }
    if degraded {
        assert!(
            net.hard_faults_active(),
            "degraded torus bench must route on the fault table"
        );
    }
    (net, traffic)
}

fn bench_torus_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_cycle_16x16_torus");
    group.bench_function("perfect_rate_0.005", |b| {
        b.iter_batched(
            || warmed_torus(0.005, false),
            |(mut net, mut traffic)| {
                for _ in 0..100 {
                    step_once(&mut net, &mut traffic);
                }
                net.cycle()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();

    let mut group = c.benchmark_group("network_cycle_16x16_torus_degraded");
    group.bench_function("links_20pct_rate_0.005", |b| {
        b.iter_batched(
            || warmed_torus(0.005, true),
            |(mut net, mut traffic)| {
                for _ in 0..100 {
                    step_once(&mut net, &mut traffic);
                }
                net.cycle()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_protocol_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_cycle_8x8_protocol");
    for (name, mode) in [
        ("mode0", OperationMode::Mode0),
        ("mode1", OperationMode::Mode1),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let config = NocConfig::default();
                    let mut protocol = FaultTolerantProtocol::new(
                        config.mesh,
                        noc_fault::timing::TimingErrorModel::default(),
                        noc_fault::variation::VariationMap::uniform(8, 8),
                        3,
                    );
                    protocol.set_all_modes(mode);
                    protocol.set_temperatures(&[75.0; 64]);
                    let mut net = Network::new(config, protocol, 7);
                    let mut traffic =
                        SyntheticSource::new(net.mesh(), TrafficPattern::UniformRandom, 0.02, 7);
                    for _ in 0..2_000 {
                        step_once(&mut net, &mut traffic);
                    }
                    (net, traffic)
                },
                |(mut net, mut traffic)| {
                    for _ in 0..100 {
                        step_once(&mut net, &mut traffic);
                    }
                    net.cycle()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_network_step, bench_degraded_step, bench_torus_step, bench_protocol_step
}
criterion_main!(benches);
