//! Telemetry overhead benchmarks: the cost of the instrumentation hooks
//! on the network tick with telemetry disabled (the default) and enabled.
//!
//! The acceptance bar is that a disabled `Telemetry` handle adds < 2% to
//! the per-cycle cost of `Network::step` — every disabled instrument is a
//! single `Option` branch, with no clock reads and no atomics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use noc_sim::config::NocConfig;
use noc_sim::error_control::PerfectLink;
use noc_sim::network::Network;
use noc_sim::traffic::{SyntheticSource, TrafficPattern, TrafficSource};
use rlnoc_telemetry::Telemetry;

const WARMUP_CYCLES: u64 = 2_000;
const RATE: f64 = 0.02;

/// Builds a warmed-up 8×8 network with uniform traffic and the given
/// telemetry handle attached.
fn warmed(telemetry: &Telemetry) -> (Network<PerfectLink>, SyntheticSource) {
    let config = NocConfig::default();
    let mut net = Network::new(config, PerfectLink::new(), 7);
    net.set_telemetry(telemetry);
    let mut traffic = SyntheticSource::new(net.mesh(), TrafficPattern::UniformRandom, RATE, 7);
    for _ in 0..WARMUP_CYCLES {
        step_once(&mut net, &mut traffic);
    }
    (net, traffic)
}

fn step_once(net: &mut Network<PerfectLink>, traffic: &mut SyntheticSource) {
    let cycle = net.cycle();
    let mut offers = Vec::new();
    traffic.generate(cycle, &mut |s, d| offers.push((s, d)));
    for (s, d) in offers {
        net.offer(s, d);
    }
    net.step();
}

fn bench_tick_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_tick_8x8");
    for (name, telemetry) in [
        ("disabled", Telemetry::disabled()),
        ("enabled", Telemetry::enabled()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || warmed(&telemetry),
                |(mut net, mut traffic)| {
                    for _ in 0..100 {
                        step_once(&mut net, &mut traffic);
                    }
                    net.cycle()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Direct A/B of the disabled-handle tick against the enabled-handle tick
/// over a long run, reporting the overhead percentage the criterion table
/// above leaves implicit.
fn report_overhead_ratio(_c: &mut Criterion) {
    const MEASURE_CYCLES: u64 = 50_000;
    let time_variant = |telemetry: &Telemetry| -> f64 {
        let (mut net, mut traffic) = warmed(telemetry);
        let t0 = std::time::Instant::now();
        for _ in 0..MEASURE_CYCLES {
            step_once(&mut net, &mut traffic);
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        criterion::black_box(net.cycle());
        elapsed / MEASURE_CYCLES as f64
    };
    let disabled = time_variant(&Telemetry::disabled());
    let enabled = time_variant(&Telemetry::enabled());
    println!(
        "telemetry overhead on the network tick ({MEASURE_CYCLES} cycles, 8x8, uniform {RATE}):"
    );
    println!("  disabled handle: {disabled:>9.1} ns/cycle");
    println!(
        "  enabled handle:  {enabled:>9.1} ns/cycle  ({:+.2}% vs disabled)",
        100.0 * (enabled - disabled) / disabled
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tick_telemetry, report_overhead_ratio
}
criterion_main!(benches);
