//! Micro-benchmarks of the hot primitives.
//!
//! `rl_step` quantifies the paper's §VI-B computation-overhead claim
//! (worst-case 150 ns per RL step in hardware; the software step should
//! be of comparable magnitude). The coding benches justify running real
//! SECDED/CRC in the simulator's hot loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use noc_coding::crc::Crc32;
use noc_coding::hamming::{Secded32, Secded64};
use noc_rl::agent::{AgentConfig, QLearningAgent};
use noc_rl::decision_tree::{DecisionTree, TreeParams};
use noc_rl::state::{RouterFeatures, StateSpace};
use noc_sim::arbiter::RoundRobinArbiter;

fn bench_crc(c: &mut Criterion) {
    let crc = Crc32::new();
    let payload = [0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210u64];
    c.bench_function("crc32_flit_checksum", |b| {
        b.iter(|| crc.checksum_words(black_box(&payload)))
    });
    // Longer payload exercising the slicing-by-8 loop plus remainder.
    let buf: Vec<u8> = (0..67u32)
        .map(|i| (i.wrapping_mul(97) >> 3) as u8)
        .collect();
    c.bench_function("crc32_checksum_67B", |b| {
        b.iter(|| crc.checksum(black_box(&buf)))
    });
    // Eight replicate-lane payloads through the word-parallel batch
    // kernel — the per-lane cost should undercut eight scalar calls.
    let lanes: Vec<[u64; 2]> = (0..8u64)
        .map(|i| [i.wrapping_mul(0x9E37_79B9), !i])
        .collect();
    c.bench_function("crc32_words_batch8", |b| {
        let mut out = [0u32; 8];
        b.iter(|| {
            crc.checksum_words_batch(black_box(&lanes), &mut out);
            out[7]
        })
    });
}

fn bench_secded(c: &mut Criterion) {
    c.bench_function("secded64_encode", |b| {
        b.iter(|| Secded64::encode(black_box(0xA5A5_5A5A_0FF0_F00F)))
    });
    let clean = Secded64::encode(0xA5A5_5A5A_0FF0_F00F);
    c.bench_function("secded64_decode_clean", |b| {
        b.iter(|| black_box(clean).decode())
    });
    let flipped = clean.with_bit_flipped(17);
    c.bench_function("secded64_decode_corrects", |b| {
        b.iter(|| black_box(flipped).decode())
    });
    // Eight replicate-lane words through the batch encode/decode
    // kernels (four-lane word-parallel groups).
    let words: Vec<u64> = (0..8u64).map(|i| i.wrapping_mul(0xBF58_476D)).collect();
    c.bench_function("secded64_encode_batch8", |b| {
        let mut out = [Secded64::encode(0); 8];
        b.iter(|| {
            Secded64::encode_batch(black_box(&words), &mut out);
            out[7]
        })
    });
    let mut codewords = [Secded64::encode(0); 8];
    Secded64::encode_batch(&words, &mut codewords);
    c.bench_function("secded64_decode_batch8", |b| {
        let mut out = [noc_coding::hamming::DecodeOutcome::DoubleError; 8];
        b.iter(|| {
            Secded64::decode_batch(black_box(&codewords), &mut out);
            out[7]
        })
    });
    c.bench_function("secded32_encode", |b| {
        b.iter(|| Secded32::encode(black_box(0xC0DE_F00D)))
    });
    let clean32 = Secded32::encode(0xC0DE_F00D);
    c.bench_function("secded32_decode_clean", |b| {
        b.iter(|| black_box(clean32).decode())
    });
}

fn bench_fault_draw(c: &mut Criterion) {
    use noc_fault::injector::{ErrorThreshold, FaultInjector};
    use noc_fault::timing::TimingErrorModel;
    let model = TimingErrorModel::default();
    let threshold = ErrorThreshold::from_probability(0.01);
    let mut scalar = FaultInjector::new(7);
    c.bench_function("fault_draw_threshold", |b| {
        b.iter(|| scalar.sample_flips_at(&model, black_box(threshold)))
    });
    // Eight replicate lanes through the batched threshold-compare
    // kernel — one RNG word + integer compare per lane, flip-weight
    // draws only on the rare accepted lanes.
    let mut lanes: Vec<FaultInjector> = (0..8).map(FaultInjector::new).collect();
    let thresholds = [threshold; 8];
    c.bench_function("fault_draw_batch8", |b| {
        let mut out = [0u8; 8];
        b.iter(|| {
            FaultInjector::sample_flips_batch(&mut lanes, &model, black_box(&thresholds), &mut out);
            out[7]
        })
    });
}

fn bench_rl_step(c: &mut Criterion) {
    let space = StateSpace::paper_default();
    let mut agent = QLearningAgent::new(space.num_states(), AgentConfig::paper_default(), 1);
    let features = RouterFeatures {
        buffer_occupancy: 3.0,
        input_utilization: 0.1,
        output_utilization: 0.12,
        input_nack_rate: 1e-3,
        output_nack_rate: 2e-3,
        temperature_c: 75.0,
        ..Default::default()
    };
    agent.observe_and_act(0, 0.0);
    c.bench_function("rl_step_discretize_update_select", |b| {
        b.iter(|| {
            let state = space.discretize(black_box(&features));
            agent.observe_and_act(state, black_box(1.1))
        })
    });
}

fn bench_dt_predict(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..512)
        .map(|i| {
            vec![
                (i % 20) as f64,
                (i % 7) as f64 / 20.0,
                (i % 11) as f64 / 30.0,
                (i % 5) as f64 / 1000.0,
                (i % 3) as f64 / 1000.0,
                50.0 + (i % 50) as f64,
            ]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 1e-3 * ((x[5] - 50.0) * 0.078).exp())
        .collect();
    let tree = DecisionTree::fit(&xs, &ys, TreeParams::default());
    let probe = vec![3.0, 0.1, 0.12, 1e-3, 2e-3, 80.0];
    c.bench_function("dt_predict", |b| b.iter(|| tree.predict(black_box(&probe))));
}

fn bench_arbiter(c: &mut Criterion) {
    let mut arb = RoundRobinArbiter::new(20);
    let mut requests = [false; 20];
    for i in (0..20).step_by(3) {
        requests[i] = true;
    }
    c.bench_function("round_robin_grant_20", |b| {
        b.iter(|| arb.grant(black_box(&requests)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_crc,
    bench_secded,
    bench_fault_draw,
    bench_rl_step,
    bench_dt_predict,
    bench_arbiter
}
criterion_main!(benches);
