//! Macro benchmark of the batched lockstep campaign engine: K=8
//! replicate lanes of one 8×8 cell run serially (each lane rebuilds its
//! tables and recomputes every post-fault reroute) versus as one
//! `Experiment::run_batch` lockstep group (route/neighbor tables built
//! once, each up*/down* reroute computed once and shared through the
//! `FaultRouteCache`).
//!
//! The cell is fault-churn heavy — a long schedule of link failures
//! spread across the simulated window — because that is the regime the
//! batched engine exists for: degradation sweeps where per-event
//! reroute computation, not per-cycle packet motion, dominates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use noc_fault::hardfault::HardFaultSchedule;
use noc_sim::config::NocConfig;
use noc_sim::topology::Mesh;
use noc_sim::traffic::TrafficPattern;
use rlnoc_core::benchmarks::{PhaseSpec, WorkloadProfile};
use rlnoc_core::{ErrorControlScheme, Experiment};
use std::sync::Arc;

const LANES: u64 = 8;

/// Sparse uniform load: enough traffic that the reroute tables are
/// exercised, little enough that fault-event processing dominates.
fn sparse_workload(duration: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "sparse",
        phases: vec![PhaseSpec {
            cycles: duration,
            injection_rate: 0.002,
            pattern: TrafficPattern::UniformRandom,
        }],
        duration_cycles: duration,
    }
}

/// The K=8 replicate lanes of one fault-churn cell, seeded the way
/// `Campaign::tasks` derives replicate seeds.
fn lanes() -> Vec<Experiment> {
    let schedule = Arc::new(HardFaultSchedule::random(
        Mesh::new(8, 8),
        40,
        0,
        (100, 1_300),
        31,
    ));
    (0..LANES)
        .map(|i| {
            Experiment::builder()
                .scheme(ErrorControlScheme::StaticCrc)
                .workload(sparse_workload(1_200))
                .noc(NocConfig::builder().mesh(8, 8).build())
                .warmup_cycles(100)
                .measure_cycles(1_200)
                .drain_limit(20_000)
                .hard_faults(schedule.clone())
                .seed(rand::seed_stream(41, i))
                .build()
                .expect("valid bench lane")
        })
        .collect()
}

/// K fault-free replicate lanes: the sim-dominated regime where the
/// shared `FaultRouteCache` buys nothing and all lockstep gains must
/// come from the fused SoA cycle kernel itself.
fn fault_free_lanes(k: u64) -> Vec<Experiment> {
    (0..k)
        .map(|i| {
            Experiment::builder()
                .scheme(ErrorControlScheme::StaticCrc)
                .workload(sparse_workload(1_200))
                .noc(NocConfig::builder().mesh(8, 8).build())
                .warmup_cycles(100)
                .measure_cycles(1_200)
                .drain_limit(20_000)
                .seed(rand::seed_stream(41, i))
                .build()
                .expect("valid bench lane")
        })
        .collect()
}

fn bench_campaign_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_batched");
    group.bench_function("serial_8x8_k8", |b| {
        b.iter_batched(
            lanes,
            |ls| ls.into_iter().map(Experiment::run).collect::<Vec<_>>(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("lockstep_8x8_k8", |b| {
        b.iter_batched(lanes, Experiment::run_batch, BatchSize::LargeInput)
    });
    // Width sweep over the fault-free regime: tracks the per-lane cost
    // of the fused cycle kernel without any reroute amortization.
    group.bench_function("fault_free_k8", |b| {
        b.iter_batched(
            || fault_free_lanes(8),
            Experiment::run_batch,
            BatchSize::LargeInput,
        )
    });
    group.bench_function("fault_free_k16", |b| {
        b.iter_batched(
            || fault_free_lanes(16),
            Experiment::run_batch,
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_campaign_batched
}
criterion_main!(benches);
