//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every `fig*` / `ablate_*` / `sweep_*` binary runs a
//! [`Campaign`](rlnoc_core::campaign::Campaign) (or a sweep of
//! experiments) and prints the corresponding table of the paper. Two
//! environment variables control cost:
//!
//! * `RLNOC_QUICK=1` — 4×4 mesh, short windows (~seconds); for smoke
//!   tests.
//! * `RLNOC_SEED=<n>` — override the campaign master seed.
//! * `RLNOC_MEASURE=<cycles>` — cap the measured injection window.
//!
//! Passing `--quick` as the first CLI argument is equivalent to
//! `RLNOC_QUICK=1`.

use rlnoc_core::campaign::Campaign;

/// Builds the campaign configuration for a figure binary, honoring the
/// `RLNOC_*` environment variables and the `--quick` flag.
pub fn campaign_from_env() -> Campaign {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("RLNOC_QUICK").map_or(false, |v| v == "1");
    let mut campaign = if quick {
        Campaign::quick()
    } else {
        Campaign::paper_default()
    };
    if let Ok(seed) = std::env::var("RLNOC_SEED") {
        if let Ok(seed) = seed.parse() {
            campaign.seed = seed;
        }
    }
    if let Ok(cap) = std::env::var("RLNOC_MEASURE") {
        if let Ok(cap) = cap.parse() {
            campaign.measure_cycles = Some(cap);
        }
    }
    campaign
}

/// Prints the standard banner: what is being regenerated and what the
/// paper reports for it.
pub fn banner(figure: &str, paper_claim: &str) {
    println!("=== {figure} ===");
    println!("paper: {paper_claim}");
    println!(
        "(values are normalized to the CRC baseline; shape — ordering and \
         rough factors — is the reproduction target, not absolute numbers)"
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_to_paper_campaign() {
        // No env vars set in the test harness by default.
        let c = campaign_from_env();
        assert!(!c.schemes.is_empty());
        assert!(!c.workloads.is_empty());
    }
}
