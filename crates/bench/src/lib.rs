//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every `fig*` / `ablate_*` / `sweep_*` binary runs a
//! [`Campaign`](rlnoc_core::campaign::Campaign) (or a sweep of
//! experiments) and prints the corresponding table of the paper.
//! Environment variables control cost and observability:
//!
//! * `RLNOC_QUICK=1` — 4×4 mesh, short windows (~seconds); for smoke
//!   tests.
//! * `RLNOC_SEED=<n>` — override the campaign master seed.
//! * `RLNOC_MEASURE=<cycles>` — cap the measured injection window.
//! * `TELEMETRY_OUT=<path>` — enable telemetry and dump the full
//!   per-router per-epoch series plus instruments and run summaries on
//!   exit (`.csv` extension → CSV epoch table, otherwise JSONL).
//! * `TELEMETRY_CAP=<records>` — bound the epoch ring buffer (default
//!   262 144 records; oldest evicted first).
//!
//! Passing `--quick` as the first CLI argument is equivalent to
//! `RLNOC_QUICK=1`.

use rlnoc_core::campaign::Campaign;
use rlnoc_telemetry::Telemetry;

/// Builds the campaign configuration for a figure binary, honoring the
/// `RLNOC_*` / `TELEMETRY_*` environment variables and the `--quick`
/// flag.
pub fn campaign_from_env() -> Campaign {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("RLNOC_QUICK").is_ok_and(|v| v == "1");
    let mut campaign = if quick {
        Campaign::quick()
    } else {
        Campaign::paper_default()
    };
    if let Ok(seed) = std::env::var("RLNOC_SEED") {
        if let Ok(seed) = seed.parse() {
            campaign.seed = seed;
        }
    }
    if let Ok(cap) = std::env::var("RLNOC_MEASURE") {
        if let Ok(cap) = cap.parse() {
            campaign.measure_cycles = Some(cap);
        }
    }
    campaign.telemetry = telemetry_from_env();
    campaign
}

/// An enabled [`Telemetry`] handle when `TELEMETRY_OUT` is set (with an
/// optional `TELEMETRY_CAP` ring-buffer bound), disabled otherwise.
pub fn telemetry_from_env() -> Telemetry {
    if std::env::var_os("TELEMETRY_OUT").is_none() {
        return Telemetry::disabled();
    }
    match std::env::var("TELEMETRY_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(cap) => Telemetry::with_epoch_capacity(cap),
        None => Telemetry::enabled(),
    }
}

/// Exports `telemetry` to the `TELEMETRY_OUT` path (no-op when the
/// variable is unset or the handle is disabled) and prints per-run
/// wall-clock / throughput summaries to stderr.
pub fn export_telemetry(telemetry: &Telemetry) {
    if !telemetry.is_enabled() {
        return;
    }
    for run in telemetry.run_summaries() {
        eprintln!(
            "telemetry: run {} — {:.2}s wall, {} cycles, {:.0} cycles/s",
            run.label, run.wall_seconds, run.cycles, run.cycles_per_sec
        );
    }
    let Some(path) = std::env::var_os("TELEMETRY_OUT") else {
        return;
    };
    match rlnoc_telemetry::export::export_to_path(telemetry, &path) {
        Ok(()) => eprintln!(
            "telemetry: wrote {} epoch records to {}",
            telemetry.epoch_len(),
            path.to_string_lossy()
        ),
        Err(e) => eprintln!("telemetry: failed to write {}: {e}", path.to_string_lossy()),
    }
}

/// Prints the standard banner: what is being regenerated and what the
/// paper reports for it.
pub fn banner(figure: &str, paper_claim: &str) {
    println!("=== {figure} ===");
    println!("paper: {paper_claim}");
    println!(
        "(values are normalized to the CRC baseline; shape — ordering and \
         rough factors — is the reproduction target, not absolute numbers)"
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_to_paper_campaign() {
        // No env vars set in the test harness by default.
        let c = campaign_from_env();
        assert!(!c.schemes.is_empty());
        assert!(!c.workloads.is_empty());
    }
}
