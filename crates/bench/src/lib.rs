//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every `fig*` / `ablate_*` / `sweep_*` binary runs a
//! [`Campaign`](rlnoc_core::campaign::Campaign) (or a sweep of
//! experiments) and prints the corresponding table of the paper.
//! Environment variables control cost and observability:
//!
//! * `RLNOC_QUICK=1` — 4×4 mesh, short windows (~seconds); for smoke
//!   tests.
//! * `RLNOC_SEED=<n>` — override the campaign master seed.
//! * `RLNOC_MEASURE=<cycles>` — cap the measured injection window.
//! * `TELEMETRY_OUT=<path>` — enable telemetry and dump the full
//!   per-router per-epoch series plus instruments and run summaries on
//!   exit (`.csv` extension → CSV epoch table, otherwise JSONL).
//! * `TELEMETRY_CAP=<records>` — bound the epoch ring buffer (default
//!   262 144 records; oldest evicted first).
//! * `RLNOC_JOBS=<n|max>` — run campaign tasks / sweep variants on `n`
//!   worker threads (default 1 = serial; results are byte-identical
//!   either way).
//! * `SNAPSHOT_DIR=<dir>` — checkpoint every finished campaign task
//!   (and each RL task's learned policy) under `dir`.
//! * `RESUME=1` — reload valid checkpoints from `SNAPSHOT_DIR` instead
//!   of re-running their tasks.
//!
//! Passing `--quick` as the first CLI argument is equivalent to
//! `RLNOC_QUICK=1`.
//!
//! Figure binaries print to stdout **and** drop the same table under
//! `out/` (git-ignored) via [`write_output`].

use rlnoc_core::campaign::{Campaign, CampaignResult};
use rlnoc_runner::RunnerConfig;
use rlnoc_telemetry::Telemetry;

/// Builds the campaign configuration for a figure binary, honoring the
/// `RLNOC_*` / `TELEMETRY_*` environment variables and the `--quick`
/// flag.
pub fn campaign_from_env() -> Campaign {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("RLNOC_QUICK").is_ok_and(|v| v == "1");
    let mut campaign = if quick {
        Campaign::quick()
    } else {
        Campaign::paper_default()
    };
    if let Ok(seed) = std::env::var("RLNOC_SEED") {
        if let Ok(seed) = seed.parse() {
            campaign.seed = seed;
        }
    }
    if let Ok(cap) = std::env::var("RLNOC_MEASURE") {
        if let Ok(cap) = cap.parse() {
            campaign.measure_cycles = Some(cap);
        }
    }
    campaign.telemetry = telemetry_from_env();
    campaign
}

/// Runs a campaign through the parallel runner, honoring `RLNOC_JOBS`,
/// `SNAPSHOT_DIR`, and `RESUME`. With none of them set this is exactly
/// [`Campaign::run`]; with any worker count the merged result is
/// byte-identical to the serial run. The runner shares the campaign's
/// telemetry handle, so queue-depth / per-worker instruments land in the
/// same `TELEMETRY_OUT` export as the simulation series.
pub fn run_campaign(campaign: &Campaign) -> CampaignResult {
    RunnerConfig::from_env()
        .with_telemetry(campaign.telemetry.clone())
        .run_campaign(campaign)
}

/// The `RLNOC_JOBS` worker count (1 when unset).
pub fn jobs_from_env() -> usize {
    RunnerConfig::from_env().jobs
}

/// Runs independent sweep/ablation variants on the `RLNOC_JOBS` worker
/// pool, returning results in variant order — so sweep binaries print
/// the same table whatever the worker count.
pub fn run_variants<T, R>(variants: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    rlnoc_runner::pool::run_indexed(variants, jobs_from_env(), &Telemetry::disabled(), |_, v| {
        f(v)
    })
}

/// Writes a result artifact to `out/<name>` (creating `out/`, which is
/// git-ignored) and notes the path on stderr. Failures are reported, not
/// fatal — the artifact is a convenience copy of what stdout already
/// shows.
pub fn write_output(name: &str, contents: &str) {
    let dir = std::path::Path::new("out");
    let path = dir.join(name);
    let result = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, contents));
    match result {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// An enabled [`Telemetry`] handle when `TELEMETRY_OUT` is set (with an
/// optional `TELEMETRY_CAP` ring-buffer bound), disabled otherwise.
pub fn telemetry_from_env() -> Telemetry {
    if std::env::var_os("TELEMETRY_OUT").is_none() {
        return Telemetry::disabled();
    }
    match std::env::var("TELEMETRY_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(cap) => Telemetry::with_epoch_capacity(cap),
        None => Telemetry::enabled(),
    }
}

/// Exports `telemetry` to the `TELEMETRY_OUT` path (no-op when the
/// variable is unset or the handle is disabled) and prints per-run
/// wall-clock / throughput summaries to stderr.
pub fn export_telemetry(telemetry: &Telemetry) {
    if !telemetry.is_enabled() {
        return;
    }
    for run in telemetry.run_summaries() {
        eprintln!(
            "telemetry: run {} — {:.2}s wall, {} cycles, {:.0} cycles/s",
            run.label, run.wall_seconds, run.cycles, run.cycles_per_sec
        );
    }
    let Some(path) = std::env::var_os("TELEMETRY_OUT") else {
        return;
    };
    match rlnoc_telemetry::export::export_to_path(telemetry, &path) {
        Ok(()) => eprintln!(
            "telemetry: wrote {} epoch records to {}",
            telemetry.epoch_len(),
            path.to_string_lossy()
        ),
        Err(e) => eprintln!("telemetry: failed to write {}: {e}", path.to_string_lossy()),
    }
}

/// Prints the standard banner: what is being regenerated and what the
/// paper reports for it.
pub fn banner(figure: &str, paper_claim: &str) {
    println!("=== {figure} ===");
    println!("paper: {paper_claim}");
    println!(
        "(values are normalized to the CRC baseline; shape — ordering and \
         rough factors — is the reproduction target, not absolute numbers)"
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_to_paper_campaign() {
        // No env vars set in the test harness by default.
        let c = campaign_from_env();
        assert!(!c.schemes.is_empty());
        assert!(!c.workloads.is_empty());
    }
}
