//! Sweep: raw timing-error rate vs. scheme performance.
//!
//! Scales the error model's reference probability to locate the
//! crossovers the paper's §III argues for: at minimal error levels the
//! CRC baseline is competitive (ECC overhead dominates); as errors grow,
//! ARQ+ECC and then the adaptive schemes take over.

use noc_fault::timing::TimingErrorParams;
use rlnoc_bench::{export_telemetry, telemetry_from_env};
use rlnoc_core::benchmarks::WorkloadProfile;
use rlnoc_core::experiment::{ErrorControlScheme, Experiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry = telemetry_from_env();
    println!("=== Sweep: error-rate scale × scheme (bodytrack) ===\n");
    println!(
        "{:>8}{:>10}{:>12}{:>14}{:>16}",
        "p_ref", "scheme", "latency", "retx (pkts)", "eff (flits/J)"
    );
    let mut variants = Vec::new();
    for &scale in &[0.1, 0.3, 1.0, 3.0] {
        for scheme in [
            ErrorControlScheme::StaticCrc,
            ErrorControlScheme::StaticArqEcc,
            ErrorControlScheme::ProposedRl,
        ] {
            variants.push((1e-3 * scale, scheme));
        }
    }
    let reports = rlnoc_bench::run_variants(variants, |(p_ref, scheme)| {
        let mut builder = Experiment::builder()
            .scheme(scheme)
            .workload(WorkloadProfile::bodytrack())
            .seed(2019)
            .telemetry(telemetry.clone())
            .timing(TimingErrorParams {
                p_ref,
                ..TimingErrorParams::default()
            });
        if quick {
            builder = builder
                .noc(noc_sim::config::NocConfig::builder().mesh(4, 4).build())
                .pretrain_cycles(20_000)
                .measure_cycles(8_000);
        } else {
            builder = builder.measure_cycles(20_000);
        }
        (
            p_ref,
            scheme,
            builder.build().expect("valid sweep config").run(),
        )
    });
    for (p_ref, scheme, report) in reports {
        println!(
            "{:>8.0e}{:>10}{:>12.2}{:>14.1}{:>16.3e}",
            p_ref,
            scheme.to_string(),
            report.avg_latency_cycles,
            report.retransmitted_packets_equiv,
            report.energy_efficiency()
        );
    }
    export_telemetry(&telemetry);
}
