//! Ablation: the contribution of each operation mode.
//!
//! Removes one mode at a time from the RL action set (the controller
//! falls back to mode 1 when its pick is disallowed) to show what each
//! of §III's four strategies contributes to the full scheme.

use rlnoc_bench::{export_telemetry, telemetry_from_env};
use rlnoc_core::benchmarks::WorkloadProfile;
use rlnoc_core::experiment::{ErrorControlScheme, Experiment};
use rlnoc_core::modes::OperationMode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry = telemetry_from_env();
    println!("=== Ablation: operation-mode availability (canneal, RL scheme) ===\n");
    let m = OperationMode::ALL;
    let variants: [(&str, Vec<OperationMode>); 6] = [
        ("all modes", m.to_vec()),
        ("no mode 0", vec![m[1], m[2], m[3]]),
        ("no mode 2", vec![m[0], m[1], m[3]]),
        ("no mode 3", vec![m[0], m[1], m[2]]),
        ("only 0+1", vec![m[0], m[1]]),
        ("only 1", vec![m[1]]),
    ];
    println!(
        "{:<12}{:>12}{:>14}{:>16}{:>24}",
        "action set", "latency", "retx (pkts)", "eff (flits/J)", "mode histogram"
    );
    let reports = rlnoc_bench::run_variants(variants.to_vec(), |(name, allowed)| {
        let mut builder = Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .workload(WorkloadProfile::canneal())
            .seed(2019)
            .telemetry(telemetry.clone())
            .allowed_modes(&allowed);
        if quick {
            builder = builder
                .noc(noc_sim::config::NocConfig::builder().mesh(4, 4).build())
                .pretrain_cycles(20_000)
                .measure_cycles(8_000);
        } else {
            builder = builder.measure_cycles(20_000);
        }
        (name, builder.build().expect("valid ablation config").run())
    });
    for (name, report) in reports {
        println!(
            "{:<12}{:>12.2}{:>14.1}{:>16.3e}{:>24}",
            name,
            report.avg_latency_cycles,
            report.retransmitted_packets_equiv,
            report.energy_efficiency(),
            format!("{:?}", report.mode_histogram)
        );
    }
    export_telemetry(&telemetry);
}
