//! Regenerates Fig. 7: execution-time speed-up over the CRC baseline.

use rlnoc_bench::{banner, campaign_from_env, export_telemetry, run_campaign, write_output};

fn main() {
    banner(
        "Fig. 7 — execution-time speed-up",
        "RL 1.25× over CRC on average",
    );
    let campaign = campaign_from_env();
    let result = run_campaign(&campaign);
    let table = result.figure_table("speed-up = CRC makespan / scheme makespan", |r| {
        1.0 / r.execution_cycles.max(1) as f64
    });
    print!("{table}");
    write_output("fig7.txt", &table);
    export_telemetry(&campaign.telemetry);
}
