//! Regenerates Fig. 6: retransmitted packets per scheme, normalized to
//! the CRC baseline.

use rlnoc_bench::{banner, campaign_from_env, export_telemetry, run_campaign, write_output};

fn main() {
    banner(
        "Fig. 6 — retransmitted packets",
        "RL −48% vs CRC on average; ARQ+ECC −33%; RL 15% below ARQ+ECC",
    );
    let campaign = campaign_from_env();
    let result = run_campaign(&campaign);
    let table = result.figure_table("retransmission traffic (packet equivalents)", |r| {
        r.retransmitted_packets_equiv.max(0.5)
    });
    print!("{table}");
    write_output("fig6.txt", &table);
    export_telemetry(&campaign.telemetry);
}
