//! Regenerates Fig. 6: retransmitted packets per scheme, normalized to
//! the CRC baseline.

use rlnoc_bench::{banner, campaign_from_env, export_telemetry};

fn main() {
    banner(
        "Fig. 6 — retransmitted packets",
        "RL −48% vs CRC on average; ARQ+ECC −33%; RL 15% below ARQ+ECC",
    );
    let campaign = campaign_from_env();
    let result = campaign.run();
    print!(
        "{}",
        result.figure_table("retransmission traffic (packet equivalents)", |r| {
            r.retransmitted_packets_equiv.max(0.5)
        })
    );
    export_telemetry(&campaign.telemetry);
}
