//! Regenerates Fig. 10: dynamic power consumption, normalized to the CRC
//! baseline.

use rlnoc_bench::{banner, campaign_from_env, export_telemetry, run_campaign, write_output};

fn main() {
    banner("Fig. 10 — dynamic power", "RL −46% vs CRC; RL 17% below DT");
    let campaign = campaign_from_env();
    let result = run_campaign(&campaign);
    let table = result.figure_table("mean dynamic power", |r| r.dynamic_power_w());
    print!("{table}");
    write_output("fig10.txt", &table);
    export_telemetry(&campaign.telemetry);
}
