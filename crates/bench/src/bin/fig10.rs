//! Regenerates Fig. 10: dynamic power consumption, normalized to the CRC
//! baseline.

use rlnoc_bench::{banner, campaign_from_env, export_telemetry};

fn main() {
    banner("Fig. 10 — dynamic power", "RL −46% vs CRC; RL 17% below DT");
    let campaign = campaign_from_env();
    let result = campaign.run();
    print!(
        "{}",
        result.figure_table("mean dynamic power", |r| r.dynamic_power_w())
    );
    export_telemetry(&campaign.telemetry);
}
