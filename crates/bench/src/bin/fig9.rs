//! Regenerates Fig. 9: energy efficiency (delivered flits per unit
//! energy), normalized to the CRC baseline.

use rlnoc_bench::{banner, campaign_from_env, export_telemetry, run_campaign, write_output};

fn main() {
    banner(
        "Fig. 9 — energy efficiency (flits/energy)",
        "RL +64% vs CRC; RL 15% above DT",
    );
    let campaign = campaign_from_env();
    let result = run_campaign(&campaign);
    let table = result.figure_table("energy efficiency", |r| r.energy_efficiency());
    print!("{table}");
    write_output("fig9.txt", &table);
    export_telemetry(&campaign.telemetry);
}
