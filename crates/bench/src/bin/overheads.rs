//! Regenerates §VI-B: the area, energy, and computation overhead
//! analysis of the proposed RL router.

use noc_power::area::{AreaModel, RouterVariant};
use noc_power::params::PowerParams;
use noc_rl::agent::{AgentConfig, QLearningAgent};
use noc_rl::state::{RouterFeatures, StateSpace};

fn main() {
    // --- Area (Synopsys DC proxy) ---------------------------------------
    println!("=== §VI-B Area Overhead (32 nm) ===");
    println!("paper: +2360 µm² vs CRC router; 5.5% / 4.8% / 4.5% vs CRC / ARQ+ECC / DT");
    println!();
    let area = AreaModel::default();
    println!(
        "{:<14}{:>14}{:>18}",
        "router", "area (µm²)", "RL overhead (%)"
    );
    for variant in RouterVariant::ALL {
        println!(
            "{:<14}{:>14.0}{:>18.2}",
            variant.to_string(),
            area.router_area(variant),
            100.0 * area.rl_overhead_fraction(variant)
        );
    }
    println!(
        "\nRL adds {:.0} µm² over the CRC router",
        area.rl_overhead_um2(RouterVariant::Crc)
    );

    // --- Energy ----------------------------------------------------------
    println!("\n=== §VI-B Energy Overhead ===");
    println!("paper: 0.16 pJ per flit over a 13.33 pJ baseline = 1.2%");
    println!();
    let p = PowerParams::default();
    println!(
        "baseline flit-hop energy (model): {:.2} pJ",
        p.flit_hop_energy() * 1e12
    );
    println!(
        "RL control overhead per flit:     {:.2} pJ ({:.1}%)",
        PowerParams::RL_FLIT_OVERHEAD * 1e12,
        100.0 * PowerParams::RL_FLIT_OVERHEAD / PowerParams::BASELINE_FLIT_ENERGY
    );

    // --- Computation -------------------------------------------------------
    println!("\n=== §VI-B Computation Overhead ===");
    println!("paper: worst-case 150 ns per RL step, hidden by the 1K-cycle epoch");
    println!();
    let space = StateSpace::paper_default();
    let mut agent = QLearningAgent::new(space.num_states(), AgentConfig::paper_default(), 1);
    let features = RouterFeatures {
        buffer_occupancy: 3.0,
        input_utilization: 0.1,
        output_utilization: 0.1,
        input_nack_rate: 1e-3,
        output_nack_rate: 1e-3,
        temperature_c: 75.0,
        ..Default::default()
    };
    // Warm up, then time the full per-epoch step: discretize + TD update +
    // action selection.
    let mut state = space.discretize(&features);
    for i in 0..1_000u64 {
        let _ = agent.observe_and_act(state, 1.0 + (i % 7) as f64 * 0.1);
    }
    let iterations = 1_000_000u64;
    let start = std::time::Instant::now();
    let mut sink = 0usize;
    for i in 0..iterations {
        state = space.discretize(&features);
        sink ^= agent.observe_and_act(state, 1.0 + (i % 7) as f64 * 0.1);
    }
    let elapsed = start.elapsed();
    let per_step_ns = elapsed.as_nanos() as f64 / iterations as f64;
    println!(
        "measured RL step (discretize + TD update + ε-greedy): {per_step_ns:.0} ns \
         (software on this host; the paper's 150 ns is a hardware ALU+SRAM bound)"
    );
    println!(
        "epoch budget at 2 GHz: 1 000 cycles = 500 ns per cycle × 1 000 = 500 µs → overhead hidden"
    );
    let _ = sink;
}
