//! Regenerates every evaluation figure (Figs. 6–10) from one campaign —
//! the cheapest way to reproduce the paper's full result set.
//!
//! ```text
//! cargo run --release -p rlnoc-bench --bin figures            # full grid
//! cargo run --release -p rlnoc-bench --bin figures -- --quick # smoke run
//! RLNOC_JOBS=8 SNAPSHOT_DIR=out/snap cargo run --release -p rlnoc-bench --bin figures
//! ```

use rlnoc_bench::{banner, campaign_from_env, export_telemetry, run_campaign, write_output};

fn main() {
    let campaign = campaign_from_env();
    let t0 = std::time::Instant::now();
    let result = run_campaign(&campaign);
    eprintln!("campaign completed in {:?}", t0.elapsed());

    let mut artifact = String::new();
    let mut emit = |table: String| {
        print!("{table}");
        println!();
        artifact.push_str(&table);
        artifact.push('\n');
    };

    banner(
        "Fig. 6 — retransmitted packets",
        "RL −48% vs CRC on average; ARQ+ECC −33%; RL 15% below ARQ+ECC",
    );
    emit(
        result.figure_table("retransmission traffic (packet equivalents)", |r| {
            r.retransmitted_packets_equiv.max(0.5)
        }),
    );

    banner(
        "Fig. 7 — execution-time speed-up",
        "RL 1.25× over CRC on average",
    );
    emit(
        result.figure_table("speed-up = CRC makespan / scheme makespan", |r| {
            1.0 / r.execution_cycles.max(1) as f64
        }),
    );

    banner(
        "Fig. 8 — average end-to-end latency",
        "RL −55% vs CRC; ARQ+ECC −30%; RL 10% below DT",
    );
    emit(result.figure_table("mean end-to-end packet latency", |r| r.avg_latency_cycles));

    banner(
        "Fig. 9 — energy efficiency (flits/energy)",
        "RL +64% vs CRC; RL 15% above DT",
    );
    emit(result.figure_table("energy efficiency", |r| r.energy_efficiency()));

    banner("Fig. 10 — dynamic power", "RL −46% vs CRC; RL 17% below DT");
    emit(result.figure_table("mean dynamic power", |r| r.dynamic_power_w()));

    write_output("figures.txt", &artifact);
    export_telemetry(&campaign.telemetry);
}
