//! Graceful-degradation figure: saturation throughput and
//! delivered-packet fraction vs. % permanently failed links, for the RL
//! controller vs. the decision tree vs. the static CRC baseline.
//!
//! The sweep draws **one** master fault sequence (connectivity-filtered,
//! so the mesh never partitions) and takes prefixes of its placement
//! order: fault sets are *nested*, so each sampled fraction degrades a
//! strict superset of the previous one's topology. Every fault fires at
//! cycle 1 — learning schemes pre-train on the same network instance and
//! therefore reach their measurement window at different absolute
//! cycles, so an early fault is the only placement that gives every
//! scheme the same dying topology for its whole measured run.
//!
//! Each fraction runs as a full [`Campaign`] through `rlnoc-runner`
//! (`RLNOC_JOBS` workers, `SNAPSHOT_DIR`/`RESUME` checkpointing); the
//! schedule folds into the campaign fingerprint, so checkpoints from
//! different fractions never collide and a resumed sweep is
//! byte-identical to a fresh serial one.

use noc_fault::hardfault::{mesh_links, HardFaultSchedule};
use noc_sim::topology::Mesh;
use noc_sim::traffic::TrafficPattern;
use rlnoc_bench::{banner, campaign_from_env, export_telemetry, run_campaign, write_output};
use rlnoc_core::benchmarks::{PhaseSpec, WorkloadProfile};
use rlnoc_core::experiment::{ErrorControlScheme, ExperimentReport};
use std::fmt::Write as _;
use std::sync::Arc;

/// Failed-link fractions sampled, percent of total mesh links. Coarse
/// steps keep the per-step capacity loss well above the (averaged)
/// escape-tree reshaping noise.
const FRACTIONS_PCT: [u64; 5] = [0, 10, 20, 30, 40];

/// Independent master fault draws averaged per fraction.
const DRAWS: u64 = 5;

/// Schemes compared (the figure contrasts control policies, so the
/// always-on ARQ+ECC scheme is omitted).
const SCHEMES: [ErrorControlScheme; 3] = [
    ErrorControlScheme::StaticCrc,
    ErrorControlScheme::DecisionTree,
    ErrorControlScheme::ProposedRl,
];

/// Near-saturation uniform traffic: the figure measures *capacity*
/// (saturation throughput), so the offered load must exceed what the
/// degraded topologies can carry — PARSEC-profile rates leave the mesh
/// so far below saturation that dead links cost nothing measurable.
fn saturation_workload(duration: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "saturation",
        phases: vec![PhaseSpec {
            cycles: duration,
            injection_rate: 0.10,
            pattern: TrafficPattern::UniformRandom,
        }],
        duration_cycles: duration,
    }
}

/// Delivered data flits per cycle of measured makespan.
fn throughput(r: &ExperimentReport) -> f64 {
    if r.execution_cycles == 0 {
        return 0.0;
    }
    r.flits_delivered as f64 / r.execution_cycles as f64
}

/// Delivered fraction of *offered* packets — refused-unreachable offers
/// count against it, so a partitioning schedule (not produced by this
/// sweep's connectivity-filtered draw) would show up honestly.
fn delivered_fraction(r: &ExperimentReport) -> f64 {
    let offered = r.packets_injected + r.packets_refused_unreachable;
    if offered == 0 {
        return 0.0;
    }
    r.packets_delivered as f64 / offered as f64
}

fn main() {
    banner(
        "Fig. D — graceful degradation under permanent link failures",
        "self-healing reroute keeps all schemes delivering; RL holds its \
         throughput edge over the static baseline as links die",
    );
    let mut base = campaign_from_env();
    base.schemes = SCHEMES.to_vec();
    let duration = base.measure_cycles.unwrap_or(20_000);
    base.workloads = vec![saturation_workload(duration)];

    let (w, h) = (base.noc.mesh.width(), base.noc.mesh.height());
    let total_links = mesh_links(w, h);
    // Master draws: enough placements for the largest fraction, all at
    // cycle 1. Prefixes of each placement order are themselves valid
    // connected schedules (connectivity was checked incrementally), so
    // each draw contributes a *nested* family of fault sets; averaging
    // across independent draws smooths out the luck of any single
    // up*/down* tree reshaping.
    let max_pct = *FRACTIONS_PCT.iter().max().expect("fractions nonempty");
    let want = (total_links * max_pct / 100) as usize;
    let masters: Vec<HardFaultSchedule> = (0..DRAWS)
        .map(|d| {
            HardFaultSchedule::random(
                Mesh::new(w, h),
                want,
                0,
                (1, 1),
                base.seed ^ 0x5EED_000D ^ d,
            )
        })
        .collect();
    for master in &masters {
        if master.entries.len() < want {
            eprintln!(
                "note: a draw saturated at {} of {} requested link faults; \
                 its top fractions share that topology",
                master.entries.len(),
                want
            );
        }
    }

    let mut rows = Vec::new();
    for pct in FRACTIONS_PCT {
        // 0% is fault-free and so draw-independent: run it once.
        let draws = if pct == 0 {
            &masters[..1]
        } else {
            &masters[..]
        };
        let mut sums = vec![(0.0f64, 0.0f64); SCHEMES.len()];
        let mut k_shown = 0;
        for master in draws {
            let k = ((total_links * pct / 100) as usize).min(master.entries.len());
            k_shown = k;
            let mut campaign = base.clone();
            if k > 0 {
                campaign.hard_faults = Some(Arc::new(HardFaultSchedule::explicit(
                    Mesh::new(w, h),
                    master.entries[..k].to_vec(),
                )));
            }
            let result = run_campaign(&campaign);
            for (i, &scheme) in SCHEMES.iter().enumerate() {
                let reports: Vec<&ExperimentReport> = result
                    .reports
                    .iter()
                    .filter(|r| r.scheme == scheme)
                    .collect();
                assert!(!reports.is_empty(), "campaign ran every scheme");
                let n = reports.len() as f64;
                sums[i].0 += reports.iter().map(|r| throughput(r)).sum::<f64>() / n;
                sums[i].1 += reports.iter().map(|r| delivered_fraction(r)).sum::<f64>() / n;
            }
        }
        let n = draws.len() as f64;
        let cells: Vec<(f64, f64)> = sums.iter().map(|&(t, f)| (t / n, f / n)).collect();
        rows.push((pct, k_shown, cells));
    }

    let mut table = String::new();
    writeln!(
        table,
        "# graceful degradation (uniform near-saturation load, nested fault sets)"
    )
    .unwrap();
    writeln!(
        table,
        "# throughput = delivered flits / makespan cycle; frac = delivered / offered packets"
    )
    .unwrap();
    write!(table, "{:>8}{:>8}", "%links", "faults").unwrap();
    for scheme in SCHEMES {
        write!(table, "{:>12}{:>10}", format!("{scheme} thr"), "frac").unwrap();
    }
    writeln!(table).unwrap();
    for (pct, k, cells) in &rows {
        write!(table, "{pct:>8}{k:>8}").unwrap();
        for (thr, frac) in cells {
            write!(table, "{thr:>12.4}{frac:>10.4}").unwrap();
        }
        writeln!(table).unwrap();
    }
    print!("{table}");
    write_output("fig_degradation.txt", &table);
    export_telemetry(&base.telemetry);
}
