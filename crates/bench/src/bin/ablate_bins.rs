//! Ablation: state-space discretization granularity.
//!
//! The paper discretizes each feature into ≤5 bins "to keep the size of
//! the state-action table small, so that Q-learning converges in feasible
//! time". This sweep varies the bin count uniformly across features.

use noc_rl::state::StateSpace;
use rlnoc_bench::{export_telemetry, telemetry_from_env};
use rlnoc_core::benchmarks::WorkloadProfile;
use rlnoc_core::experiment::{ErrorControlScheme, Experiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry = telemetry_from_env();
    println!("=== Ablation: feature bins per dimension (canneal, RL scheme) ===\n");
    println!(
        "{:>6}{:>12}{:>12}{:>14}{:>16}",
        "bins", "states", "latency", "retx (pkts)", "eff (flits/J)"
    );
    let reports = rlnoc_bench::run_variants(vec![2usize, 3, 4, 5, 6], |bins| {
        let space = StateSpace::with_uniform_bins(bins);
        let states = space.num_states();
        let mut builder = Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .workload(WorkloadProfile::canneal())
            .seed(2019)
            .telemetry(telemetry.clone())
            .rl_state_space(space);
        if quick {
            builder = builder
                .noc(noc_sim::config::NocConfig::builder().mesh(4, 4).build())
                .pretrain_cycles(20_000)
                .measure_cycles(8_000);
        } else {
            builder = builder.measure_cycles(20_000);
        }
        (
            bins,
            states,
            builder.build().expect("valid ablation config").run(),
        )
    });
    for (bins, states, report) in reports {
        println!(
            "{:>6}{:>12}{:>12.2}{:>14.1}{:>16.3e}",
            bins,
            states,
            report.avg_latency_cycles,
            report.retransmitted_packets_equiv,
            report.energy_efficiency()
        );
    }
    export_telemetry(&telemetry);
}
