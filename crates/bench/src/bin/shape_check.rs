//! Full-grid campaign dump used to populate EXPERIMENTS.md.
use rlnoc_bench::{export_telemetry, run_campaign, telemetry_from_env, write_output};

fn main() {
    use rlnoc_core::campaign::Campaign;
    let mut c = Campaign::paper_default();
    c.measure_cycles = Some(20_000);
    c.telemetry = telemetry_from_env();
    let t0 = std::time::Instant::now();
    let result = run_campaign(&c);
    eprintln!("campaign elapsed: {:?}", t0.elapsed());
    let mut artifact = String::new();
    let mut emit = |table: String| {
        print!("{table}");
        artifact.push_str(&table);
    };
    emit(
        result.figure_table("Fig6 retransmissions (normalized to CRC)", |r| {
            r.retransmitted_packets_equiv.max(0.5)
        }),
    );
    emit(
        result.figure_table("Fig7 speed-up (CRC makespan / scheme makespan)", |r| {
            1.0 / r.execution_cycles.max(1) as f64
        }),
    );
    emit(
        result.figure_table("Fig8 avg E2E latency (normalized to CRC)", |r| {
            r.avg_latency_cycles
        }),
    );
    emit(
        result.figure_table("Fig9 energy efficiency (normalized to CRC)", |r| {
            r.energy_efficiency()
        }),
    );
    emit(
        result.figure_table("Fig10 dynamic power (normalized to CRC)", |r| {
            r.dynamic_power_w()
        }),
    );
    write_output("shape_check.txt", &artifact);
    export_telemetry(&c.telemetry);
}
