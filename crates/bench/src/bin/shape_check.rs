//! Full-grid campaign dump used to populate EXPERIMENTS.md.
use rlnoc_bench::{export_telemetry, telemetry_from_env};

fn main() {
    use rlnoc_core::campaign::Campaign;
    let mut c = Campaign::paper_default();
    c.measure_cycles = Some(20_000);
    c.telemetry = telemetry_from_env();
    let t0 = std::time::Instant::now();
    let result = c.run();
    eprintln!("campaign elapsed: {:?}", t0.elapsed());
    print!(
        "{}",
        result.figure_table("Fig6 retransmissions (normalized to CRC)", |r| r
            .retransmitted_packets_equiv
            .max(0.5))
    );
    print!(
        "{}",
        result.figure_table("Fig7 speed-up (CRC makespan / scheme makespan)", |r| 1.0
            / r.execution_cycles.max(1) as f64)
    );
    print!(
        "{}",
        result.figure_table("Fig8 avg E2E latency (normalized to CRC)", |r| r
            .avg_latency_cycles)
    );
    print!(
        "{}",
        result.figure_table("Fig9 energy efficiency (normalized to CRC)", |r| r
            .energy_efficiency())
    );
    print!(
        "{}",
        result.figure_table("Fig10 dynamic power (normalized to CRC)", |r| r
            .dynamic_power_w())
    );
    export_telemetry(&c.telemetry);
}
