//! Regenerates Fig. 8: average end-to-end packet latency, normalized to
//! the CRC baseline.

use rlnoc_bench::{banner, campaign_from_env};

fn main() {
    banner(
        "Fig. 8 — average end-to-end latency",
        "RL −55% vs CRC; ARQ+ECC −30%; RL 10% below DT",
    );
    let result = campaign_from_env().run();
    print!(
        "{}",
        result.figure_table("mean end-to-end packet latency", |r| r.avg_latency_cycles)
    );
}
