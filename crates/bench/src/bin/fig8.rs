//! Regenerates Fig. 8: average end-to-end packet latency, normalized to
//! the CRC baseline.

use rlnoc_bench::{banner, campaign_from_env, export_telemetry, run_campaign, write_output};

fn main() {
    banner(
        "Fig. 8 — average end-to-end latency",
        "RL −55% vs CRC; ARQ+ECC −30%; RL 10% below DT",
    );
    let campaign = campaign_from_env();
    let result = run_campaign(&campaign);
    let table = result.figure_table("mean end-to-end packet latency", |r| r.avg_latency_cycles);
    print!("{table}");
    write_output("fig8.txt", &table);
    export_telemetry(&campaign.telemetry);
}
