//! Ablation: the multi-agent learning aids this reproduction adds on top
//! of the paper's recipe (see DESIGN.md §5) — the fleet-coherent
//! forced-mode curriculum and the confidence-gated fallback.
//!
//! "paper-literal" disables both: free ε-greedy pre-training with pure
//! greedy selection, exactly as §IV-C describes.

use noc_rl::agent::AgentConfig;
use noc_rl::schedule::Schedule;
use rlnoc_bench::{export_telemetry, telemetry_from_env};
use rlnoc_core::benchmarks::WorkloadProfile;
use rlnoc_core::experiment::{ErrorControlScheme, Experiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry = telemetry_from_env();
    println!("=== Ablation: curriculum + confidence gate (canneal, RL scheme) ===\n");
    println!(
        "{:<22}{:>12}{:>14}{:>16}{:>26}",
        "variant", "latency", "retx (pkts)", "eff (flits/J)", "mode histogram"
    );
    let tuned = AgentConfig {
        alpha: Schedule::Exponential {
            from: 0.4,
            decay: 0.997,
            floor: 0.1,
        },
        fallback_action: Some(1),
        ..AgentConfig::paper_default()
    };
    let no_gate = AgentConfig {
        fallback_action: None,
        ..tuned.clone()
    };
    let variants: [(&str, bool, AgentConfig); 4] = [
        ("curriculum + gate", true, tuned.clone()),
        ("curriculum only", true, no_gate.clone()),
        ("gate only", false, tuned),
        ("paper-literal", false, AgentConfig::paper_default()),
    ];
    let reports = rlnoc_bench::run_variants(variants.to_vec(), |(name, curriculum, config)| {
        let mut builder = Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .workload(WorkloadProfile::canneal())
            .seed(2019)
            .telemetry(telemetry.clone())
            .rl_curriculum(curriculum)
            .rl_config(config);
        if quick {
            builder = builder
                .noc(noc_sim::config::NocConfig::builder().mesh(4, 4).build())
                .pretrain_cycles(20_000)
                .measure_cycles(8_000);
        } else {
            builder = builder.measure_cycles(20_000);
        }
        (name, builder.build().expect("valid ablation config").run())
    });
    for (name, report) in reports {
        println!(
            "{:<22}{:>12.2}{:>14.1}{:>16.3e}{:>26}",
            name,
            report.avg_latency_cycles,
            report.retransmitted_packets_equiv,
            report.energy_efficiency(),
            format!("{:?}", report.mode_histogram)
        );
    }
    export_telemetry(&telemetry);
}
