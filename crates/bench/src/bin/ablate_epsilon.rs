//! Ablation: exploration probability ε.
//!
//! The paper fixes ε = 0.1. This sweep shows the trade-off: ε = 0 cannot
//! track regime changes after pre-training, large ε pays a growing
//! exploration tax (random bad modes during measurement).

use noc_rl::agent::AgentConfig;
use noc_rl::schedule::Schedule;
use rlnoc_bench::{export_telemetry, telemetry_from_env};
use rlnoc_core::benchmarks::WorkloadProfile;
use rlnoc_core::experiment::{ErrorControlScheme, Experiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry = telemetry_from_env();
    println!("=== Ablation: exploration probability ε (canneal, RL scheme) ===\n");
    println!(
        "{:>6}{:>12}{:>14}{:>14}{:>16}",
        "ε", "latency", "retx (pkts)", "exec cycles", "eff (flits/J)"
    );
    let reports = rlnoc_bench::run_variants(vec![0.0, 0.05, 0.1, 0.2, 0.4], |epsilon| {
        let mut builder = Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .workload(WorkloadProfile::canneal())
            .seed(2019)
            .telemetry(telemetry.clone())
            .rl_config(AgentConfig {
                epsilon: Schedule::Constant(epsilon),
                alpha: Schedule::Exponential {
                    from: 0.4,
                    decay: 0.997,
                    floor: 0.1,
                },
                ..AgentConfig::paper_default()
            });
        if quick {
            builder = builder
                .noc(noc_sim::config::NocConfig::builder().mesh(4, 4).build())
                .pretrain_cycles(20_000)
                .measure_cycles(8_000);
        } else {
            builder = builder.measure_cycles(20_000);
        }
        (
            epsilon,
            builder.build().expect("valid ablation config").run(),
        )
    });
    for (epsilon, report) in reports {
        println!(
            "{:>6.2}{:>12.2}{:>14.1}{:>14}{:>16.3e}",
            epsilon,
            report.avg_latency_cycles,
            report.retransmitted_packets_equiv,
            report.execution_cycles,
            report.energy_efficiency()
        );
    }
    export_telemetry(&telemetry);
}
