//! CI performance gate over the macro (whole-network) benchmarks.
//!
//! Compares a freshly measured `BENCH_ci.json` (produced by running the
//! Criterion harness with `CRITERION_JSON=BENCH_ci.json`, typically in
//! `CRITERION_QUICK=1` mode) against the committed `BENCH_after.json`
//! reference and exits non-zero when any `network_cycle*` bench median
//! regressed by more than the tolerance (default 20%, override with
//! `BENCH_GATE_TOLERANCE=0.30` etc.).
//!
//! Only the macro benches are gated: sub-microsecond micro-bench medians
//! are too noisy across runner hardware to gate on, but they are still
//! printed for the log.
//!
//! Usage: `bench_gate [<baseline.json> [<current.json>]]`
//! (defaults: `BENCH_after.json`, `BENCH_ci.json`).

use std::process::ExitCode;

/// Prefix selecting the gated whole-network cycle benchmarks.
const MACRO_PREFIX: &str = "network_cycle";

/// Parses the flat `{"name": median_ns, ...}` object the in-tree
/// Criterion shim writes for `CRITERION_JSON`. Line-oriented on purpose
/// — the workspace's serde is an API shim without a JSON backend.
fn parse_flat_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.rsplit_once("\":") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_after.json".into());
    let current_path = args.next().unwrap_or_else(|| "BENCH_ci.json".into());
    let tolerance: f64 = std::env::var("BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => parse_flat_json(&text),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);
    let lookup =
        |set: &[(String, f64)], name: &str| set.iter().find(|(n, _)| n == name).map(|&(_, v)| v);

    println!(
        "bench gate: {current_path} vs {baseline_path} (macro tolerance {:+.0}%)",
        tolerance * 100.0
    );
    let mut failed = false;
    for (name, base) in &baseline {
        let gated = name.starts_with(MACRO_PREFIX);
        match lookup(&current, name) {
            Some(now) => {
                let ratio = now / base;
                let verdict = if !gated {
                    "info"
                } else if ratio > 1.0 + tolerance {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!("  [{verdict:4}] {name}: {base:.1} ns -> {now:.1} ns ({ratio:.2}x)");
            }
            None if gated => {
                failed = true;
                println!("  [FAIL] {name}: missing from {current_path}");
            }
            None => println!("  [info] {name}: not measured in {current_path}"),
        }
    }

    if failed {
        eprintln!("bench_gate: network macro benchmark regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all gated benchmarks within tolerance");
        ExitCode::SUCCESS
    }
}
