//! CI performance gate over the committed benchmark baseline.
//!
//! Compares a freshly measured `BENCH_ci.json` (produced by running the
//! Criterion harness with `CRITERION_JSON=BENCH_ci.json`, typically in
//! `CRITERION_QUICK=1` mode) against the committed `BENCH_baseline.json`
//! reference and exits non-zero when any benchmark median regressed by
//! more than its class tolerance:
//!
//! * **macro** (`network_cycle*` whole-network cycles and
//!   `campaign_batched*` lockstep campaign groups): default 20%,
//!   override with `BENCH_GATE_TOLERANCE=0.30` etc.
//! * **micro** (everything else — nanosecond kernels like
//!   `crc32_flit_checksum` or `secded64_encode`): default 30% to
//!   tolerate nanosecond-scale jitter across runner hardware, override
//!   with `BENCH_GATE_MICRO_TOLERANCE=0.50` etc.
//!
//! Micro kernels used to be print-only, which let a real
//! `crc32_flit_checksum` regression ride through CI; both classes are
//! gated now, just with different headroom.
//!
//! Usage: `bench_gate [<baseline.json> [<current.json>]]`
//! (defaults: `BENCH_baseline.json`, `BENCH_ci.json`).

use std::process::ExitCode;

/// Prefixes selecting the macro-class benchmarks: whole-network cycle
/// loops and batched-campaign lockstep groups.
const MACRO_PREFIXES: [&str; 2] = ["network_cycle", "campaign_batched"];

/// Word-parallel batch kernels that must genuinely amortize over their
/// scalar counterparts: `(batch cell, scalar cell, lanes, min ratio)`.
/// The gate requires `lanes * scalar_ns / batch_ns >= min_ratio` in the
/// *current* measurement, so a refactor that quietly serializes a batch
/// kernel back to scalar speed fails CI even if its absolute time still
/// sits inside the regression tolerance. Floors sit well under the
/// measured ratios (~1.4x encode, ~2x decode) to absorb runner jitter.
const BATCH_RATIOS: [(&str, &str, f64, f64); 2] = [
    ("secded64_encode_batch8", "secded64_encode", 8.0, 1.10),
    ("secded64_decode_batch8", "secded64_decode_clean", 8.0, 1.30),
];

/// Parses the flat `{"name": median_ns, ...}` object the in-tree
/// Criterion shim writes for `CRITERION_JSON`. Hand-rolled (the
/// workspace's serde is an API shim without a JSON backend) but
/// whitespace-agnostic: entries are scanned as `"key"` / `:` / number
/// regardless of line structure, so compact one-line JSON parses too.
fn parse_flat_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('"') else {
            break;
        };
        let name = &after[..close];
        let tail = after[close + 1..].trim_start();
        let Some(tail) = tail.strip_prefix(':') else {
            rest = &after[close + 1..];
            continue;
        };
        let tail = tail.trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
            .unwrap_or(tail.len());
        if let Ok(v) = tail[..end].parse::<f64>() {
            out.push((name.to_string(), v));
        }
        rest = &tail[end..];
    }
    out
}

fn env_tolerance(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());
    let current_path = args.next().unwrap_or_else(|| "BENCH_ci.json".into());
    let macro_tolerance = env_tolerance("BENCH_GATE_TOLERANCE", 0.20);
    let micro_tolerance = env_tolerance("BENCH_GATE_MICRO_TOLERANCE", 0.30);

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => parse_flat_json(&text),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);
    let lookup =
        |set: &[(String, f64)], name: &str| set.iter().find(|(n, _)| n == name).map(|&(_, v)| v);

    println!(
        "bench gate: {current_path} vs {baseline_path} \
         (macro {:+.0}%, micro {:+.0}%)",
        macro_tolerance * 100.0,
        micro_tolerance * 100.0
    );
    let mut failed = false;
    for (name, base) in &baseline {
        let (class, tolerance) = if MACRO_PREFIXES.iter().any(|p| name.starts_with(p)) {
            ("macro", macro_tolerance)
        } else {
            ("micro", micro_tolerance)
        };
        match lookup(&current, name) {
            Some(now) => {
                let ratio = now / base;
                let verdict = if ratio > 1.0 + tolerance {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "  [{verdict:4}] ({class}) {name}: {base:.1} ns -> {now:.1} ns ({ratio:.2}x)"
                );
            }
            None => {
                failed = true;
                println!("  [FAIL] ({class}) {name}: missing from {current_path}");
            }
        }
    }

    for (batch, scalar, lanes, min_ratio) in BATCH_RATIOS {
        match (lookup(&current, batch), lookup(&current, scalar)) {
            (Some(b), Some(s)) if b > 0.0 => {
                let ratio = lanes * s / b;
                let verdict = if ratio < min_ratio {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "  [{verdict:4}] (batch) {batch}: {ratio:.2}x over {lanes:.0} x \
                     {scalar} (floor {min_ratio:.2}x)"
                );
            }
            _ => {
                failed = true;
                println!("  [FAIL] (batch) {batch} / {scalar}: missing from {current_path}");
            }
        }
    }

    if failed {
        eprintln!("bench_gate: benchmark regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all gated benchmarks within tolerance");
        ExitCode::SUCCESS
    }
}
