//! Regenerates Table II: the simulation parameters.

use noc_sim::config::NocConfig;

fn main() {
    let c = NocConfig::default();
    println!("=== Table II: simulation parameters ===");
    println!("{:<28}{}", "# of cores", c.mesh.num_nodes());
    println!(
        "{:<28}{} V, {:.1} GHz",
        "Voltage and Frequency",
        c.voltage,
        c.frequency / 1e9
    );
    println!(
        "{:<28}{}x{} 2D Mesh, X-Y Routing",
        "NoC Parameters",
        c.mesh.width(),
        c.mesh.height()
    );
    println!("{:<28}4-stage routers, {} VCs per port", "", c.vcs_per_port);
    println!(
        "{:<28}128 bits/flit, {} flits",
        "Packet Size", c.flits_per_packet
    );
    println!("{:<28}{} flits/VC", "Buffer depth", c.vc_depth);
    println!("{:<28}{} cycle(s)", "Link latency", c.link_latency);
    println!("{:<28}{} cycle(s)", "ACK/NACK latency", c.ack_latency);
}
