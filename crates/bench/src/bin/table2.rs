//! Regenerates Table II: the simulation parameters.

use noc_sim::config::NocConfig;
use rlnoc_bench::write_output;
use std::fmt::Write as _;

fn main() {
    let c = NocConfig::default();
    let mut table = String::new();
    writeln!(table, "=== Table II: simulation parameters ===").expect("write to string");
    writeln!(table, "{:<28}{}", "# of cores", c.mesh.num_nodes()).expect("write to string");
    writeln!(
        table,
        "{:<28}{} V, {:.1} GHz",
        "Voltage and Frequency",
        c.voltage,
        c.frequency / 1e9
    )
    .expect("write to string");
    writeln!(
        table,
        "{:<28}{}x{} 2D Mesh, X-Y Routing",
        "NoC Parameters",
        c.mesh.width(),
        c.mesh.height()
    )
    .expect("write to string");
    writeln!(
        table,
        "{:<28}4-stage routers, {} VCs per port",
        "", c.vcs_per_port
    )
    .expect("write to string");
    writeln!(
        table,
        "{:<28}128 bits/flit, {} flits",
        "Packet Size", c.flits_per_packet
    )
    .expect("write to string");
    writeln!(table, "{:<28}{} flits/VC", "Buffer depth", c.vc_depth).expect("write to string");
    writeln!(table, "{:<28}{} cycle(s)", "Link latency", c.link_latency).expect("write to string");
    writeln!(
        table,
        "{:<28}{} cycle(s)",
        "ACK/NACK latency", c.ack_latency
    )
    .expect("write to string");
    print!("{table}");
    write_output("table2.txt", &table);
}
