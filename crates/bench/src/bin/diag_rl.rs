//! Diagnostic: inspect what the RL agents learned on one workload.
use noc_rl::NUM_ACTIONS;
use rlnoc_bench::{export_telemetry, telemetry_from_env};
use rlnoc_core::benchmarks::WorkloadProfile;
use rlnoc_core::experiment::{ErrorControlScheme, Experiment};

fn main() {
    let telemetry = telemetry_from_env();
    let (report, artifacts) = Experiment::builder()
        .scheme(ErrorControlScheme::ProposedRl)
        .workload(WorkloadProfile::dedup())
        .seed(2019)
        .measure_cycles(20_000)
        .telemetry(telemetry.clone())
        .build()
        .expect("valid")
        .run_inspect();
    println!(
        "lat={:.1} retx_eq={:.0} modes={:?}",
        report.avg_latency_cycles, report.retransmitted_packets_equiv, report.mode_histogram
    );
    let (agents, _space) = artifacts.controllers.rl_agents().expect("rl bank");
    for ri in [0usize, 9, 18, 27] {
        let q = agents[ri].q_table();
        let visited = q.visited_states();
        println!(
            "router {ri}: {} distinct states, T={:.1}C",
            visited.len(),
            artifacts.temperatures[ri]
        );
        for &(s, total) in visited.iter().take(6) {
            let row = q.row(s);
            let visits: Vec<u32> = (0..NUM_ACTIONS).map(|a| q.visit_count(s, a)).collect();
            // decode state index: bins are 5,5,5,4,4,5 (buffer, in-util, out-util, nack-in, nack-out, temp)
            let mut idx = s;
            let mut bins = [0usize; 6];
            for (slot, &count) in [5usize, 4, 4, 5, 5, 5].iter().enumerate() {
                bins[5 - slot] = idx % count;
                idx /= count;
            }
            println!(
                "  state {s} [buf={} inU={} outU={} nackI={} nackO={} T={}] visits={total} per-a={visits:?} Q={row:.3?} best={}",
                bins[0], bins[1], bins[2], bins[3], bins[4], bins[5], q.best_action(s)
            );
        }
    }
    export_telemetry(&telemetry);
}
