//! Ad-hoc wall-clock breakdown of one campaign lane: total run time vs
//! time inside the simulator's per-cycle phases (telemetry spans).
//!
//! Not a benchmark — a diagnosis tool for deciding which layer to
//! optimize next. Run with `cargo run --release -p rlnoc-bench
//! --example profile_campaign`.

use noc_fault::hardfault::HardFaultSchedule;
use noc_sim::config::NocConfig;
use noc_sim::topology::Mesh;
use noc_sim::traffic::TrafficPattern;
use rlnoc_core::benchmarks::{PhaseSpec, WorkloadProfile};
use rlnoc_core::{ErrorControlScheme, Experiment};
use rlnoc_telemetry::Telemetry;
use std::sync::Arc;
use std::time::Instant;

fn sparse_workload(duration: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "sparse",
        phases: vec![PhaseSpec {
            cycles: duration,
            injection_rate: 0.002,
            pattern: TrafficPattern::UniformRandom,
        }],
        duration_cycles: duration,
    }
}

fn lane(telemetry: Option<&Telemetry>) -> Experiment {
    let schedule = Arc::new(HardFaultSchedule::random(
        Mesh::new(8, 8),
        40,
        0,
        (100, 1_300),
        31,
    ));
    let mut b = Experiment::builder()
        .scheme(ErrorControlScheme::StaticCrc)
        .workload(sparse_workload(1_200))
        .noc(NocConfig::builder().mesh(8, 8).build())
        .warmup_cycles(100)
        .measure_cycles(1_200)
        .drain_limit(20_000)
        .hard_faults(schedule)
        .seed(rand::seed_stream(41, 0));
    if let Some(t) = telemetry {
        b = b.telemetry(t.clone());
    }
    b.build().expect("valid lane")
}

fn lane_fault_free() -> Experiment {
    Experiment::builder()
        .scheme(ErrorControlScheme::StaticCrc)
        .workload(sparse_workload(1_200))
        .noc(NocConfig::builder().mesh(8, 8).build())
        .warmup_cycles(100)
        .measure_cycles(1_200)
        .drain_limit(20_000)
        .seed(rand::seed_stream(41, 0))
        .build()
        .expect("valid lane")
}

fn lanes(k: u64) -> Vec<Experiment> {
    let schedule = Arc::new(HardFaultSchedule::random(
        Mesh::new(8, 8),
        40,
        0,
        (100, 1_300),
        31,
    ));
    (0..k)
        .map(|i| {
            Experiment::builder()
                .scheme(ErrorControlScheme::StaticCrc)
                .workload(sparse_workload(1_200))
                .noc(NocConfig::builder().mesh(8, 8).build())
                .warmup_cycles(100)
                .measure_cycles(1_200)
                .drain_limit(20_000)
                .hard_faults(schedule.clone())
                .seed(rand::seed_stream(41, i))
                .build()
                .expect("valid bench lane")
        })
        .collect()
}

fn main() {
    // Lockstep with telemetry: aggregate phase sums across 8 lanes
    // (first lane computes each reroute, later lanes hit the cache).
    {
        let tel = Telemetry::enabled();
        let schedule = Arc::new(HardFaultSchedule::random(
            Mesh::new(8, 8),
            40,
            0,
            (100, 1_300),
            31,
        ));
        let ls: Vec<Experiment> = (0..8)
            .map(|i| {
                Experiment::builder()
                    .scheme(ErrorControlScheme::StaticCrc)
                    .workload(sparse_workload(1_200))
                    .noc(NocConfig::builder().mesh(8, 8).build())
                    .warmup_cycles(100)
                    .measure_cycles(1_200)
                    .drain_limit(20_000)
                    .hard_faults(schedule.clone())
                    .seed(rand::seed_stream(41, i))
                    .telemetry(tel.clone())
                    .build()
                    .expect("valid bench lane")
            })
            .collect();
        let t0 = Instant::now();
        let _r = Experiment::run_batch(ls);
        println!("lockstep8 with telemetry: {:?}", t0.elapsed());
        for name in [
            "sim.phase.process_events",
            "sim.phase.inject",
            "sim.phase.sa_st",
            "sim.phase.va",
            "sim.phase.rc",
            "sim.phase.sample",
            "sim.hardfault.apply",
        ] {
            let snap = tel.timer(name).snapshot();
            println!(
                "  {name}: count {} sum {:.3} ms",
                snap.count,
                snap.sum as f64 / 1e6
            );
        }
    }

    // Batch decomposition: serial vs lockstep over 3 reps each.
    for _ in 0..3 {
        let t0 = Instant::now();
        let _r: Vec<_> = lanes(8).into_iter().map(Experiment::run).collect();
        let serial = t0.elapsed();
        let t0 = Instant::now();
        let _r = Experiment::run_batch(lanes(8));
        let lockstep = t0.elapsed();
        let t0 = Instant::now();
        let _r = Experiment::run_batch(lanes(1));
        let k1 = t0.elapsed();
        println!("serial8 {serial:?}  lockstep8 {lockstep:?}  lockstep1 {k1:?}");
    }

    // Pass 0: fault-free lane for comparison.
    let t0 = Instant::now();
    let ff = lane_fault_free().run();
    println!(
        "fault-free lane run: {:?} (delivered {})",
        t0.elapsed(),
        ff.packets_delivered
    );

    // Pass 1: plain wall time, fused path (no telemetry).
    let t0 = Instant::now();
    let report = lane(None).run();
    let plain = t0.elapsed();
    println!("plain lane run: {plain:?}");
    println!(
        "  delivered {} / injected {}",
        report.packets_delivered, report.packets_injected
    );

    // Pass 2: telemetry enabled (split path) to get per-phase sums.
    let tel = Telemetry::enabled();
    let t0 = Instant::now();
    let _report = lane(Some(&tel)).run();
    let spanned = t0.elapsed();
    println!("spanned lane run: {spanned:?}");
    let mut phase_total = 0u64;
    for name in [
        "sim.phase.process_events",
        "sim.phase.inject",
        "sim.phase.sa_st",
        "sim.phase.va",
        "sim.phase.rc",
        "sim.phase.sample",
        "sim.hardfault.apply",
    ] {
        let snap = tel.timer(name).snapshot();
        phase_total += snap.sum;
        println!(
            "  {name}: count {} sum {:.3} ms mean {:.0} ns",
            snap.count,
            snap.sum as f64 / 1e6,
            snap.mean()
        );
    }
    println!("  phases total: {:.3} ms", phase_total as f64 / 1e6);
    for (name, v) in tel.counter_snapshot() {
        if name.contains("cycle") || name.contains("worklist") {
            println!("  counter {name}: {v}");
        }
    }
}
