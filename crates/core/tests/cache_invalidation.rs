//! The protocol's per-epoch error-probability cache must always equal a
//! fresh VARIUS evaluation, *bitwise* — the golden campaign fixtures
//! depend on the cached path being indistinguishable from recomputing
//! `flit_error_probability` per flit-hop.

use noc_fault::timing::{TimingErrorModel, TimingErrorParams};
use noc_fault::variation::VariationMap;
use noc_sim::topology::Mesh;
use rlnoc_core::modes::OperationMode;
use rlnoc_core::protocol::FaultTolerantProtocol;

const W: u16 = 4;
const H: u16 = 4;
const N: usize = (W as usize) * (H as usize);

/// Asserts that every cached probability equals a freshly computed
/// `flit_error_probability` with the given inputs, comparing f64 bits.
fn assert_cache_fresh(
    protocol: &FaultTolerantProtocol,
    timing: &TimingErrorModel,
    variation: &VariationMap,
    temps: &[f64],
    utils: &[f64],
) {
    for node in 0..N {
        let relaxed = protocol.modes()[node].relaxed_timing();
        let fresh_link = timing.flit_error_probability(
            temps[node],
            utils[node],
            variation.factor(node),
            relaxed,
        );
        let fresh_raw =
            timing.flit_error_probability(temps[node], utils[node], variation.factor(node), false);
        assert_eq!(
            protocol.link_error_probability(node).to_bits(),
            fresh_link.to_bits(),
            "stale link cache at node {node}"
        );
        assert_eq!(
            protocol.raw_error_probability(node).to_bits(),
            fresh_raw.to_bits(),
            "stale raw cache at node {node}"
        );
        assert_eq!(
            protocol.link_error_probabilities()[node].to_bits(),
            fresh_link.to_bits()
        );
        assert_eq!(
            protocol.raw_error_probabilities()[node].to_bits(),
            fresh_raw.to_bits()
        );
    }
}

#[test]
fn cache_tracks_temperature_utilization_and_mode_updates() {
    let timing = TimingErrorModel::new(TimingErrorParams::default());
    let variation = VariationMap::generate(W, H, 0.08, 0.05, 41);
    let mut protocol = FaultTolerantProtocol::new(Mesh::new(W, H), timing, variation.clone(), 2024);

    // Construction defaults: 50 °C everywhere, idle links, mode 0.
    let mut temps = vec![50.0; N];
    let mut utils = vec![0.0; N];
    assert_cache_fresh(&protocol, &timing, &variation, &temps, &utils);

    // Drive the protocol through the update kinds a control epoch
    // performs, in varying orders, checking the cache after each.
    for step in 0..24usize {
        match step % 4 {
            0 => {
                for (i, t) in temps.iter_mut().enumerate() {
                    *t = 50.0 + ((step * 7 + i * 13) % 50) as f64 + 0.25;
                }
                protocol.set_temperatures(&temps);
            }
            1 => {
                for (i, u) in utils.iter_mut().enumerate() {
                    *u = ((step * 11 + i * 3) % 30) as f64 / 100.0;
                }
                protocol.set_utilizations(&utils);
            }
            2 => {
                let mode = match step % 16 {
                    2 => OperationMode::Mode1,
                    6 => OperationMode::Mode2,
                    10 => OperationMode::Mode3,
                    _ => OperationMode::Mode0,
                };
                protocol.set_mode(step % N, mode);
            }
            _ => {
                let mode = if step % 8 == 3 {
                    OperationMode::Mode3
                } else {
                    OperationMode::Mode1
                };
                protocol.set_all_modes(mode);
            }
        }
        assert_cache_fresh(&protocol, &timing, &variation, &temps, &utils);
    }
}

#[test]
fn mode_relaxation_is_reflected_immediately() {
    let timing = TimingErrorModel::default();
    let variation = VariationMap::uniform(W, H);
    let mut protocol = FaultTolerantProtocol::new(Mesh::new(W, H), timing, variation.clone(), 7);
    protocol.set_temperatures(&[95.0; N]);

    let before = protocol.link_error_probability(3);
    protocol.set_mode(3, OperationMode::Mode3);
    let relaxed = protocol.link_error_probability(3);
    assert!(relaxed < before * 1e-3, "mode 3 must collapse the cached p");
    // Raw probability ignores the relaxation and must be unchanged.
    assert_eq!(
        protocol.raw_error_probability(3).to_bits(),
        before.to_bits()
    );
    // Other nodes are untouched by a single-node mode change.
    assert_eq!(
        protocol.link_error_probability(2).to_bits(),
        before.to_bits()
    );

    protocol.set_mode(3, OperationMode::Mode0);
    assert_eq!(
        protocol.link_error_probability(3).to_bits(),
        before.to_bits()
    );
}
