//! Property tests pinning down the observable semantics of the four
//! operation modes.
//!
//! * Mode 3 (relaxed timing) runs produce **zero** hop-level
//!   retransmissions and **zero** escaped errors, however hot the chip.
//! * Mode-0 style runs (raw links, destination CRC only) with forced
//!   double-bit corruption trigger **exactly one** end-to-end
//!   retransmission per corrupted packet.
//! * Mode 2's proactive pre-retransmission never increases the
//!   delivered-packet count vs mode 1 under identical seeds — duplicate
//!   copies must never surface as extra deliveries.

use noc_coding::crc::Crc32;
use noc_sim::config::NocConfig;
use noc_sim::error_control::{EjectOutcome, ErrorControl, HopOutcome, TransferKind};
use noc_sim::flit::{Flit, PacketId};
use noc_sim::network::Network;
use noc_sim::stats::EventCounters;
use noc_sim::topology::LinkId;
use noc_testutil::{hot_network, traffic_pairs, HOT_MESH};
use proptest::prelude::*;
use rlnoc_core::modes::OperationMode;
use std::collections::HashSet;

const MESH_W: u16 = HOT_MESH.0;
const MESH_H: u16 = HOT_MESH.1;

/// Mode-0 semantics (raw links, destination CRC, no hop ARQ) with a
/// deterministic saboteur: the head flit of every targeted packet takes
/// a double-bit hit on its first link traversal of attempt 0. Every
/// later attempt rides clean, so each targeted packet fails its CRC
/// exactly once.
struct DoubleBitSaboteur {
    crc: Crc32,
    targets: HashSet<PacketId>,
    corrupted: HashSet<PacketId>,
}

impl DoubleBitSaboteur {
    fn new() -> Self {
        Self {
            crc: Crc32::new(),
            targets: HashSet::new(),
            corrupted: HashSet::new(),
        }
    }
}

impl ErrorControl for DoubleBitSaboteur {
    fn hop_transfer(
        &mut self,
        _link: LinkId,
        flit: &mut Flit,
        _cycle: u64,
        _kind: TransferKind,
        _protected: bool,
        _counters: &mut EventCounters,
    ) -> HopOutcome {
        if !flit.class.is_control()
            && flit.attempt == 0
            && flit.index == 0
            && self.targets.contains(&flit.packet)
            && self.corrupted.insert(flit.packet)
        {
            // Two flips in different payload words: undetectable by any
            // single-error logic, guaranteed caught by CRC-32.
            flit.flip_payload_bit(11);
            flit.flip_payload_bit(97);
        }
        HopOutcome::Delivered
    }

    fn eject_check(
        &mut self,
        flits: &[Flit],
        _cycle: u64,
        counters: &mut EventCounters,
    ) -> EjectOutcome {
        counters.crc_checks += flits.len() as u64;
        if flits.iter().all(|f| f.crc_ok(&self.crc)) {
            EjectOutcome::Accept
        } else {
            EjectOutcome::RequestRetransmit
        }
    }
}

proptest! {
    /// Mode 3 relaxes link timing until the fault model's error
    /// probability is zero: no faults are drawn, so no hop NACK, no
    /// flit retransmission, no CRC failure, and no silent corruption
    /// can occur — even at 100 °C.
    #[test]
    fn mode3_runs_are_fault_free(seed: u64, n_packets in 1usize..24) {
        let mut net = hot_network(OperationMode::Mode3, seed);
        for (src, dst) in traffic_pairs(net.mesh(), seed, n_packets) {
            net.offer(src, dst);
            net.step();
        }
        prop_assert!(net.run_until_quiescent(1_000_000), "mode 3 drains");

        let stats = net.stats();
        prop_assert_eq!(stats.packets_delivered, n_packets as u64);
        prop_assert_eq!(stats.flit_retransmissions, 0);
        prop_assert_eq!(stats.hop_nacks, 0);
        prop_assert_eq!(stats.packet_retransmissions, 0);
        prop_assert_eq!(stats.packets_failed_crc, 0);
        prop_assert_eq!(stats.silent_corruptions, 0);
        prop_assert_eq!(net.protocol().faults_injected(), 0, "relaxed timing suppresses every fault draw");
    }

    /// Raw mode-0 links leave corruption to the destination CRC: each
    /// packet whose head flit takes a forced double-bit error fails its
    /// end-to-end check exactly once, triggering exactly one source
    /// retransmission, and still gets delivered intact on attempt 1.
    #[test]
    fn mode0_double_bit_errors_cost_exactly_one_retransmission(
        seed: u64,
        modulus in 1u64..4,
        n_packets in 1usize..24,
    ) {
        let config = NocConfig::builder().mesh(MESH_W, MESH_H).build();
        let mut net = Network::new(config, DoubleBitSaboteur::new(), seed);
        let mut targeted = 0u64;
        for (src, dst) in traffic_pairs(net.mesh(), seed, n_packets) {
            let id = net.offer(src, dst);
            if id.0 % modulus == 0 {
                net.protocol_mut().targets.insert(id);
                targeted += 1;
            }
            net.step();
        }
        prop_assert!(net.run_until_quiescent(1_000_000), "retransmissions drain");

        let stats = net.stats();
        prop_assert_eq!(stats.packets_injected, n_packets as u64);
        prop_assert_eq!(stats.packets_delivered, n_packets as u64, "every packet delivered despite corruption");
        prop_assert_eq!(stats.packets_failed_crc, targeted, "each corrupted packet fails CRC once");
        prop_assert_eq!(stats.packet_retransmissions, targeted, "exactly one e2e retransmission per corrupted packet");
        prop_assert_eq!(stats.control_packets, targeted, "one retransmit request per corrupted packet");
        prop_assert_eq!(stats.flit_retransmissions, 0, "mode 0 has no hop-level ARQ");
        prop_assert_eq!(stats.silent_corruptions, 0, "CRC catches the forced flips");
    }

    /// Mode 2's proactive duplicate copies mask latency; they must
    /// never manufacture deliveries. Under identical seeds and traffic,
    /// the mode-2 delivered count never exceeds the mode-1 count, and
    /// neither ever exceeds the injected count.
    #[test]
    fn mode2_pre_retransmit_never_inflates_delivery_count(seed: u64, n_packets in 1usize..20) {
        let mut net1 = hot_network(OperationMode::Mode1, seed);
        let mut net2 = hot_network(OperationMode::Mode2, seed);
        let pairs = traffic_pairs(net1.mesh(), seed, n_packets);
        for &(src, dst) in &pairs {
            net1.offer(src, dst);
            net1.step();
            net2.offer(src, dst);
            net2.step();
        }
        prop_assert!(net1.run_until_quiescent(2_000_000), "mode 1 drains");
        prop_assert!(net2.run_until_quiescent(2_000_000), "mode 2 drains");

        let (s1, s2) = (net1.stats(), net2.stats());
        prop_assert!(
            s2.packets_delivered <= s1.packets_delivered,
            "pre-retransmission must not increase deliveries: mode2 {} > mode1 {}",
            s2.packets_delivered,
            s1.packets_delivered
        );
        prop_assert!(s1.packets_delivered <= s1.packets_injected);
        prop_assert!(s2.packets_delivered <= s2.packets_injected);
        // Both drain completely, so the counts are in fact equal — a
        // duplicate surfacing as a delivery would break the first bound.
        prop_assert_eq!(s1.packets_delivered, n_packets as u64);
        prop_assert_eq!(s2.packets_delivered, n_packets as u64);
        let fpp = net2.config().flits_per_packet as u64;
        prop_assert_eq!(s2.flits_delivered, n_packets as u64 * fpp, "no duplicate flits ejected");
    }
}
