//! The experiment driver: wires the simulator, fault substrates, power
//! model, and controllers into one reproducible run.
//!
//! An [`Experiment`] executes the paper's evaluation flow:
//!
//! 1. **Pre-training** (learning schemes only) — synthetic uniform-random
//!    traffic while the RL agents learn (or the DT collects labeled
//!    samples, after which the tree is fitted and frozen).
//! 2. **Warm-up** — synthetic traffic that settles queues and the thermal
//!    state for every scheme; statistics are then discarded.
//! 3. **Measurement** — the PARSEC-like workload runs to completion and
//!    the network drains; every epoch (1 000 cycles, §V-B) the control
//!    loop observes features, pays rewards, switches modes, advances the
//!    thermal model, and accounts energy.
//!
//! The closed loop — traffic → power → temperature → timing errors →
//! retransmissions → traffic — is exactly the paper's evaluation system.

use crate::backend::{BatchSimBackend, SimBackend};
use crate::benchmarks::{ProfileSource, WorkloadProfile};
use crate::controller::{ControllerBank, DtSample, DtThresholds};
use crate::modes::OperationMode;
use crate::protocol::FaultTolerantProtocol;
use noc_fault::hardfault::{HardFault, HardFaultSchedule};
use noc_fault::thermal::{ThermalModel, ThermalParams};
use noc_fault::timing::{TimingErrorModel, TimingErrorParams};
use noc_fault::variation::VariationMap;
use noc_power::area::RouterVariant;
use noc_power::energy::{EnergyModel, StaticConfig};
use noc_rl::state::RouterFeatures;
use noc_sim::config::NocConfig;
use noc_sim::network::{HardFaultEvent, HardFaultKind, Network};
use noc_sim::stats::EventCounters;
use noc_sim::topology::{Direction, Topo};
use noc_sim::traffic::{SyntheticSource, TrafficPattern, TrafficSource};
use rlnoc_telemetry::{EpochRecord, Phase, RunId, Telemetry};
use serde::{Deserialize, Serialize};

/// Reward normalization for Eq. (3): the product of a nominal latency
/// (~30 cycles) and a nominal router power (~15 mW), so rewards are O(1).
const REWARD_SCALE: f64 = 0.45;

/// The four compared error-control schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorControlScheme {
    /// End-to-end CRC with full-packet source retransmission (baseline).
    StaticCrc,
    /// Per-hop ARQ+ECC, always on.
    StaticArqEcc,
    /// ARQ+ECC hardware with decision-tree mode control.
    DecisionTree,
    /// ARQ+ECC hardware with per-router RL mode control (proposed).
    ProposedRl,
}

impl ErrorControlScheme {
    /// All schemes in the figures' order.
    pub const ALL: [ErrorControlScheme; 4] = [
        ErrorControlScheme::StaticCrc,
        ErrorControlScheme::StaticArqEcc,
        ErrorControlScheme::DecisionTree,
        ErrorControlScheme::ProposedRl,
    ];

    /// Whether this scheme has a learning controller.
    pub fn is_learning(self) -> bool {
        matches!(
            self,
            ErrorControlScheme::DecisionTree | ErrorControlScheme::ProposedRl
        )
    }

    /// The hardware variant for the area/leakage models.
    pub fn router_variant(self) -> RouterVariant {
        match self {
            ErrorControlScheme::StaticCrc => RouterVariant::Crc,
            ErrorControlScheme::StaticArqEcc => RouterVariant::ArqEcc,
            ErrorControlScheme::DecisionTree => RouterVariant::DecisionTree,
            ErrorControlScheme::ProposedRl => RouterVariant::ProposedRl,
        }
    }
}

impl std::fmt::Display for ErrorControlScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorControlScheme::StaticCrc => "CRC",
            ErrorControlScheme::StaticArqEcc => "ARQ+ECC",
            ErrorControlScheme::DecisionTree => "DT",
            ErrorControlScheme::ProposedRl => "RL",
        };
        f.write_str(s)
    }
}

/// An invalid experiment configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildExperimentError(&'static str);

impl std::fmt::Display for BuildExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid experiment configuration: {}", self.0)
    }
}

impl std::error::Error for BuildExperimentError {}

/// Builder for [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    scheme: ErrorControlScheme,
    workload: WorkloadProfile,
    noc: NocConfig,
    seed: u64,
    epoch_cycles: u64,
    pretrain_cycles: u64,
    warmup_cycles: u64,
    measure_cycles: Option<u64>,
    drain_limit: u64,
    pretrain_rate: Option<f64>,
    timing: TimingErrorParams,
    thermal: ThermalParams,
    variation_sigmas: (f64, f64),
    core_idle_power: f64,
    core_power_per_flit: f64,
    rl_config: Option<noc_rl::agent::AgentConfig>,
    rl_state_space: Option<noc_rl::state::StateSpace>,
    measurement_epsilon: Option<f64>,
    rl_curriculum: bool,
    dt_thresholds: DtThresholds,
    allowed_modes: [bool; 4],
    telemetry: Telemetry,
    rl_policy: Option<std::sync::Arc<noc_rl::snapshot::PolicySnapshot>>,
    hard_faults: Option<std::sync::Arc<HardFaultSchedule>>,
}

impl ExperimentBuilder {
    /// Selects the error-control scheme (default: the proposed RL).
    pub fn scheme(mut self, scheme: ErrorControlScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Selects the workload (default: `blackscholes`).
    pub fn workload(mut self, workload: WorkloadProfile) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the NoC configuration (default: Table II).
    pub fn noc(mut self, noc: NocConfig) -> Self {
        self.noc = noc;
        self
    }

    /// Master seed: payloads, faults, traffic, and exploration all derive
    /// from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Control-epoch length in cycles (default 1 000, §V-B).
    pub fn epoch_cycles(mut self, cycles: u64) -> Self {
        self.epoch_cycles = cycles;
        self
    }

    /// Pre-training cycles for learning schemes (default 600 000 — the
    /// paper uses 1 M; see DESIGN.md).
    pub fn pretrain_cycles(mut self, cycles: u64) -> Self {
        self.pretrain_cycles = cycles;
        self
    }

    /// Overrides the synthetic pre-training/warm-up injection rate
    /// (default: the workload's mean rate).
    pub fn pretrain_rate(mut self, rate: f64) -> Self {
        self.pretrain_rate = Some(rate);
        self
    }

    /// Warm-up cycles before measurement, all schemes (default 2 000).
    pub fn warmup_cycles(mut self, cycles: u64) -> Self {
        self.warmup_cycles = cycles;
        self
    }

    /// Caps the measured injection window (default: the workload's full
    /// duration).
    pub fn measure_cycles(mut self, cycles: u64) -> Self {
        self.measure_cycles = Some(cycles);
        self
    }

    /// Cycle budget for draining in-flight traffic (default 200 000).
    pub fn drain_limit(mut self, cycles: u64) -> Self {
        self.drain_limit = cycles;
        self
    }

    /// Timing-error model override.
    pub fn timing(mut self, params: TimingErrorParams) -> Self {
        self.timing = params;
        self
    }

    /// Thermal model override.
    pub fn thermal(mut self, params: ThermalParams) -> Self {
        self.thermal = params;
        self
    }

    /// Process-variation (systematic, random) log-sigmas.
    pub fn variation_sigmas(mut self, systematic: f64, random: f64) -> Self {
        self.variation_sigmas = (systematic, random);
        self
    }

    /// RL hyper-parameter override (ablations).
    pub fn rl_config(mut self, config: noc_rl::agent::AgentConfig) -> Self {
        self.rl_config = Some(config);
        self
    }

    /// RL state-space override (bin-granularity ablation).
    pub fn rl_state_space(mut self, space: noc_rl::state::StateSpace) -> Self {
        self.rl_state_space = Some(space);
        self
    }

    /// Enables/disables the fleet-coherent forced-mode curriculum during
    /// RL pre-training (default on; off = the paper's literal free
    /// ε-greedy pre-training). See DESIGN.md §5.
    pub fn rl_curriculum(mut self, enabled: bool) -> Self {
        self.rl_curriculum = enabled;
        self
    }

    /// Exploration probability used after pre-training (default 0.02:
    /// ε is annealed from the paper's training value of 0.1 once the
    /// policy has converged; pass 0.1 to keep the paper's constant ε).
    pub fn measurement_epsilon(mut self, epsilon: f64) -> Self {
        self.measurement_epsilon = Some(epsilon);
        self
    }

    /// Preloads a trained RL policy for inference-only runs
    /// (train-once/eval-many). Pre-training is skipped entirely and every
    /// agent is frozen greedy (learning off, ε = 0) before the first
    /// cycle. Only valid with [`ErrorControlScheme::ProposedRl`]; the
    /// snapshot's shape is checked against the mesh and state space at
    /// [`build`](Self::build) time. The `Arc` lets many parallel
    /// evaluation tasks share one snapshot without copying Q-tables per
    /// task.
    pub fn rl_policy(mut self, policy: std::sync::Arc<noc_rl::snapshot::PolicySnapshot>) -> Self {
        self.rl_policy = Some(policy);
        self
    }

    /// Installs a permanent hard-fault schedule (default: none). The
    /// schedule's mesh dimensions must match the NoC configuration;
    /// each event takes effect at the start of its cycle's step and the
    /// network reroutes around the casualty (see `noc_sim`'s
    /// fault-adaptive routing). The `Arc` lets a degradation sweep
    /// share one schedule across many parallel evaluation tasks.
    pub fn hard_faults(mut self, schedule: std::sync::Arc<HardFaultSchedule>) -> Self {
        self.hard_faults = Some(schedule);
        self
    }

    /// DT threshold override.
    pub fn dt_thresholds(mut self, thresholds: DtThresholds) -> Self {
        self.dt_thresholds = thresholds;
        self
    }

    /// Attaches a telemetry handle (default: disabled). An enabled
    /// handle records per-phase span timings in the simulator, ARQ and
    /// TD-update instruments, one [`EpochRecord`] per router per control
    /// epoch, and a wall-clock run summary. Clones share state, so one
    /// handle can aggregate a whole campaign.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Restricts the controller's action set (mode-ablation studies);
    /// modes outside the set fall back to mode 1.
    pub fn allowed_modes(mut self, modes: &[OperationMode]) -> Self {
        self.allowed_modes = [false; 4];
        for &m in modes {
            self.allowed_modes[m.index()] = true;
        }
        self
    }

    /// Finalizes the experiment.
    ///
    /// # Errors
    ///
    /// Returns an error when a field is out of range (zero epoch, invalid
    /// NoC configuration, no allowed modes, …).
    pub fn build(self) -> Result<Experiment, BuildExperimentError> {
        if self.epoch_cycles == 0 {
            return Err(BuildExperimentError("epoch_cycles must be positive"));
        }
        if self.noc.validate().is_err() {
            return Err(BuildExperimentError("invalid NoC configuration"));
        }
        if let Some(rate) = self.pretrain_rate {
            if !(0.0..=1.0).contains(&rate) {
                return Err(BuildExperimentError("pretrain_rate must be a probability"));
            }
        }
        if !self.allowed_modes.iter().any(|&b| b) {
            return Err(BuildExperimentError("at least one mode must be allowed"));
        }
        if self.drain_limit == 0 {
            return Err(BuildExperimentError("drain_limit must be positive"));
        }
        if let Some(policy) = &self.rl_policy {
            if self.scheme != ErrorControlScheme::ProposedRl {
                return Err(BuildExperimentError(
                    "rl_policy requires the ProposedRl scheme",
                ));
            }
            if policy.num_agents() != self.noc.mesh.num_nodes() {
                return Err(BuildExperimentError(
                    "rl_policy agent count does not match the mesh",
                ));
            }
            let num_states = self
                .rl_state_space
                .clone()
                .unwrap_or_else(noc_rl::state::StateSpace::paper_default)
                .num_states();
            if policy.num_states() != num_states {
                return Err(BuildExperimentError(
                    "rl_policy state space does not match the configuration",
                ));
            }
        }
        if let Some(hf) = &self.hard_faults {
            if hf.validate().is_err() {
                return Err(BuildExperimentError("invalid hard-fault schedule"));
            }
            if hf.topo != self.noc.mesh {
                return Err(BuildExperimentError(
                    "hard-fault schedule topology does not match the NoC topology",
                ));
            }
        }
        Ok(Experiment { cfg: self })
    }
}

/// A fully configured, runnable experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    cfg: ExperimentBuilder,
}

impl Experiment {
    /// Starts building an experiment with the paper's defaults.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder {
            scheme: ErrorControlScheme::ProposedRl,
            workload: WorkloadProfile::blackscholes(),
            noc: NocConfig::default(),
            seed: 0,
            epoch_cycles: 1_000,
            pretrain_cycles: 600_000,
            warmup_cycles: 2_000,
            measure_cycles: None,
            drain_limit: 200_000,
            pretrain_rate: None,
            timing: TimingErrorParams::default(),
            thermal: ThermalParams::default(),
            variation_sigmas: (0.12, 0.06),
            core_idle_power: 0.06,
            core_power_per_flit: 1.0,
            rl_config: None,
            rl_state_space: None,
            measurement_epsilon: Some(0.01),
            rl_curriculum: true,
            dt_thresholds: DtThresholds::default(),
            allowed_modes: [true; 4],
            telemetry: Telemetry::disabled(),
            rl_policy: None,
            hard_faults: None,
        }
    }

    /// Runs the experiment to completion and reports the metrics used by
    /// every figure of the paper.
    pub fn run(self) -> ExperimentReport {
        self.run_inspect().0
    }

    /// Like [`run`](Self::run) but also returns the end-of-run artifacts
    /// (learned controllers, thermal state) for inspection.
    pub fn run_inspect(self) -> (ExperimentReport, RunArtifacts) {
        self.run_inspect_with_backend::<Network<FaultTolerantProtocol>>()
    }

    /// Runs the experiment on an alternative data-plane implementation.
    ///
    /// The control plane (curriculum, controllers, thermal/energy
    /// accounting, report assembly) is byte-for-byte the code behind
    /// [`run`](Self::run); only the cycle kernel is swapped. With a
    /// conforming [`SimBackend`] the report must equal the default
    /// backend's — the differential oracle in `rlnoc-verify` checks
    /// exactly this.
    pub fn run_with_backend<B: SimBackend>(self) -> ExperimentReport {
        self.run_inspect_with_backend::<B>().0
    }

    /// [`run_inspect`](Self::run_inspect) on an alternative backend.
    pub fn run_inspect_with_backend<B: SimBackend>(self) -> (ExperimentReport, RunArtifacts) {
        let mut runner = Runner::<B>::new(self.cfg);
        let report = runner.run();
        (
            report,
            RunArtifacts {
                controllers: runner.controllers,
                temperatures: runner.thermal.temperatures().to_vec(),
            },
        )
    }

    /// `BatchSim`: runs K replicate lanes in blocked lockstep on the
    /// production backend, returning one report per lane in input
    /// order. Lanes share the immutable tables (routes, neighbors,
    /// post-fault reroutes) of their campaign cell but keep fully
    /// independent mutable state and RNG streams, so every lane's
    /// report is byte-identical to running that lane alone — the
    /// lane-equivalence test wall pins this.
    pub fn run_batch(lanes: Vec<Experiment>) -> Vec<ExperimentReport> {
        Self::run_batch_inspect(lanes)
            .into_iter()
            .map(|(report, _)| report)
            .collect()
    }

    /// [`run_batch`](Self::run_batch) with per-lane artifacts.
    pub fn run_batch_inspect(lanes: Vec<Experiment>) -> Vec<(ExperimentReport, RunArtifacts)> {
        Self::run_batch_inspect_with_backend::<Network<FaultTolerantProtocol>>(lanes)
    }

    /// [`run_batch_inspect`](Self::run_batch_inspect) on an alternative
    /// lane-capable backend.
    pub fn run_batch_inspect_with_backend<B: BatchSimBackend>(
        lanes: Vec<Experiment>,
    ) -> Vec<(ExperimentReport, RunArtifacts)> {
        // One shared-table set per distinct (mesh, hard-fault schedule)
        // pair; replicate lanes of one campaign cell all alias the first
        // entry. The key is semantic (the rendered schedule), so a mixed
        // batch degrades to per-group sharing instead of misbehaving.
        let mut shared: Vec<((Topo, String), B::Shared)> = Vec::new();
        let mut runners: Vec<Runner<B>> = lanes
            .into_iter()
            .map(|lane| {
                let key = (
                    lane.cfg.noc.mesh,
                    lane.cfg
                        .hard_faults
                        .as_ref()
                        .map(|s| s.to_text())
                        .unwrap_or_default(),
                );
                let tables = match shared.iter().find(|(k, _)| *k == key) {
                    Some((_, tables)) => tables.clone(),
                    None => {
                        let tables = B::make_shared(&lane.cfg.noc);
                        shared.push((key, tables.clone()));
                        tables
                    }
                };
                Runner::<B>::new_batched(lane.cfg, &tables)
            })
            .collect();
        // Blocked lockstep: every sweep advances each unfinished lane
        // by at most one control epoch, so the lanes' working sets stay
        // resident together while each lane still executes its own
        // serial schedule exactly.
        let mut reports: Vec<Option<ExperimentReport>> = (0..runners.len()).map(|_| None).collect();
        let mut unfinished = runners.len();
        while unfinished > 0 {
            for (lane, runner) in runners.iter_mut().enumerate() {
                if reports[lane].is_none() {
                    if let Some(report) = runner.advance() {
                        reports[lane] = Some(report);
                        unfinished -= 1;
                    }
                }
            }
        }
        runners
            .into_iter()
            .zip(reports)
            .map(|(runner, report)| {
                (
                    report.expect("every lane ran to completion"),
                    RunArtifacts {
                        controllers: runner.controllers,
                        temperatures: runner.thermal.temperatures().to_vec(),
                    },
                )
            })
            .collect()
    }
}

/// End-of-run state exposed by [`Experiment::run_inspect`].
pub struct RunArtifacts {
    /// The controller bank with whatever it learned.
    pub controllers: ControllerBank,
    /// Final per-router temperatures, °C.
    pub temperatures: Vec<f64>,
}

/// Everything the paper's figures need, from one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Scheme under test.
    pub scheme: ErrorControlScheme,
    /// Workload name.
    pub workload: String,
    /// Master seed.
    pub seed: u64,
    /// Clock frequency (for power conversions).
    pub frequency_hz: f64,
    /// Data packets offered during measurement.
    pub packets_injected: u64,
    /// Data packets delivered intact.
    pub packets_delivered: u64,
    /// Data flits delivered.
    pub flits_delivered: u64,
    /// Mean end-to-end packet latency in cycles (Fig. 8).
    pub avg_latency_cycles: f64,
    /// 99th-percentile latency in cycles.
    pub p99_latency_cycles: u64,
    /// Measured makespan: first injection to last delivery (Fig. 7).
    pub execution_cycles: u64,
    /// Whether the network fully drained within the budget.
    pub drained: bool,
    /// Full-packet source retransmissions.
    pub packet_retransmissions: u64,
    /// Hop-level flit retransmissions.
    pub flit_retransmissions: u64,
    /// Combined retransmission traffic in packet equivalents (Fig. 6).
    pub retransmitted_packets_equiv: f64,
    /// Hop-level NACK signals.
    pub hop_nacks: u64,
    /// Flits corrected in place by link SECDED.
    pub ecc_corrections: u64,
    /// Packets that failed the destination CRC.
    pub crc_failures: u64,
    /// Retransmit-request control packets.
    pub control_packets: u64,
    /// Pre-retransmission copies that rescued a rejected flit.
    pub pre_retransmit_hits: u64,
    /// Accepted packets with corrupted payload (should be ≈0).
    pub silent_corruptions: u64,
    /// Dynamic energy over the measurement, joules (Fig. 10).
    pub dynamic_energy_j: f64,
    /// Static (leakage) energy, joules.
    pub static_energy_j: f64,
    /// Controller energy (Q-table / DT operations), joules.
    pub control_energy_j: f64,
    /// Router-epoch counts of each operation mode during measurement.
    pub mode_histogram: [u64; 4],
    /// Mean router temperature at measurement end, °C.
    pub mean_temperature_c: f64,
    /// Hottest router temperature observed, °C.
    pub max_temperature_c: f64,
    /// Permanent link/router failures applied during measurement.
    pub hard_fault_events: u64,
    /// Fault-adaptive route-table rebuilds.
    pub reroute_events: u64,
    /// Data packets that lost flits (or an endpoint) to a hard fault.
    pub packets_lost_hard_fault: u64,
    /// Data packets refused at injection: endpoints mutually unreachable.
    pub packets_refused_unreachable: u64,
    /// Ordered source/destination pairs unreachable after the last
    /// reroute (0 on a connected mesh).
    pub unreachable_pairs: u64,
}

impl ExperimentReport {
    /// Total energy (dynamic + static + control), joules (Fig. 9).
    pub fn total_energy_j(&self) -> f64 {
        self.dynamic_energy_j + self.static_energy_j + self.control_energy_j
    }

    /// The paper's energy-efficiency metric: delivered flits per joule.
    pub fn energy_efficiency(&self) -> f64 {
        let e = self.total_energy_j();
        if e <= 0.0 {
            0.0
        } else {
            self.flits_delivered as f64 / e
        }
    }

    /// Mean dynamic power over the measured execution, watts.
    pub fn dynamic_power_w(&self) -> f64 {
        if self.execution_cycles == 0 {
            return 0.0;
        }
        self.dynamic_energy_j / (self.execution_cycles as f64 / self.frequency_hz)
    }

    /// Delivered fraction of offered packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_injected == 0 {
            0.0
        } else {
            self.packets_delivered as f64 / self.packets_injected as f64
        }
    }
}

// ---------------------------------------------------------------------------

/// Translates a validated [`HardFaultSchedule`] into the simulator's
/// event representation.
fn hard_fault_events(schedule: &HardFaultSchedule) -> Vec<HardFaultEvent> {
    schedule
        .entries
        .iter()
        .map(|e| HardFaultEvent {
            cycle: e.cycle,
            kind: match e.fault {
                HardFault::Link { node, dir } => HardFaultKind::Link {
                    node: noc_sim::topology::NodeId(node),
                    dir,
                },
                HardFault::Router { node } => HardFaultKind::Router {
                    node: noc_sim::topology::NodeId(node),
                },
            },
        })
        .collect()
}

/// One pre-training drive segment: an optional fleet-forcing change
/// applied on entry, then `cycles` driven cycles. The curriculum's
/// random block schedule is materialized up front — with the same RNG
/// and draw order as the loop it replaces — so a run can be advanced
/// in epoch-sized slices without replaying the RNG mid-flight.
struct PretrainSeg {
    /// `Some(Some(m))` forces the fleet to mode `m`, `Some(None)`
    /// releases the forcing, `None` leaves it untouched.
    set_forced: Option<Option<OperationMode>>,
    cycles: u64,
}

/// Resumable run position. Each [`Runner::advance`] call performs at
/// most one control epoch's worth of cycles and moves this machine one
/// step, so K replicate lanes can interleave the exact serial schedule
/// in blocked lockstep (see [`Experiment::run_batch`]).
enum RunState {
    /// Nothing has happened yet; the next `advance` opens the run.
    Start,
    /// Driving synthetic pre-training traffic through `segs[seg]`.
    Pretrain {
        source: SyntheticSource,
        segs: Vec<PretrainSeg>,
        seg: usize,
        done_in_seg: u64,
    },
    /// Driving synthetic warm-up traffic (`source` is `None` when the
    /// configuration asks for zero warm-up cycles).
    Warmup {
        source: Option<SyntheticSource>,
        done: u64,
    },
    /// Draining leftovers between warm-up and measurement.
    WarmupDrain { round: u64 },
    /// Driving the measured workload window.
    Measure {
        source: ProfileSource,
        window: u64,
        done: u64,
    },
    /// Final drain; its completion assembles the report.
    MeasureDrain { round: u64 },
    /// The report has been produced; `advance` must not be called.
    Done,
}

/// Internal run state, generic over the data-plane kernel (see
/// [`SimBackend`]).
struct Runner<B: SimBackend> {
    cfg: ExperimentBuilder,
    net: B,
    thermal: ThermalModel,
    energy: EnergyModel,
    controllers: ControllerBank,
    last_counters: Vec<EventCounters>,
    last_latency: Vec<f64>,
    modes: Vec<OperationMode>,
    dynamic_j: f64,
    static_j: f64,
    control_j: f64,
    mode_histogram: [u64; 4],
    max_temp: f64,
    epoch_count: u64,
    /// Reusable per-epoch scratch buffers (features, rewards, tile
    /// powers, utilizations): cleared and refilled at every control
    /// epoch so the steady-state control loop allocates nothing.
    epoch_features: Vec<RouterFeatures>,
    epoch_rewards: Vec<f64>,
    epoch_tile_powers: Vec<f64>,
    epoch_utilizations: Vec<f64>,
    telemetry: Telemetry,
    run_id: RunId,
    phase: Phase,
    state: RunState,
    /// Cycle count when the run opened (for telemetry span length).
    start_cycle: u64,
    /// Cycle count when the measurement phase opened.
    measure_start: u64,
    /// Synthetic pre-training/warm-up injection rate, resolved at start.
    synthetic_rate: f64,
}

/// The per-lane fault-substrate inputs — process-variation map and
/// timing-error model — derived from the experiment seed exactly as the
/// serial constructor always has.
fn fault_substrate(cfg: &ExperimentBuilder) -> (TimingErrorModel, VariationMap) {
    let mesh = cfg.noc.mesh;
    let variation = VariationMap::generate(
        mesh.width(),
        mesh.height(),
        cfg.variation_sigmas.0,
        cfg.variation_sigmas.1,
        cfg.seed ^ 0x5EED_0001,
    );
    (TimingErrorModel::new(cfg.timing), variation)
}

impl<B: BatchSimBackend> Runner<B> {
    /// [`Runner::new`] for one lane of a batch: identical except the
    /// backend aliases `shared` instead of building its own tables.
    fn new_batched(cfg: ExperimentBuilder, shared: &B::Shared) -> Self {
        let (timing, variation) = fault_substrate(&cfg);
        let net = B::build_with_shared(
            shared,
            cfg.noc,
            timing,
            variation,
            cfg.seed ^ 0x5EED_0002,
            cfg.seed ^ 0x5EED_0003,
        );
        Self::with_net(cfg, net)
    }
}

impl<B: SimBackend> Runner<B> {
    fn new(cfg: ExperimentBuilder) -> Self {
        let (timing, variation) = fault_substrate(&cfg);
        let net = B::build(
            cfg.noc,
            timing,
            variation,
            cfg.seed ^ 0x5EED_0002,
            cfg.seed ^ 0x5EED_0003,
        );
        Self::with_net(cfg, net)
    }

    /// Wires an already-built backend into a fresh run state.
    fn with_net(cfg: ExperimentBuilder, net: B) -> Self {
        let mesh = cfg.noc.mesh;
        let n = mesh.num_nodes();
        let thermal = ThermalModel::new(mesh.width(), mesh.height(), cfg.thermal);
        let controllers = match cfg.scheme {
            ErrorControlScheme::StaticCrc => ControllerBank::statically(OperationMode::Mode0),
            ErrorControlScheme::StaticArqEcc => ControllerBank::statically(OperationMode::Mode1),
            ErrorControlScheme::DecisionTree => ControllerBank::dt(cfg.dt_thresholds),
            ErrorControlScheme::ProposedRl => {
                let config = cfg.rl_config.clone().unwrap_or_else(|| {
                    // Paper hyper-parameters (zero-initialized Q-table)
                    // with a learning rate that starts high and decays to
                    // the paper's 0.1 ("α can be reduced over time",
                    // §IV-A). Exploration of all four modes is guaranteed
                    // by the pre-training curriculum, not optimism —
                    // optimistic initialization leaks through the
                    // bootstrap term and drowns the reward signal.
                    noc_rl::agent::AgentConfig {
                        alpha: noc_rl::schedule::Schedule::Exponential {
                            from: 0.4,
                            decay: 0.997,
                            floor: 0.1,
                        },
                        // Safe default (mode 1) for states with <2 covered
                        // actions — see DESIGN.md §5.
                        fallback_action: Some(1),
                        ..noc_rl::agent::AgentConfig::paper_default()
                    }
                });
                let space = cfg
                    .rl_state_space
                    .clone()
                    .unwrap_or_else(noc_rl::state::StateSpace::paper_default);
                let mut bank = ControllerBank::rl_with(n, cfg.seed ^ 0x5EED_0004, config, space);
                if let Some(policy) = &cfg.rl_policy {
                    bank.load_policy((**policy).clone())
                        .expect("policy shape validated at build time");
                    bank.freeze();
                }
                bank
            }
        };
        let initial_mode = match cfg.scheme {
            ErrorControlScheme::StaticArqEcc | ErrorControlScheme::DecisionTree => {
                OperationMode::Mode1
            }
            _ => OperationMode::Mode0,
        };
        let telemetry = cfg.telemetry.clone();
        let mut runner = Self {
            cfg,
            net,
            thermal,
            energy: EnergyModel::default(),
            controllers,
            last_counters: vec![EventCounters::default(); n],
            last_latency: vec![30.0; n],
            modes: vec![initial_mode; n],
            dynamic_j: 0.0,
            static_j: 0.0,
            control_j: 0.0,
            mode_histogram: [0; 4],
            max_temp: 0.0,
            epoch_count: 0,
            epoch_features: Vec::with_capacity(n),
            epoch_rewards: Vec::with_capacity(n),
            epoch_tile_powers: Vec::with_capacity(n),
            epoch_utilizations: Vec::with_capacity(n),
            telemetry,
            run_id: RunId::DISABLED,
            phase: Phase::Measure,
            state: RunState::Start,
            start_cycle: 0,
            measure_start: 0,
            synthetic_rate: 0.0,
        };
        runner.net.set_telemetry(&runner.telemetry);
        runner.controllers.set_telemetry(&runner.telemetry);
        runner.net.set_all_modes(initial_mode);
        if let Some(schedule) = &runner.cfg.hard_faults {
            runner.net.set_hard_faults(hard_fault_events(schedule));
        }
        runner
    }

    fn run(&mut self) -> ExperimentReport {
        loop {
            if let Some(report) = self.advance() {
                return report;
            }
        }
    }

    /// Advances the run by one bounded slice — at most one control
    /// epoch's worth of cycles — returning the report once the final
    /// drain completes. The slice boundaries are invisible to the
    /// simulation: `drive` carries no cross-iteration state, so driving
    /// N cycles in epoch-sized chunks is byte-identical to one N-cycle
    /// call. Batched lanes rely on exactly that to interleave.
    fn advance(&mut self) -> Option<ExperimentReport> {
        let state = std::mem::replace(&mut self.state, RunState::Done);
        let (state, report) = self.step_state(state);
        self.state = state;
        report
    }

    fn step_state(&mut self, state: RunState) -> (RunState, Option<ExperimentReport>) {
        match state {
            RunState::Start => (self.begin(), None),
            RunState::Pretrain {
                mut source,
                segs,
                mut seg,
                mut done_in_seg,
            } => loop {
                let Some(s) = segs.get(seg) else {
                    break (self.finish_pretrain(), None);
                };
                let (set_forced, total) = (s.set_forced, s.cycles);
                if done_in_seg == 0 {
                    if let Some(forced) = set_forced {
                        self.controllers.set_forced_mode(forced);
                    }
                }
                if done_in_seg >= total {
                    seg += 1;
                    done_in_seg = 0;
                    continue;
                }
                let chunk = (total - done_in_seg).min(self.cfg.epoch_cycles);
                self.drive(chunk, Some(&mut source), true);
                done_in_seg += chunk;
                break (
                    RunState::Pretrain {
                        source,
                        segs,
                        seg,
                        done_in_seg,
                    },
                    None,
                );
            },
            RunState::Warmup { mut source, done } => match source.as_mut() {
                Some(src) if done < self.cfg.warmup_cycles => {
                    let chunk = (self.cfg.warmup_cycles - done).min(self.cfg.epoch_cycles);
                    self.drive(chunk, Some(src as &mut dyn TrafficSource), false);
                    (
                        RunState::Warmup {
                            source,
                            done: done + chunk,
                        },
                        None,
                    )
                }
                // Drain leftovers, then clear the books.
                _ => (RunState::WarmupDrain { round: 0 }, None),
            },
            RunState::WarmupDrain { round } => match self.drain_round(round) {
                None => (RunState::WarmupDrain { round: round + 1 }, None),
                Some(_) => (self.begin_measure(), None),
            },
            RunState::Measure {
                mut source,
                window,
                done,
            } => {
                if done < window {
                    let chunk = (window - done).min(self.cfg.epoch_cycles);
                    self.drive(chunk, Some(&mut source), false);
                    (
                        RunState::Measure {
                            source,
                            window,
                            done: done + chunk,
                        },
                        None,
                    )
                } else {
                    (RunState::MeasureDrain { round: 0 }, None)
                }
            }
            RunState::MeasureDrain { round } => match self.drain_round(round) {
                None => (RunState::MeasureDrain { round: round + 1 }, None),
                Some(drained) => {
                    // Account the final partial epoch.
                    self.control_epoch(false);
                    (RunState::Done, Some(self.assemble_report(drained)))
                }
            },
            RunState::Done => panic!("Runner::advance called after the run completed"),
        }
    }

    /// `Start` transition: opens telemetry, latches the run origin, and
    /// plans phase 1 — pre-training (learning schemes). The synthetic
    /// traffic intensity tracks the workload's mean so the visited
    /// state bins match the measurement phase.
    fn begin(&mut self) -> RunState {
        self.run_id = self.telemetry.begin_run(&format!(
            "{}/{}/seed{}",
            self.cfg.scheme, self.cfg.workload.name, self.cfg.seed
        ));
        self.start_cycle = self.net.cycle();
        self.phase = Phase::Pretrain;
        self.synthetic_rate = self
            .cfg
            .pretrain_rate
            .unwrap_or_else(|| self.cfg.workload.mean_injection_rate().clamp(0.002, 0.03));
        // A preloaded (frozen) RL policy skips pre-training entirely:
        // the run is inference-only.
        if self.cfg.scheme.is_learning()
            && self.cfg.pretrain_cycles > 0
            && self.cfg.rl_policy.is_none()
        {
            RunState::Pretrain {
                source: SyntheticSource::new(
                    self.cfg.noc.mesh,
                    TrafficPattern::UniformRandom,
                    self.synthetic_rate,
                    self.cfg.seed ^ 0x5EED_0005,
                ),
                segs: self.pretrain_plan(),
                seg: 0,
                done_in_seg: 0,
            }
        } else {
            self.begin_warmup()
        }
    }

    /// Materializes the pre-training drive schedule.
    fn pretrain_plan(&self) -> Vec<PretrainSeg> {
        if !(self.controllers.is_rl() && self.cfg.rl_curriculum) {
            return vec![PretrainSeg {
                set_forced: None,
                cycles: self.cfg.pretrain_cycles,
            }];
        }
        // Curriculum: for the first two-thirds of the budget the whole
        // fleet is forced through the allowed modes, cycling one mode
        // per epoch. Fleet-coherent forcing exposes each mode's
        // *collective* value (a lone agent's deviation barely moves its
        // own reward), and per-epoch interleaving samples every
        // recurring state under every action — including congestion
        // states that only arise under a particular mode. The final
        // third is free ε-greedy refinement.
        let allowed: Vec<OperationMode> = OperationMode::ALL
            .into_iter()
            .filter(|m| self.cfg.allowed_modes[m.index()])
            .collect();
        let forced_epochs = (self.cfg.pretrain_cycles * 2 / 3) / self.cfg.epoch_cycles;
        // The forced mode is drawn at random per 4-epoch block: random
        // (not cyclic) so states — which partly encode the previous
        // mode through the NACK features — do not correlate with one
        // action; blocks (not single epochs) so a mode's delayed damage
        // (retransmissions delivering an epoch later) is still credited
        // to the mode that caused it.
        use rand::{Rng, SeedableRng};
        let mut curriculum_rng = rand::rngs::SmallRng::seed_from_u64(self.cfg.seed ^ 0x5EED_0008);
        const BLOCK_EPOCHS: u64 = 4;
        let mut segs = Vec::new();
        let mut remaining = forced_epochs;
        while remaining > 0 {
            let mode = allowed[curriculum_rng.gen_range(0..allowed.len())];
            let block = BLOCK_EPOCHS.min(remaining);
            segs.push(PretrainSeg {
                set_forced: Some(Some(mode)),
                cycles: block * self.cfg.epoch_cycles,
            });
            remaining -= block;
        }
        segs.push(PretrainSeg {
            set_forced: Some(None),
            cycles: self
                .cfg
                .pretrain_cycles
                .saturating_sub(forced_epochs * self.cfg.epoch_cycles),
        });
        segs
    }

    /// Pre-training → warm-up transition: fits the DT on the collected
    /// samples and pins the measurement exploration rate.
    fn finish_pretrain(&mut self) -> RunState {
        if self.controllers.is_dt() {
            self.controllers.train_dt();
        }
        if let Some(eps) = self.cfg.measurement_epsilon {
            self.controllers
                .set_epsilon(noc_rl::schedule::Schedule::Constant(eps));
        }
        self.begin_warmup()
    }

    /// Opens phase 2: warm-up (all schemes).
    fn begin_warmup(&mut self) -> RunState {
        self.phase = Phase::Warmup;
        let source = (self.cfg.warmup_cycles > 0).then(|| {
            SyntheticSource::new(
                self.cfg.noc.mesh,
                TrafficPattern::UniformRandom,
                self.synthetic_rate,
                self.cfg.seed ^ 0x5EED_0006,
            )
        });
        RunState::Warmup { source, done: 0 }
    }

    /// Opens phase 3: measurement.
    fn begin_measure(&mut self) -> RunState {
        self.reset_accounting();
        self.phase = Phase::Measure;
        self.measure_start = self.net.cycle();
        let window = self
            .cfg
            .measure_cycles
            .unwrap_or(u64::MAX)
            .min(self.cfg.workload.duration_cycles);
        let source = self
            .cfg
            .workload
            .source(self.cfg.noc.mesh, self.cfg.seed ^ 0x5EED_0007);
        RunState::Measure {
            source,
            window,
            done: 0,
        }
    }

    /// Assembles the final report after the measurement drain.
    fn assemble_report(&mut self, drained: bool) -> ExperimentReport {
        let measure_start = self.measure_start;
        let start_cycle = self.start_cycle;
        let stats = self.net.stats().clone();
        let execution_cycles = if stats.packets_delivered > 0 {
            stats.last_delivery_cycle.saturating_sub(measure_start)
        } else {
            self.net.cycle().saturating_sub(measure_start)
        };
        self.telemetry
            .finish_run(self.run_id, self.net.cycle().saturating_sub(start_cycle));
        let temps = self.thermal.temperatures();
        let mean_temp = temps.iter().sum::<f64>() / temps.len() as f64;
        ExperimentReport {
            scheme: self.cfg.scheme,
            workload: self.cfg.workload.name.to_string(),
            seed: self.cfg.seed,
            frequency_hz: self.cfg.noc.frequency,
            packets_injected: stats.packets_injected,
            packets_delivered: stats.packets_delivered,
            flits_delivered: stats.flits_delivered,
            avg_latency_cycles: stats.latency.mean(),
            p99_latency_cycles: stats.latency.percentile(0.99),
            execution_cycles,
            drained,
            packet_retransmissions: stats.packet_retransmissions,
            flit_retransmissions: stats.flit_retransmissions,
            retransmitted_packets_equiv: stats
                .retransmitted_packets_equivalent(self.cfg.noc.flits_per_packet),
            hop_nacks: stats.hop_nacks,
            ecc_corrections: stats.ecc_corrections,
            crc_failures: stats.packets_failed_crc,
            control_packets: stats.control_packets,
            pre_retransmit_hits: stats.pre_retransmit_hits,
            silent_corruptions: stats.silent_corruptions,
            dynamic_energy_j: self.dynamic_j,
            static_energy_j: self.static_j,
            control_energy_j: self.control_j,
            mode_histogram: self.mode_histogram,
            mean_temperature_c: mean_temp,
            max_temperature_c: self.max_temp,
            hard_fault_events: stats.hard_fault_events,
            reroute_events: stats.reroute_events,
            packets_lost_hard_fault: stats.packets_lost_hard_fault,
            packets_refused_unreachable: stats.packets_refused_unreachable,
            unreachable_pairs: stats.unreachable_pairs,
        }
    }

    /// Runs `cycles` cycles, offering traffic from `source` and executing
    /// the control loop at every epoch boundary.
    fn drive(&mut self, cycles: u64, mut source: Option<&mut dyn TrafficSource>, pretrain: bool) {
        let mut offers: Vec<(noc_sim::topology::NodeId, noc_sim::topology::NodeId)> = Vec::new();
        for i in 0..cycles {
            if let Some(src) = source.as_deref_mut() {
                offers.clear();
                let cycle = self.net.cycle();
                src.generate(cycle, &mut |s, d| offers.push((s, d)));
                for &(s, d) in &offers {
                    self.net.offer(s, d);
                }
            }
            self.net.step();
            if self.net.cycle().is_multiple_of(self.cfg.epoch_cycles) {
                self.control_epoch(pretrain);
            }
            let _ = i;
        }
    }

    /// One bounded slice of the drain loop (no new offers). Rounds
    /// `0..drain_limit/epoch + 1` reproduce the serial loop body — head
    /// quiescence check, up to one epoch of steps, one control epoch —
    /// and the round past the limit reproduces the serial fall-through.
    /// `Some(drained)` ends the drain.
    fn drain_round(&mut self, round: u64) -> Option<bool> {
        if round > self.cfg.drain_limit / self.cfg.epoch_cycles {
            return Some(self.net.is_quiescent());
        }
        if self.net.is_quiescent() {
            return Some(true);
        }
        for _ in 0..self.cfg.epoch_cycles {
            self.net.step();
            if self.net.is_quiescent() {
                break;
            }
        }
        self.control_epoch(false);
        None
    }

    /// Zeroes all measurement accounting (after warm-up).
    fn reset_accounting(&mut self) {
        self.net.reset_stats();
        self.net.reset_epoch_stats();
        for c in &mut self.last_counters {
            c.reset();
        }
        self.dynamic_j = 0.0;
        self.static_j = 0.0;
        self.control_j = 0.0;
        self.mode_histogram = [0; 4];
        self.max_temp = 0.0;
    }

    /// Per-router local hard-fault degree at the current cycle: the
    /// fraction of each router's existing compass links that have
    /// permanently failed (`1.0` for a dead router), or `None` without a
    /// schedule. Computed from the *schedule* — not queried from the
    /// backend — so the production and reference data planes feed the
    /// controllers byte-identical features by construction. An event
    /// applies at the start of its cycle's step, so after stepping
    /// cycle `c` every event with `cycle <= c` (strictly `< cycle()`)
    /// is in force.
    fn fault_degrees(&self) -> Option<Vec<f64>> {
        let schedule = self.cfg.hard_faults.as_ref()?;
        let now = self.net.cycle();
        let mesh = self.cfg.noc.mesh;
        let n = mesh.num_nodes();
        let mut node_dead = vec![false; n];
        let mut link_dead = vec![[false; noc_sim::topology::MAX_PORTS]; n];
        let kill_link = |link_dead: &mut Vec<[bool; noc_sim::topology::MAX_PORTS]>,
                         node: usize,
                         dir: Direction| {
            if let Some(peer) = mesh.neighbor(noc_sim::topology::NodeId(node as u16), dir) {
                link_dead[node][dir.index()] = true;
                link_dead[peer.index()][dir.opposite().index()] = true;
            }
        };
        for e in schedule.entries.iter().take_while(|e| e.cycle < now) {
            match e.fault {
                HardFault::Link { node, dir } => {
                    kill_link(&mut link_dead, usize::from(node), dir);
                }
                HardFault::Router { node } => {
                    let node = usize::from(node);
                    node_dead[node] = true;
                    for &dir in mesh.compass() {
                        kill_link(&mut link_dead, node, dir);
                    }
                }
            }
        }
        let degrees = (0..n)
            .map(|i| {
                if node_dead[i] {
                    return 1.0;
                }
                let mut existing = 0u32;
                let mut dead = 0u32;
                for &dir in mesh.compass() {
                    if mesh
                        .neighbor(noc_sim::topology::NodeId(i as u16), dir)
                        .is_some()
                    {
                        existing += 1;
                        if link_dead[i][dir.index()] {
                            dead += 1;
                        }
                    }
                }
                if existing == 0 {
                    0.0
                } else {
                    f64::from(dead) / f64::from(existing)
                }
            })
            .collect();
        Some(degrees)
    }

    /// The per-epoch control loop: features → reward → mode decision →
    /// thermal step → energy accounting.
    fn control_epoch(&mut self, pretrain: bool) {
        let n = self.cfg.noc.mesh.num_nodes();
        self.net.finish_epoch();
        let epoch_stats = self.net.epoch_stats();
        let elapsed = epoch_stats[0].cycles;
        if elapsed == 0 {
            return;
        }
        let epoch_time = elapsed as f64 / self.cfg.noc.frequency;

        // Take the reusable scratch buffers (returned before the epoch
        // counter advances) so repeated epochs reuse their capacity.
        let mut features = std::mem::take(&mut self.epoch_features);
        let mut rewards = std::mem::take(&mut self.epoch_rewards);
        let mut tile_powers = std::mem::take(&mut self.epoch_tile_powers);
        let mut utilizations = std::mem::take(&mut self.epoch_utilizations);
        features.clear();
        rewards.clear();
        tile_powers.clear();
        utilizations.clear();
        let fault_degrees = self.fault_degrees();
        {
            let counters = self.net.counters();
            for i in 0..n {
                let es = &epoch_stats[i];
                let f = RouterFeatures {
                    buffer_occupancy: es.mean_buffer_occupancy(),
                    input_utilization: es.mean_input_utilization(),
                    output_utilization: es.mean_output_utilization(),
                    input_nack_rate: es.input_nack_rate(),
                    output_nack_rate: es.output_nack_rate(),
                    temperature_c: self.thermal.temperature(i),
                    fault_degree: fault_degrees.as_ref().map_or(0.0, |d| d[i]),
                };
                let dyn_e = self.energy.dynamic_energy(&counters[i])
                    - self.energy.dynamic_energy(&self.last_counters[i]);
                let static_p = self.energy.static_power(&self.static_config(self.modes[i]));
                let router_power = dyn_e / epoch_time + static_p;
                let latency = es.mean_traversal_latency(self.last_latency[i]);
                self.last_latency[i] = latency;
                // Eq. (3): r = [E2E-latency(i) · Power(i)]⁻¹, scaled so a
                // nominal healthy router (≈30 cycles, ≈15 mW) earns ≈1.
                let reward = REWARD_SCALE / (latency * router_power).max(1e-9);
                let local_flits = es.core_activity_flits as f64 / elapsed as f64;
                let tile_power = self.cfg.core_idle_power
                    + self.cfg.core_power_per_flit * local_flits
                    + router_power;
                features.push(f);
                rewards.push(reward);
                tile_powers.push(tile_power);
                utilizations.push(es.mean_output_utilization());
                self.dynamic_j += dyn_e;
                self.static_j += static_p * epoch_time;
                self.last_counters[i] = counters[i].clone();
            }
        }

        // DT pre-training collects (features, oracle error rate) samples.
        // The oracle rates come straight from the protocol's per-epoch
        // cache — one slice borrow, no per-router VARIUS evaluation.
        if pretrain && self.controllers.is_dt() {
            let rates = self.net.raw_error_probabilities();
            for (i, f) in features.iter().enumerate() {
                self.controllers.record_dt_sample(DtSample {
                    features: *f,
                    error_rate: rates[i],
                });
            }
        }

        // Decide modes and apply them.
        let mut updates = 0;
        for i in 0..n {
            let mut mode = self.controllers.decide(i, &features[i], rewards[i]);
            if !self.cfg.allowed_modes[mode.index()] {
                mode = OperationMode::Mode1;
            }
            self.modes[i] = mode;
            self.net.set_mode(i, mode);
            self.mode_histogram[mode.index()] += 1;
            updates += 1;
        }
        self.control_j += self.energy.control_energy(
            updates,
            if self.controllers.is_rl() { updates } else { 0 },
            self.controllers.is_dt(),
        );

        // Advance the physical substrate.
        self.thermal
            .update_with_telemetry(&tile_powers, epoch_time, &self.telemetry);
        for &t in self.thermal.temperatures() {
            self.max_temp = self.max_temp.max(t);
        }
        self.net.set_temperatures(self.thermal.temperatures());
        self.net.set_utilizations(&utilizations);

        // Export one record per router into the telemetry epoch series.
        if self.telemetry.is_enabled() {
            for i in 0..n {
                let (epsilon, max_q_delta) = self.controllers.learning_signals(i);
                self.telemetry.record_epoch(EpochRecord {
                    run: self.run_id,
                    phase: self.phase,
                    epoch: self.epoch_count,
                    router: i as u16,
                    utilization: features[i].output_utilization,
                    nack_rate: features[i].output_nack_rate,
                    temperature_c: self.thermal.temperature(i),
                    mode: self.modes[i].index() as u8,
                    reward: rewards[i],
                    epsilon,
                    max_q_delta,
                });
            }
        }

        self.net.reset_epoch_stats();
        self.epoch_features = features;
        self.epoch_rewards = rewards;
        self.epoch_tile_powers = tile_powers;
        self.epoch_utilizations = utilizations;
        self.epoch_count += 1;
    }

    fn static_config(&self, mode: OperationMode) -> StaticConfig {
        let base = match self.cfg.scheme {
            ErrorControlScheme::StaticCrc => StaticConfig::crc_router(),
            ErrorControlScheme::StaticArqEcc => StaticConfig::arq_router(),
            ErrorControlScheme::DecisionTree => StaticConfig::dt_router(),
            ErrorControlScheme::ProposedRl => StaticConfig::rl_router(),
        };
        // Dynamic schemes gate the ECC link codecs with the mode.
        if self.cfg.scheme.is_learning() {
            StaticConfig {
                ecc_links_enabled: if mode.ecc_enabled() { 4 } else { 0 },
                ..base
            }
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast configuration for unit tests.
    fn quick(scheme: ErrorControlScheme) -> ExperimentReport {
        Experiment::builder()
            .scheme(scheme)
            .workload(WorkloadProfile::blackscholes())
            .noc(NocConfig::builder().mesh(4, 4).build())
            .pretrain_cycles(6_000)
            .warmup_cycles(1_000)
            .measure_cycles(6_000)
            .drain_limit(40_000)
            .seed(11)
            .build()
            .expect("valid test configuration")
            .run()
    }

    #[test]
    fn crc_scheme_runs_and_delivers() {
        let r = quick(ErrorControlScheme::StaticCrc);
        assert!(r.packets_injected > 0);
        assert!(r.drained, "network must drain");
        assert_eq!(r.packets_delivered, r.packets_injected);
        assert!(r.avg_latency_cycles > 0.0);
        assert!(r.total_energy_j() > 0.0);
        assert_eq!(r.mode_histogram[1..], [0, 0, 0], "CRC never leaves mode 0");
        assert_eq!(r.ecc_corrections, 0, "no ECC hardware in CRC scheme");
    }

    #[test]
    fn arq_scheme_corrects_and_rarely_fails_crc() {
        let r = quick(ErrorControlScheme::StaticArqEcc);
        assert!(r.drained);
        assert_eq!(r.packets_delivered, r.packets_injected);
        assert_eq!(r.mode_histogram[0], 0, "ARQ never uses mode 0");
        assert_eq!(r.mode_histogram[2], 0);
    }

    #[test]
    fn rl_scheme_runs_with_all_modes_available() {
        let r = quick(ErrorControlScheme::ProposedRl);
        assert!(r.drained);
        assert_eq!(r.packets_delivered, r.packets_injected);
        let total: u64 = r.mode_histogram.iter().sum();
        assert!(total > 0, "control loop executed");
    }

    #[test]
    fn dt_scheme_trains_and_runs() {
        let r = quick(ErrorControlScheme::DecisionTree);
        assert!(r.drained);
        assert_eq!(r.packets_delivered, r.packets_injected);
    }

    #[test]
    fn reports_are_reproducible() {
        let a = quick(ErrorControlScheme::ProposedRl);
        let b = quick(ErrorControlScheme::ProposedRl);
        assert_eq!(a, b, "identical seeds must give identical reports");
    }

    /// Replicate lanes of one cell, differing only by seed.
    fn lane(scheme: ErrorControlScheme, seed: u64) -> Experiment {
        Experiment::builder()
            .scheme(scheme)
            .workload(WorkloadProfile::blackscholes())
            .noc(NocConfig::builder().mesh(4, 4).build())
            .pretrain_cycles(6_000)
            .warmup_cycles(1_000)
            .measure_cycles(6_000)
            .drain_limit(40_000)
            .seed(seed)
            .build()
            .expect("valid test configuration")
    }

    #[test]
    fn batched_lanes_match_serial_reports_exactly() {
        let lanes: Vec<Experiment> = [11, 12, 13]
            .into_iter()
            .map(|seed| lane(ErrorControlScheme::ProposedRl, seed))
            .collect();
        let serial: Vec<ExperimentReport> = lanes.iter().cloned().map(|e| e.run()).collect();
        let batched = Experiment::run_batch(lanes);
        assert_eq!(serial, batched, "lockstep lanes must be byte-identical");
    }

    #[test]
    fn mixed_scheme_batch_still_matches_serial() {
        let lanes: Vec<Experiment> = ErrorControlScheme::ALL
            .into_iter()
            .map(|scheme| lane(scheme, 11))
            .collect();
        let serial: Vec<ExperimentReport> = lanes.iter().cloned().map(|e| e.run()).collect();
        let batched = Experiment::run_batch(lanes);
        assert_eq!(serial, batched);
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(ErrorControlScheme::StaticCrc);
        let b = Experiment::builder()
            .scheme(ErrorControlScheme::StaticCrc)
            .workload(WorkloadProfile::blackscholes())
            .noc(NocConfig::builder().mesh(4, 4).build())
            .pretrain_cycles(6_000)
            .warmup_cycles(1_000)
            .measure_cycles(6_000)
            .drain_limit(40_000)
            .seed(12)
            .build()
            .expect("valid")
            .run();
        assert_ne!(a.packets_injected, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn energy_efficiency_is_positive_and_finite() {
        let r = quick(ErrorControlScheme::StaticArqEcc);
        let eff = r.energy_efficiency();
        assert!(eff.is_finite() && eff > 0.0);
        assert!(r.dynamic_power_w() > 0.0);
        assert!((0.99..=1.0).contains(&r.delivery_ratio()));
    }

    #[test]
    fn temperatures_in_plausible_band() {
        let r = quick(ErrorControlScheme::StaticCrc);
        assert!(
            (45.0..120.0).contains(&r.mean_temperature_c),
            "mean temperature {}",
            r.mean_temperature_c
        );
        assert!(r.max_temperature_c >= r.mean_temperature_c);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(Experiment::builder().epoch_cycles(0).build().is_err());
        assert!(Experiment::builder().drain_limit(0).build().is_err());
        assert!(Experiment::builder().allowed_modes(&[]).build().is_err());
    }

    #[test]
    fn mode_ablation_restricts_action_set() {
        let r = Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .workload(WorkloadProfile::blackscholes())
            .noc(NocConfig::builder().mesh(4, 4).build())
            .pretrain_cycles(4_000)
            .warmup_cycles(1_000)
            .measure_cycles(4_000)
            .allowed_modes(&[OperationMode::Mode0, OperationMode::Mode1])
            .seed(3)
            .build()
            .expect("valid")
            .run();
        assert_eq!(r.mode_histogram[2], 0);
        assert_eq!(r.mode_histogram[3], 0);
    }

    #[test]
    fn telemetry_records_epochs_runs_and_spans() {
        let telemetry = Telemetry::enabled();
        let report = Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .workload(WorkloadProfile::blackscholes())
            .noc(NocConfig::builder().mesh(4, 4).build())
            .pretrain_cycles(4_000)
            .warmup_cycles(1_000)
            .measure_cycles(4_000)
            .drain_limit(40_000)
            .seed(11)
            .telemetry(telemetry.clone())
            .build()
            .expect("valid test configuration")
            .run();

        // One record per router per control epoch, covering every router.
        let records = telemetry.epoch_records();
        assert!(!records.is_empty());
        assert_eq!(records.len() % 16, 0, "records come in full-mesh batches");
        let routers: std::collections::BTreeSet<u16> = records.iter().map(|r| r.router).collect();
        assert_eq!(routers.len(), 16, "all routers covered");
        for r in &records {
            assert!((0.0..=1.0).contains(&r.utilization), "utilization {r:?}");
            assert!((0.0..=1.0).contains(&r.nack_rate));
            assert!(r.temperature_c > 0.0 && r.temperature_c < 200.0);
            assert!(r.mode < 4);
            assert!(r.reward.is_finite());
            assert!((0.0..=1.0).contains(&r.epsilon));
            assert!(r.max_q_delta >= 0.0);
        }
        assert!(
            records
                .iter()
                .any(|r| r.phase == rlnoc_telemetry::Phase::Pretrain),
            "pretrain epochs recorded"
        );
        assert!(
            records
                .iter()
                .any(|r| r.phase == rlnoc_telemetry::Phase::Measure),
            "measurement epochs recorded"
        );

        // Run summary: wall clock and simulated-cycle throughput.
        let runs = telemetry.run_summaries();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "RL/blackscholes/seed11");
        assert!(runs[0].cycles > 0);
        assert!(runs[0].wall_seconds > 0.0);

        // Hot-path instruments saw traffic.
        let cycles = telemetry.counter("sim.cycles").get();
        assert_eq!(runs[0].cycles, cycles, "run cycles match the counter");
        assert!(telemetry.timer("sim.phase.sa_st").snapshot().count >= cycles);
        assert!(telemetry.timer("rl.td_update").snapshot().count > 0);
        assert!(telemetry.timer("thermal.update").snapshot().count > 0);

        // Telemetry must not perturb the simulation itself: the same
        // configuration without telemetry produces an identical report.
        let bare = Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .workload(WorkloadProfile::blackscholes())
            .noc(NocConfig::builder().mesh(4, 4).build())
            .pretrain_cycles(4_000)
            .warmup_cycles(1_000)
            .measure_cycles(4_000)
            .drain_limit(40_000)
            .seed(11)
            .build()
            .expect("valid test configuration")
            .run();
        assert_eq!(report, bare, "telemetry must be observation-only");
    }

    #[test]
    fn rl_policy_preload_skips_pretraining_and_is_deterministic() {
        use std::sync::Arc;
        // Train once, snapshot the learned policy.
        let (_, artifacts) = Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .workload(WorkloadProfile::blackscholes())
            .noc(NocConfig::builder().mesh(4, 4).build())
            .pretrain_cycles(6_000)
            .warmup_cycles(1_000)
            .measure_cycles(4_000)
            .drain_limit(40_000)
            .seed(11)
            .build()
            .expect("valid")
            .run_inspect();
        let policy = Arc::new(
            artifacts
                .controllers
                .policy_snapshot()
                .expect("RL bank snapshots"),
        );

        // Evaluate twice with the frozen policy: identical reports, and
        // no TD updates during the run (inference only).
        let eval = |seed: u64| {
            Experiment::builder()
                .scheme(ErrorControlScheme::ProposedRl)
                .workload(WorkloadProfile::blackscholes())
                .noc(NocConfig::builder().mesh(4, 4).build())
                .pretrain_cycles(6_000) // ignored: policy preloaded
                .warmup_cycles(1_000)
                .measure_cycles(4_000)
                .drain_limit(40_000)
                .seed(seed)
                .rl_policy(Arc::clone(&policy))
                .build()
                .expect("valid")
                .run_inspect()
        };
        let (a, art_a) = eval(23);
        let (b, _) = eval(23);
        assert_eq!(a, b, "inference runs are reproducible");
        assert!(a.drained);
        assert_eq!(a.packets_delivered, a.packets_injected);
        let (loaded, _) = art_a.controllers.rl_agents().expect("rl bank");
        assert!(
            loaded.iter().all(|ag| !ag.learning_enabled()),
            "preloaded agents stay frozen"
        );
        let trained_updates: u64 = artifacts
            .controllers
            .rl_agents()
            .unwrap()
            .0
            .iter()
            .map(|ag| ag.q_table().updates())
            .sum();
        let eval_updates: u64 = loaded.iter().map(|ag| ag.q_table().updates()).sum();
        assert_eq!(
            eval_updates, trained_updates,
            "no TD updates during inference"
        );
    }

    #[test]
    fn rl_policy_preload_is_validated_at_build_time() {
        use std::sync::Arc;
        let small = Arc::new(noc_rl::snapshot::PolicySnapshot::new(vec![
            noc_rl::qtable::QTable::new(
                10
            );
            4
        ]));
        // Wrong scheme.
        assert!(Experiment::builder()
            .scheme(ErrorControlScheme::StaticCrc)
            .rl_policy(Arc::clone(&small))
            .build()
            .is_err());
        // Wrong agent count for the 8x8 default mesh.
        assert!(Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .rl_policy(Arc::clone(&small))
            .build()
            .is_err());
        // Wrong state-space size for a 2x2 mesh.
        assert!(Experiment::builder()
            .scheme(ErrorControlScheme::ProposedRl)
            .noc(NocConfig::builder().mesh(2, 2).build())
            .rl_policy(small)
            .build()
            .is_err());
    }

    #[test]
    fn scheme_display_and_variants() {
        assert_eq!(ErrorControlScheme::StaticCrc.to_string(), "CRC");
        assert_eq!(ErrorControlScheme::ProposedRl.to_string(), "RL");
        assert!(ErrorControlScheme::ProposedRl.is_learning());
        assert!(!ErrorControlScheme::StaticArqEcc.is_learning());
        assert_eq!(
            ErrorControlScheme::DecisionTree.router_variant(),
            RouterVariant::DecisionTree
        );
    }
}
