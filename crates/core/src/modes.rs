//! The four fault-tolerant operation modes (§III of the paper).
//!
//! Each router selects one mode, which governs all of its outgoing ECC
//! links ("ECC-Link i" = the encoder at router *i* plus the decoder at
//! router *i+1*):
//!
//! | Mode | Error level | ECC links | Behaviour |
//! |------|-------------|-----------|-----------|
//! | 0 | minimum | disabled | errors escape to the destination CRC; full-packet source retransmission |
//! | 1 | low | enabled | SECDED corrects single flips; NACK + hop retransmit on doubles |
//! | 2 | medium | enabled | every flit followed by a proactive duplicate one cycle later (flit pre-retransmission) |
//! | 3 | high | enabled | two stall cycles before each transmission relax timing; error probability collapses |

use serde::{Deserialize, Serialize};

/// A fault-tolerant operation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum OperationMode {
    /// ECC links disabled; rely on end-to-end CRC.
    Mode0 = 0,
    /// ECC links enabled (ARQ+ECC per hop).
    Mode1 = 1,
    /// ECC links enabled plus flit pre-retransmission.
    Mode2 = 2,
    /// ECC links enabled plus two-cycle timing relaxation.
    Mode3 = 3,
}

impl OperationMode {
    /// All modes in action-index order.
    pub const ALL: [OperationMode; 4] = [
        OperationMode::Mode0,
        OperationMode::Mode1,
        OperationMode::Mode2,
        OperationMode::Mode3,
    ];

    /// The RL action index of this mode.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a mode from an RL action index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Whether the router's outgoing link SECDED hardware is powered.
    pub fn ecc_enabled(self) -> bool {
        self != OperationMode::Mode0
    }

    /// Whether every flit is followed by a proactive duplicate.
    pub fn pre_retransmit(self) -> bool {
        self == OperationMode::Mode2
    }

    /// Stall cycles inserted before each flit transmission.
    pub fn tx_delay(self) -> u32 {
        if self == OperationMode::Mode3 {
            2
        } else {
            0
        }
    }

    /// Whether the link runs with relaxed timing (mode 3), collapsing the
    /// timing-error probability.
    pub fn relaxed_timing(self) -> bool {
        self == OperationMode::Mode3
    }

    /// Pipeline latency of the link's SECDED encode/decode stage: one
    /// cycle whenever the ECC hardware is in the datapath. Pure latency
    /// (the codec is pipelined), no bandwidth cost.
    pub fn pipeline_latency(self) -> u32 {
        u32::from(self.ecc_enabled())
    }
}

impl Default for OperationMode {
    /// The paper initializes all routers to mode 0.
    fn default() -> Self {
        OperationMode::Mode0
    }
}

impl std::fmt::Display for OperationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mode {}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for mode in OperationMode::ALL {
            assert_eq!(OperationMode::from_index(mode.index()), mode);
        }
    }

    #[test]
    fn mode0_is_bare() {
        let m = OperationMode::Mode0;
        assert!(!m.ecc_enabled());
        assert!(!m.pre_retransmit());
        assert_eq!(m.tx_delay(), 0);
        assert!(!m.relaxed_timing());
    }

    #[test]
    fn mode1_is_plain_arq_ecc() {
        let m = OperationMode::Mode1;
        assert!(m.ecc_enabled());
        assert!(!m.pre_retransmit());
        assert_eq!(m.tx_delay(), 0);
    }

    #[test]
    fn mode2_adds_pre_retransmission() {
        let m = OperationMode::Mode2;
        assert!(m.ecc_enabled());
        assert!(m.pre_retransmit());
        assert_eq!(m.tx_delay(), 0);
    }

    #[test]
    fn mode3_relaxes_timing() {
        let m = OperationMode::Mode3;
        assert!(m.ecc_enabled());
        assert!(!m.pre_retransmit());
        assert_eq!(m.tx_delay(), 2);
        assert!(m.relaxed_timing());
    }

    #[test]
    fn default_is_mode0() {
        assert_eq!(OperationMode::default(), OperationMode::Mode0);
    }

    #[test]
    fn display() {
        assert_eq!(OperationMode::Mode2.to_string(), "mode 2");
    }
}
