//! Wire-serializable campaign submissions.
//!
//! A [`Campaign`] cannot travel over a wire: it embeds resolved
//! [`WorkloadProfile`]s and an arbitrary `customize` function pointer.
//! [`CampaignSpec`] is the transferable subset — everything a remote
//! client may legitimately configure — with an exact, versioned text
//! serialization in the family of `rlnoc-case` / `rlnoc-policy`
//! (`key=value` lines, CRC-32 trailer):
//!
//! ```text
//! rlnoc-spec v1
//! schemes=CRC,RL
//! workloads=blackscholes,canneal
//! mesh=4x4
//! seed=0000000000000007
//! replicates=1
//! pretrain=8000
//! warmup=1000
//! measure=6000
//! drain=60000
//! crc=9b2f11c3
//! ```
//!
//! The `mesh=` line carries a topology-zoo encoding (`4x4`,
//! `torus:16x16`, `ftorus:8x8`, `3d:4x4x4`), so plain-mesh specs keep
//! the original byte layout. `measure=none` lifts the measurement cap. The spec resolves to a
//! [`Campaign`] via [`CampaignSpec::to_campaign`]; its identity — used
//! by the campaign service for persistence directories and result
//! deduplication — is the resolved campaign's
//! [`fingerprint`](Campaign::fingerprint), rendered by
//! [`CampaignSpec::campaign_id`] as `c-<fingerprint:016x>`. Two specs
//! with the same id produce byte-identical reports, so a service may
//! re-serve cached results for a resubmission.

use crate::benchmarks::WorkloadProfile;
use crate::campaign::Campaign;
use crate::experiment::ErrorControlScheme;
use noc_coding::crc::Crc32;
use noc_sim::config::NocConfig;
use noc_sim::topology::{Mesh, Topo};
use std::fmt::Write as _;

const MAGIC: &str = "rlnoc-spec v1";

/// A spec that does not describe a runnable campaign, or text that is
/// not a valid `rlnoc-spec v1` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid campaign spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// The wire-transferable description of a campaign grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Schemes to compare, in run order (non-empty, no duplicates).
    pub schemes: Vec<ErrorControlScheme>,
    /// Workload names, resolved against [`WorkloadProfile::all`].
    pub workloads: Vec<String>,
    /// Topology of the grid (projection dimensions ≥ 2).
    pub topo: Topo,
    /// Master campaign seed.
    pub seed: u64,
    /// Seed replicates per (scheme, workload) cell (≥ 1).
    pub replicates: usize,
    /// Pre-training cycles for learning schemes.
    pub pretrain_cycles: u64,
    /// Warm-up cycles for all schemes.
    pub warmup_cycles: u64,
    /// Optional cap on the measured injection window.
    pub measure_cycles: Option<u64>,
    /// Drain budget per run.
    pub drain_limit: u64,
}

fn scheme_token(s: ErrorControlScheme) -> &'static str {
    match s {
        ErrorControlScheme::StaticCrc => "CRC",
        ErrorControlScheme::StaticArqEcc => "ARQ+ECC",
        ErrorControlScheme::DecisionTree => "DT",
        ErrorControlScheme::ProposedRl => "RL",
    }
}

fn scheme_from_token(t: &str) -> Option<ErrorControlScheme> {
    match t {
        "CRC" => Some(ErrorControlScheme::StaticCrc),
        "ARQ+ECC" => Some(ErrorControlScheme::StaticArqEcc),
        "DT" => Some(ErrorControlScheme::DecisionTree),
        "RL" => Some(ErrorControlScheme::ProposedRl),
        _ => None,
    }
}

impl CampaignSpec {
    /// A minimal, fast spec: one CRC run on a 2×2 mesh with short
    /// windows. The building block of service load tests (vary `seed`
    /// for distinct campaign identities).
    pub fn tiny(seed: u64) -> Self {
        Self {
            schemes: vec![ErrorControlScheme::StaticCrc],
            workloads: vec!["blackscholes".to_string()],
            topo: Mesh::new(2, 2).into(),
            seed,
            replicates: 1,
            pretrain_cycles: 0,
            warmup_cycles: 0,
            measure_cycles: Some(300),
            drain_limit: 20_000,
        }
    }

    /// The spec equivalent of [`Campaign::quick`].
    pub fn quick(seed: u64) -> Self {
        Self {
            schemes: ErrorControlScheme::ALL.to_vec(),
            workloads: vec!["blackscholes".to_string(), "canneal".to_string()],
            topo: Mesh::new(4, 4).into(),
            seed,
            replicates: 1,
            pretrain_cycles: 8_000,
            warmup_cycles: 1_000,
            measure_cycles: Some(6_000),
            drain_limit: 60_000,
        }
    }

    /// Extracts the transferable subset of `campaign`.
    ///
    /// # Errors
    ///
    /// [`SpecError`] when the campaign uses features the wire format
    /// cannot carry: a `customize` hook, an attached telemetry handle's
    /// state is fine (not part of identity), or a [`NocConfig`] that
    /// differs from the mesh-sized default (the spec only transports the
    /// mesh dimensions).
    pub fn from_campaign(campaign: &Campaign) -> Result<Self, SpecError> {
        if campaign.customize.is_some() {
            return Err(SpecError(
                "campaigns with a customize hook are not serializable".into(),
            ));
        }
        let topo = campaign.noc.mesh;
        let default_for_topo = NocConfig::builder().topology(topo).build();
        if campaign.noc != default_for_topo {
            return Err(SpecError(
                "only topology-sized default NocConfigs are serializable".into(),
            ));
        }
        let spec = Self {
            schemes: campaign.schemes.clone(),
            workloads: campaign
                .workloads
                .iter()
                .map(|w| w.name.to_string())
                .collect(),
            topo,
            seed: campaign.seed,
            replicates: campaign.replicates.max(1),
            pretrain_cycles: campaign.pretrain_cycles,
            warmup_cycles: campaign.warmup_cycles,
            measure_cycles: campaign.measure_cycles,
            drain_limit: campaign.drain_limit,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec describes a runnable campaign.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.schemes.is_empty() {
            return Err(SpecError("at least one scheme required".into()));
        }
        for (i, s) in self.schemes.iter().enumerate() {
            if self.schemes[..i].contains(s) {
                return Err(SpecError(format!("duplicate scheme `{s}`")));
            }
        }
        if self.workloads.is_empty() {
            return Err(SpecError("at least one workload required".into()));
        }
        if self.topo.width() < 2 || self.topo.height() < 2 {
            return Err(SpecError("topology dimensions must be ≥ 2".into()));
        }
        if self.replicates == 0 {
            return Err(SpecError("replicates must be ≥ 1".into()));
        }
        if self.drain_limit == 0 {
            return Err(SpecError("drain_limit must be positive".into()));
        }
        if self.measure_cycles == Some(0) {
            return Err(SpecError("measure cap must be positive".into()));
        }
        let known = WorkloadProfile::all();
        for name in &self.workloads {
            match known.iter().find(|w| w.name == name.as_str()) {
                None => return Err(SpecError(format!("unknown workload `{name}`"))),
                Some(w) if !w.fits_mesh(self.topo) => {
                    return Err(SpecError(format!(
                        "workload `{name}` references nodes outside a {} topology",
                        self.topo.encode()
                    )));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Resolves the spec into a runnable [`Campaign`] (telemetry
    /// disabled, no customize hook).
    ///
    /// # Errors
    ///
    /// Validation errors, as [`validate`](Self::validate).
    pub fn to_campaign(&self) -> Result<Campaign, SpecError> {
        self.validate()?;
        let known = WorkloadProfile::all();
        let workloads = self
            .workloads
            .iter()
            .map(|name| {
                known
                    .iter()
                    .find(|w| w.name == name.as_str())
                    .expect("validated workload")
                    .clone()
            })
            .collect();
        Ok(Campaign {
            schemes: self.schemes.clone(),
            workloads,
            noc: NocConfig::builder().topology(self.topo).build(),
            seed: self.seed,
            replicates: self.replicates,
            pretrain_cycles: self.pretrain_cycles,
            warmup_cycles: self.warmup_cycles,
            measure_cycles: self.measure_cycles,
            drain_limit: self.drain_limit,
            hard_faults: None,
            customize: None,
            telemetry: rlnoc_telemetry::Telemetry::disabled(),
        })
    }

    /// The resolved campaign's fingerprint.
    ///
    /// # Errors
    ///
    /// Validation errors, as [`validate`](Self::validate).
    pub fn fingerprint(&self) -> Result<u64, SpecError> {
        Ok(self.to_campaign()?.fingerprint())
    }

    /// The service-facing campaign identity: `c-<fingerprint:016x>`.
    /// Doubles as the campaign's persistence directory name.
    ///
    /// # Errors
    ///
    /// Validation errors, as [`validate`](Self::validate).
    pub fn campaign_id(&self) -> Result<String, SpecError> {
        Ok(format!("c-{:016x}", self.fingerprint()?))
    }

    /// Serializes to the `rlnoc-spec v1` text format.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(MAGIC);
        body.push('\n');
        let schemes: Vec<&str> = self.schemes.iter().copied().map(scheme_token).collect();
        writeln!(body, "schemes={}", schemes.join(",")).expect("write to string");
        writeln!(body, "workloads={}", self.workloads.join(",")).expect("write to string");
        writeln!(body, "mesh={}", self.topo.encode()).expect("write to string");
        writeln!(body, "seed={:016x}", self.seed).expect("write to string");
        writeln!(body, "replicates={}", self.replicates).expect("write to string");
        writeln!(body, "pretrain={}", self.pretrain_cycles).expect("write to string");
        writeln!(body, "warmup={}", self.warmup_cycles).expect("write to string");
        match self.measure_cycles {
            Some(c) => writeln!(body, "measure={c}").expect("write to string"),
            None => writeln!(body, "measure=none").expect("write to string"),
        }
        writeln!(body, "drain={}", self.drain_limit).expect("write to string");
        let crc = Crc32::new().checksum(body.as_bytes());
        writeln!(body, "crc={crc:08x}").expect("write to string");
        body
    }

    /// Parses and validates an `rlnoc-spec v1` document, including its
    /// CRC-32 trailer.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on any structural, checksum, or semantic failure.
    pub fn from_text(text: &str) -> Result<Self, SpecError> {
        let trailer_at = text
            .rfind("crc=")
            .ok_or_else(|| SpecError("missing crc trailer".into()))?;
        let (body, trailer) = text.split_at(trailer_at);
        let stated = trailer
            .trim()
            .strip_prefix("crc=")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| SpecError("malformed crc trailer".into()))?;
        let actual = Crc32::new().checksum(body.as_bytes());
        if stated != actual {
            return Err(SpecError(format!(
                "crc mismatch: file says {stated:08x}, content is {actual:08x}"
            )));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MAGIC) {
            return Err(SpecError(format!("bad magic, want `{MAGIC}`")));
        }
        let mut field = |name: &str| -> Result<String, SpecError> {
            let line = lines
                .next()
                .ok_or_else(|| SpecError(format!("missing field `{name}`")))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix('='))
                .map(str::to_string)
                .ok_or_else(|| SpecError(format!("expected `{name}=`, got `{line}`")))
        };
        let schemes_raw = field("schemes")?;
        let mut schemes = Vec::new();
        for token in schemes_raw.split(',') {
            schemes.push(
                scheme_from_token(token)
                    .ok_or_else(|| SpecError(format!("unknown scheme `{token}`")))?,
            );
        }
        let workloads: Vec<String> = field("workloads")?.split(',').map(str::to_string).collect();
        let topo = Topo::parse(&field("mesh")?).map_err(SpecError)?;
        let seed =
            u64::from_str_radix(&field("seed")?, 16).map_err(|_| SpecError("bad seed".into()))?;
        let parse_u64 = |s: String, what: &str| -> Result<u64, SpecError> {
            s.parse()
                .map_err(|_| SpecError(format!("bad {what} `{s}`")))
        };
        let replicates = parse_u64(field("replicates")?, "replicates")? as usize;
        let pretrain_cycles = parse_u64(field("pretrain")?, "pretrain")?;
        let warmup_cycles = parse_u64(field("warmup")?, "warmup")?;
        let measure_raw = field("measure")?;
        let measure_cycles = if measure_raw == "none" {
            None
        } else {
            Some(parse_u64(measure_raw, "measure")?)
        };
        let drain_limit = parse_u64(field("drain")?, "drain")?;
        let spec = Self {
            schemes,
            workloads,
            topo,
            seed,
            replicates,
            pretrain_cycles,
            warmup_cycles,
            measure_cycles,
            drain_limit,
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl std::fmt::Display for CampaignSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} schemes={} workloads={} seed={:016x} replicates={}",
            self.topo.encode(),
            self.schemes.len(),
            self.workloads.join(","),
            self.seed,
            self.replicates,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip_is_exact() {
        for spec in [
            CampaignSpec::tiny(7),
            CampaignSpec::quick(99),
            CampaignSpec {
                measure_cycles: None,
                ..CampaignSpec::quick(3)
            },
        ] {
            let text = spec.to_text();
            let back = CampaignSpec::from_text(&text).expect("round trip");
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn zoo_specs_round_trip_and_resolve() {
        use noc_sim::topology::{FoldedTorus, Mesh3d, Torus};
        let topos: [Topo; 3] = [
            Torus::new(4, 4).into(),
            FoldedTorus::new(4, 4).into(),
            Mesh3d::new(4, 2, 2).into(),
        ];
        for topo in topos {
            let spec = CampaignSpec {
                topo,
                ..CampaignSpec::tiny(11)
            };
            let text = spec.to_text();
            assert!(
                text.contains(&format!("mesh={}\n", topo.encode())),
                "got: {text}"
            );
            let back = CampaignSpec::from_text(&text).expect("round trip");
            assert_eq!(spec, back);
            let campaign = spec.to_campaign().expect("valid");
            assert_eq!(campaign.noc.mesh, topo);
            let again = CampaignSpec::from_campaign(&campaign).expect("serializable");
            assert_eq!(spec, again);
        }
    }

    #[test]
    fn campaign_round_trip_preserves_fingerprint() {
        let spec = CampaignSpec::quick(2019);
        let campaign = spec.to_campaign().expect("valid");
        let back = CampaignSpec::from_campaign(&campaign).expect("serializable");
        assert_eq!(spec, back);
        assert_eq!(
            spec.fingerprint().unwrap(),
            campaign.fingerprint(),
            "spec identity is the campaign fingerprint"
        );
        assert_eq!(
            spec.campaign_id().unwrap(),
            format!("c-{:016x}", campaign.fingerprint())
        );
    }

    #[test]
    fn quick_spec_matches_campaign_quick() {
        // Campaign::quick seeds with 7; the spec must resolve to the
        // exact same grid so service runs re-serve runner results.
        let spec = CampaignSpec::quick(7);
        let via_spec = spec.to_campaign().expect("valid");
        let direct = Campaign::quick();
        assert_eq!(via_spec.fingerprint(), direct.fingerprint());
        assert_eq!(via_spec.tasks(), direct.tasks());
    }

    #[test]
    fn corrupt_spec_text_is_rejected() {
        let text = CampaignSpec::tiny(1).to_text();
        let corrupt = text.replace("mesh=2x2", "mesh=3x3");
        assert!(
            CampaignSpec::from_text(&corrupt).is_err(),
            "crc catches edits"
        );
        assert!(CampaignSpec::from_text(&text[..text.len() / 2]).is_err());
        assert!(CampaignSpec::from_text("").is_err());
    }

    #[test]
    fn semantic_validation_rejects_bad_specs() {
        let mut s = CampaignSpec::tiny(1);
        s.workloads = vec!["no-such-workload".into()];
        assert!(s.validate().is_err());

        let mut s = CampaignSpec::tiny(1);
        s.schemes.clear();
        assert!(s.validate().is_err());

        let mut s = CampaignSpec::tiny(1);
        s.schemes = vec![ErrorControlScheme::StaticCrc, ErrorControlScheme::StaticCrc];
        assert!(s.validate().is_err(), "duplicate schemes rejected");

        let mut s = CampaignSpec::tiny(1);
        s.topo = Mesh::new(1, 2).into();
        assert!(s.validate().is_err());

        let mut s = CampaignSpec::tiny(1);
        s.replicates = 0;
        assert!(s.validate().is_err());

        // streamcluster pins a hotspot outside a 2x2 mesh.
        let mut s = CampaignSpec::tiny(1);
        s.workloads = vec!["streamcluster".into()];
        assert!(s.validate().is_err());
    }

    #[test]
    fn customized_campaigns_are_not_serializable() {
        let mut c = Campaign::quick();
        c.customize = Some(|b| b);
        assert!(CampaignSpec::from_campaign(&c).is_err());
        let mut c = Campaign::quick();
        c.noc = NocConfig::builder().mesh(4, 4).vc_depth(8).build();
        assert!(CampaignSpec::from_campaign(&c).is_err());
    }

    #[test]
    fn distinct_seeds_give_distinct_ids() {
        let a = CampaignSpec::tiny(1).campaign_id().unwrap();
        let b = CampaignSpec::tiny(2).campaign_id().unwrap();
        assert_ne!(a, b);
    }
}
