//! Per-router fault-tolerant controllers.
//!
//! A [`ControllerBank`] holds one controller per router and maps each
//! epoch's observed [`RouterFeatures`] (plus the reward earned by the
//! previous action) to the next [`OperationMode`]:
//!
//! * [`ControllerBank::statically`] — the CRC and ARQ+ECC baselines: a
//!   fixed mode forever.
//! * [`ControllerBank::rl`] — the proposed design: one tabular Q-learning
//!   agent per router (§IV).
//! * [`ControllerBank::dt`] — the supervised baseline: a CART tree
//!   predicts the link error rate from the features; fixed thresholds map
//!   the prediction to a mode (DiTomaso et al.). The tree is trained once
//!   from pre-training samples and frozen, exactly as the paper describes
//!   ("the training result of DT is no longer updated during testing").

use crate::modes::OperationMode;
use noc_rl::agent::{AgentConfig, QLearningAgent};
use noc_rl::decision_tree::{DecisionTree, TreeParams};
use noc_rl::snapshot::PolicySnapshot;
use noc_rl::state::{RouterFeatures, StateSpace};

/// Why a [`PolicySnapshot`] could not be loaded into a bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyLoadError {
    /// The bank is not the RL bank — there is nothing to load a Q-table
    /// policy into.
    NotRlBank,
    /// The snapshot holds a different number of per-router agents than
    /// the bank.
    AgentCountMismatch {
        /// Agents in the bank.
        expected: usize,
        /// Agents in the snapshot.
        actual: usize,
    },
    /// The snapshot's tables discretize a different state space.
    StateSpaceMismatch {
        /// States per table in the bank.
        expected: usize,
        /// States per table in the snapshot.
        actual: usize,
    },
    /// The snapshot was trained with a different fault-degree bin count
    /// than the bank's state space uses.
    FaultBinsMismatch {
        /// Fault bins in the bank's state space.
        expected: usize,
        /// Fault bins recorded in the snapshot.
        actual: usize,
    },
}

impl std::fmt::Display for PolicyLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotRlBank => write!(f, "policy snapshots only apply to the RL controller bank"),
            Self::AgentCountMismatch { expected, actual } => {
                write!(f, "snapshot has {actual} agents, bank has {expected}")
            }
            Self::StateSpaceMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot tables have {actual} states, bank expects {expected}"
                )
            }
            Self::FaultBinsMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot trained with {actual} fault bins, bank uses {expected}"
                )
            }
        }
    }
}

impl std::error::Error for PolicyLoadError {}

/// Error-rate thresholds mapping a DT prediction to an operation mode.
///
/// Derived from the scheme's cost crossovers: below `t01` the ECC
/// hardware costs more than the rare full-packet retransmissions it
/// avoids (→ mode 0); above `t23` even hop retransmissions contaminate
/// the link and only timing relaxation helps (→ mode 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtThresholds {
    /// Mode 0 below this predicted per-flit error rate.
    pub t01: f64,
    /// Mode 1 below this rate.
    pub t12: f64,
    /// Mode 2 below this rate; mode 3 at or above.
    pub t23: f64,
}

impl Default for DtThresholds {
    fn default() -> Self {
        Self {
            t01: 3.2e-3,
            t12: 2.5e-2,
            t23: 6e-2,
        }
    }
}

impl DtThresholds {
    /// Maps a predicted error rate to an operation mode.
    pub fn mode_for(self, predicted_rate: f64) -> OperationMode {
        if predicted_rate < self.t01 {
            OperationMode::Mode0
        } else if predicted_rate < self.t12 {
            OperationMode::Mode1
        } else if predicted_rate < self.t23 {
            OperationMode::Mode2
        } else {
            OperationMode::Mode3
        }
    }
}

/// A labeled training sample for the DT baseline: Table I features plus
/// the observed (oracle) per-flit link error rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DtSample {
    /// Observed features.
    pub features: RouterFeatures,
    /// Supervised label: the link's true error probability.
    pub error_rate: f64,
}

fn feature_vector(f: &RouterFeatures) -> Vec<f64> {
    vec![
        f.buffer_occupancy,
        f.input_utilization,
        f.output_utilization,
        f.input_nack_rate,
        f.output_nack_rate,
        f.temperature_c,
    ]
}

enum Bank {
    Static(OperationMode),
    Rl {
        agents: Vec<QLearningAgent>,
        space: StateSpace,
        forced: Option<OperationMode>,
    },
    Dt {
        tree: Option<DecisionTree>,
        thresholds: DtThresholds,
        samples: Vec<DtSample>,
    },
}

/// One controller per router.
pub struct ControllerBank {
    bank: Bank,
    decisions: u64,
}

impl ControllerBank {
    /// A bank that always selects `mode` (CRC baseline = mode 0, ARQ+ECC
    /// baseline = mode 1).
    pub fn statically(mode: OperationMode) -> Self {
        Self {
            bank: Bank::Static(mode),
            decisions: 0,
        }
    }

    /// The proposed per-router Q-learning bank with the paper's
    /// hyper-parameters (α = 0.1, γ = 0.5, ε = 0.1).
    pub fn rl(num_routers: usize, seed: u64) -> Self {
        Self::rl_with(
            num_routers,
            seed,
            AgentConfig::paper_default(),
            StateSpace::paper_default(),
        )
    }

    /// An RL bank with explicit hyper-parameters (used by ablations).
    pub fn rl_with(num_routers: usize, seed: u64, config: AgentConfig, space: StateSpace) -> Self {
        let agents = (0..num_routers)
            .map(|i| {
                QLearningAgent::new(
                    space.num_states(),
                    config.clone(),
                    rand::seed_stream(seed, i as u64),
                )
            })
            .collect();
        Self {
            bank: Bank::Rl {
                agents,
                space,
                forced: None,
            },
            decisions: 0,
        }
    }

    /// Forces every RL agent's next decisions to `mode` (curriculum
    /// pre-training); `None` restores ε-greedy selection. TD updates
    /// continue either way. No-op for non-RL banks.
    pub fn set_forced_mode(&mut self, mode: Option<OperationMode>) {
        if let Bank::Rl { forced, .. } = &mut self.bank {
            *forced = mode;
        }
    }

    /// The decision-tree bank (untrained; collect samples during
    /// pre-training, then call [`train_dt`](Self::train_dt)).
    pub fn dt(thresholds: DtThresholds) -> Self {
        Self {
            bank: Bank::Dt {
                tree: None,
                thresholds,
                samples: Vec::new(),
            },
            decisions: 0,
        }
    }

    /// `true` when this is the learning (RL) bank.
    pub fn is_rl(&self) -> bool {
        matches!(self.bank, Bank::Rl { .. })
    }

    /// `true` when this is the decision-tree bank.
    pub fn is_dt(&self) -> bool {
        matches!(self.bank, Bank::Dt { .. })
    }

    /// Total per-router decisions taken (Q-table or DT lookups, for the
    /// energy model).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Records a DT training sample (no-op for other banks).
    pub fn record_dt_sample(&mut self, sample: DtSample) {
        if let Bank::Dt { samples, .. } = &mut self.bank {
            samples.push(sample);
        }
    }

    /// Fits the decision tree from collected samples and freezes it.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-DT bank or with no samples collected.
    pub fn train_dt(&mut self) {
        let Bank::Dt { tree, samples, .. } = &mut self.bank else {
            panic!("train_dt on a non-DT controller bank");
        };
        assert!(!samples.is_empty(), "no DT training samples collected");
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| feature_vector(&s.features))
            .collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.error_rate).collect();
        *tree = Some(DecisionTree::fit(&xs, &ys, TreeParams::default()));
        samples.clear();
    }

    /// Whether the DT bank has been trained.
    pub fn dt_trained(&self) -> bool {
        matches!(&self.bank, Bank::Dt { tree: Some(_), .. })
    }

    /// One control decision for `router`: consume the epoch's `features`
    /// and the `reward` earned by the previous action, return the next
    /// mode.
    ///
    /// For the untrained DT bank this returns mode 1 (the safe static
    /// default used during its own pre-training).
    pub fn decide(
        &mut self,
        router: usize,
        features: &RouterFeatures,
        reward: f64,
    ) -> OperationMode {
        self.decisions += 1;
        match &mut self.bank {
            Bank::Static(mode) => *mode,
            Bank::Rl {
                agents,
                space,
                forced,
            } => {
                let state = space.discretize(features);
                let action = match forced {
                    Some(mode) => agents[router].observe_and_force(state, reward, mode.index()),
                    None => agents[router].observe_and_act(state, reward),
                };
                OperationMode::from_index(action)
            }
            Bank::Dt {
                tree, thresholds, ..
            } => match tree {
                Some(t) => thresholds.mode_for(t.predict(&feature_vector(features))),
                None => OperationMode::Mode1,
            },
        }
    }

    /// The RL agents and state space, when this is the RL bank — for
    /// inspecting learned policies.
    pub fn rl_agents(&self) -> Option<(&[QLearningAgent], &StateSpace)> {
        match &self.bank {
            Bank::Rl { agents, space, .. } => Some((agents, space)),
            _ => None,
        }
    }

    /// Total TD updates applied across agents (0 for non-RL banks).
    pub fn rl_updates(&self) -> u64 {
        match &self.bank {
            Bank::Rl { agents, .. } => agents.iter().map(|a| a.q_table().updates()).sum(),
            _ => 0,
        }
    }

    /// Replaces every RL agent's exploration schedule (no-op for other
    /// banks) — e.g. annealing ε after pre-training.
    pub fn set_epsilon(&mut self, epsilon: noc_rl::schedule::Schedule) {
        if let Bank::Rl { agents, .. } = &mut self.bank {
            for a in agents {
                a.set_epsilon(epsilon);
            }
        }
    }

    /// Freezes/unfreezes RL learning (no-op for other banks).
    pub fn set_learning(&mut self, enabled: bool) {
        if let Bank::Rl { agents, .. } = &mut self.bank {
            for a in agents {
                a.set_learning(enabled);
            }
        }
    }

    /// Wires telemetry through to every RL agent (the `rl.td_update`
    /// span timer). No-op for non-RL banks or a disabled handle.
    pub fn set_telemetry(&mut self, telemetry: &rlnoc_telemetry::Telemetry) {
        if let Bank::Rl { agents, .. } = &mut self.bank {
            for a in agents {
                a.set_telemetry(telemetry);
            }
        }
    }

    /// Captures the current RL policy (every router's Q-table) as a
    /// [`PolicySnapshot`]; `None` for non-RL banks.
    pub fn policy_snapshot(&self) -> Option<PolicySnapshot> {
        match &self.bank {
            Bank::Rl { agents, space, .. } => Some(
                PolicySnapshot::new(agents.iter().map(|a| a.q_table().clone()).collect())
                    .with_fault_bins(space.fault_bins()),
            ),
            _ => None,
        }
    }

    /// Installs a previously captured policy into this RL bank, replacing
    /// every agent's Q-table and clearing pending TD credit. Learning and
    /// exploration schedules are left as-is; call [`freeze`](Self::freeze)
    /// afterwards for pure inference.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyLoadError`] when this is not the RL bank or the
    /// snapshot's shape does not match.
    pub fn load_policy(&mut self, snapshot: PolicySnapshot) -> Result<(), PolicyLoadError> {
        let Bank::Rl { agents, space, .. } = &mut self.bank else {
            return Err(PolicyLoadError::NotRlBank);
        };
        if snapshot.num_agents() != agents.len() {
            return Err(PolicyLoadError::AgentCountMismatch {
                expected: agents.len(),
                actual: snapshot.num_agents(),
            });
        }
        if snapshot.num_states() != space.num_states() {
            return Err(PolicyLoadError::StateSpaceMismatch {
                expected: space.num_states(),
                actual: snapshot.num_states(),
            });
        }
        if snapshot.fault_bins() != space.fault_bins() {
            return Err(PolicyLoadError::FaultBinsMismatch {
                expected: space.fault_bins(),
                actual: snapshot.fault_bins(),
            });
        }
        for (agent, table) in agents.iter_mut().zip(snapshot.into_tables()) {
            agent
                .import_table(table)
                .expect("shape verified against the bank above");
        }
        Ok(())
    }

    /// Freezes every RL agent for pure inference: learning off, ε = 0
    /// (greedy). No-op for non-RL banks.
    pub fn freeze(&mut self) {
        if let Bank::Rl { agents, .. } = &mut self.bank {
            for a in agents {
                a.freeze();
            }
        }
    }

    /// Per-epoch learning signals for `router`: the exploration rate its
    /// next draw will use and the magnitude of its last TD update.
    /// `(0.0, 0.0)` for non-RL banks, whose policies neither explore nor
    /// update.
    pub fn learning_signals(&self, router: usize) -> (f64, f64) {
        match &self.bank {
            Bank::Rl { agents, .. } => (
                agents[router].current_epsilon(),
                agents[router].last_td_delta(),
            ),
            _ => (0.0, 0.0),
        }
    }
}

impl std::fmt::Debug for ControllerBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.bank {
            Bank::Static(m) => format!("static({m})"),
            Bank::Rl { agents, .. } => format!("rl({} agents)", agents.len()),
            Bank::Dt { tree, .. } => format!("dt(trained: {})", tree.is_some()),
        };
        f.debug_struct("ControllerBank")
            .field("kind", &kind)
            .field("decisions", &self.decisions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(temp: f64, util: f64) -> RouterFeatures {
        RouterFeatures {
            buffer_occupancy: 2.0,
            input_utilization: util,
            output_utilization: util,
            input_nack_rate: 0.0,
            output_nack_rate: 0.0,
            temperature_c: temp,
            ..Default::default()
        }
    }

    #[test]
    fn static_bank_is_constant() {
        let mut bank = ControllerBank::statically(OperationMode::Mode1);
        for i in 0..10 {
            assert_eq!(
                bank.decide(i % 4, &features(60.0 + i as f64, 0.1), 1.0),
                OperationMode::Mode1
            );
        }
        assert_eq!(bank.decisions(), 10);
        assert!(!bank.is_rl() && !bank.is_dt());
    }

    #[test]
    fn rl_bank_starts_in_mode0_and_explores() {
        let mut bank = ControllerBank::rl(4, 7);
        assert!(bank.is_rl());
        // First decision per agent is the initial action (mode 0).
        for r in 0..4 {
            assert_eq!(
                bank.decide(r, &features(55.0, 0.05), 0.0),
                OperationMode::Mode0
            );
        }
        // Subsequent decisions are defined (any mode) and counted.
        for r in 0..4 {
            let _ = bank.decide(r, &features(90.0, 0.2), 0.5);
        }
        assert_eq!(bank.decisions(), 8);
        assert!(
            bank.rl_updates() >= 4,
            "TD updates applied after first step"
        );
    }

    #[test]
    fn rl_learns_mode_preference_under_synthetic_reward() {
        // Reward mode 3 in the hot state: the agent should converge to it.
        let mut bank = ControllerBank::rl(1, 3);
        let hot = features(95.0, 0.25);
        let mut mode = bank.decide(0, &hot, 0.0);
        for _ in 0..600 {
            let reward = if mode == OperationMode::Mode3 {
                1.0
            } else {
                -0.2
            };
            mode = bank.decide(0, &hot, reward);
        }
        // Count preference over a window (ε = 0.1 keeps some exploration).
        let mut votes = [0u32; 4];
        for _ in 0..100 {
            let m = bank.decide(
                0,
                &hot,
                if mode == OperationMode::Mode3 {
                    1.0
                } else {
                    -0.2
                },
            );
            votes[m.index()] += 1;
            mode = m;
        }
        assert!(
            votes[3] > 60,
            "mode 3 should dominate after training: {votes:?}"
        );
    }

    #[test]
    fn dt_bank_defaults_to_mode1_until_trained() {
        let mut bank = ControllerBank::dt(DtThresholds::default());
        assert!(bank.is_dt());
        assert!(!bank.dt_trained());
        assert_eq!(
            bank.decide(0, &features(99.0, 0.3), 0.0),
            OperationMode::Mode1
        );
    }

    #[test]
    fn dt_bank_learns_temperature_to_mode_mapping() {
        let mut bank = ControllerBank::dt(DtThresholds::default());
        // Synthetic oracle: error rate grows exponentially with temp.
        for i in 0..400 {
            let temp = 50.0 + (i % 51) as f64;
            let rate = 1e-3 * ((temp - 50.0) * 50f64.ln() / 50.0).exp();
            bank.record_dt_sample(DtSample {
                features: features(temp, 0.1),
                error_rate: rate,
            });
        }
        bank.train_dt();
        assert!(bank.dt_trained());
        let cold = bank.decide(0, &features(51.0, 0.1), 0.0);
        let hot = bank.decide(0, &features(100.0, 0.1), 0.0);
        assert_eq!(cold, OperationMode::Mode0, "cold router gates ECC off");
        assert!(
            hot >= OperationMode::Mode2,
            "hot router escalates, got {hot}"
        );
    }

    #[test]
    fn thresholds_partition_the_rate_axis() {
        let t = DtThresholds::default();
        assert_eq!(t.mode_for(0.0), OperationMode::Mode0);
        assert_eq!(t.mode_for(5e-3), OperationMode::Mode1);
        assert_eq!(t.mode_for(4e-2), OperationMode::Mode2);
        assert_eq!(t.mode_for(0.5), OperationMode::Mode3);
    }

    #[test]
    fn record_sample_is_noop_for_static() {
        let mut bank = ControllerBank::statically(OperationMode::Mode0);
        bank.record_dt_sample(DtSample {
            features: features(60.0, 0.1),
            error_rate: 1e-3,
        });
        // Nothing to assert beyond "does not panic" and stays static.
        assert_eq!(
            bank.decide(0, &features(60.0, 0.1), 0.0),
            OperationMode::Mode0
        );
    }

    #[test]
    #[should_panic(expected = "non-DT")]
    fn train_dt_on_rl_panics() {
        let mut bank = ControllerBank::rl(2, 0);
        bank.train_dt();
    }

    #[test]
    #[should_panic(expected = "no DT training samples")]
    fn train_dt_without_samples_panics() {
        let mut bank = ControllerBank::dt(DtThresholds::default());
        bank.train_dt();
    }

    #[test]
    fn debug_is_informative() {
        let bank = ControllerBank::rl(3, 0);
        let s = format!("{bank:?}");
        assert!(s.contains("rl(3 agents)"));
    }

    #[test]
    fn policy_snapshot_round_trips_through_a_fresh_bank() {
        // Train a 2-router bank a little, snapshot it, load into a fresh
        // bank, freeze, and check the policies coincide.
        let mut trained = ControllerBank::rl(2, 41);
        let hot = features(95.0, 0.25);
        for step in 0..400 {
            for r in 0..2 {
                let reward = if step % 4 == 3 { 1.0 } else { -0.1 };
                let _ = trained.decide(r, &hot, reward);
            }
        }
        let snap = trained.policy_snapshot().expect("rl bank snapshots");
        assert_eq!(snap.num_agents(), 2);

        let mut fresh = ControllerBank::rl(2, 999);
        fresh.load_policy(snap).expect("shapes match");
        fresh.freeze();
        trained.freeze();

        // After one priming decision each (pending credit was cleared),
        // both banks make identical greedy decisions.
        let probe = [features(95.0, 0.25), features(55.0, 0.05)];
        for f in &probe {
            for r in 0..2 {
                let _ = trained.decide(r, f, 0.0);
                let _ = fresh.decide(r, f, 0.0);
            }
        }
        for f in &probe {
            for r in 0..2 {
                assert_eq!(trained.decide(r, f, 0.0), fresh.decide(r, f, 0.0));
            }
        }
    }

    #[test]
    fn load_policy_rejects_shape_mismatches() {
        let donor = ControllerBank::rl(3, 7);
        let snap = donor.policy_snapshot().unwrap();
        let mut two = ControllerBank::rl(2, 7);
        assert_eq!(
            two.load_policy(snap.clone()),
            Err(PolicyLoadError::AgentCountMismatch {
                expected: 2,
                actual: 3
            })
        );
        let mut stat = ControllerBank::statically(OperationMode::Mode0);
        assert_eq!(stat.load_policy(snap), Err(PolicyLoadError::NotRlBank));
    }

    #[test]
    fn frozen_bank_is_deterministic() {
        let mut bank = ControllerBank::rl(1, 5);
        let hot = features(92.0, 0.2);
        for _ in 0..50 {
            let _ = bank.decide(0, &hot, 0.3);
        }
        bank.freeze();
        let _ = bank.decide(0, &hot, 0.0); // settle pending credit
        let first = bank.decide(0, &hot, 0.0);
        for _ in 0..20 {
            assert_eq!(bank.decide(0, &hot, 0.0), first);
        }
    }
}
