//! Multi-scheme, multi-workload evaluation campaigns.
//!
//! The paper's Figs. 6–10 all share one shape: run every benchmark under
//! every scheme, then normalize each metric to the CRC baseline.
//! [`Campaign`] executes that grid reproducibly and [`CampaignResult`]
//! provides the normalization and formatting used by the figure
//! regeneration binaries in `rlnoc-bench`.
//!
//! A campaign is defined as an ordered list of independent
//! [`CampaignTask`]s — `replicate × workload × scheme` cells, each
//! carrying its own SplitMix-derived seed. [`Campaign::run`] executes
//! them serially in task order; the `rlnoc-runner` crate executes the
//! same list across worker threads and merges by task index, so a
//! parallel run is byte-identical to the serial one.

use crate::benchmarks::WorkloadProfile;
use crate::experiment::{ErrorControlScheme, Experiment, ExperimentBuilder, ExperimentReport};
use noc_fault::hardfault::HardFaultSchedule;
use noc_sim::config::NocConfig;
use rlnoc_telemetry::Telemetry;
use std::sync::Arc;

/// A grid of experiments: schemes × workloads (× seed replicates).
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Schemes to compare (default: all four).
    pub schemes: Vec<ErrorControlScheme>,
    /// Workloads to run (default: the eight PARSEC profiles).
    pub workloads: Vec<WorkloadProfile>,
    /// NoC configuration shared by every run.
    pub noc: NocConfig,
    /// Master seed; each task derives its own via
    /// [`rand::seed_stream`].
    pub seed: u64,
    /// Seed replicates per (scheme, workload) cell (default 1). Every
    /// replicate re-runs the whole grid under a fresh derived seed;
    /// [`CampaignResult::report`] resolves to replicate 0.
    pub replicates: usize,
    /// Pre-training cycles for learning schemes.
    pub pretrain_cycles: u64,
    /// Warm-up cycles for all schemes.
    pub warmup_cycles: u64,
    /// Optional cap on the measured injection window.
    pub measure_cycles: Option<u64>,
    /// Drain budget per run.
    pub drain_limit: u64,
    /// Optional hard-fault schedule shared by every run in the grid
    /// (degradation sweeps give each scheme the same dying topology).
    /// `None` leaves every experiment on its zero-fault path.
    pub hard_faults: Option<Arc<HardFaultSchedule>>,
    /// Optional customization applied to every experiment builder.
    pub customize: Option<fn(ExperimentBuilder) -> ExperimentBuilder>,
    /// Telemetry handle cloned into every run (default: disabled). All
    /// runs share it, so the epoch series and run summaries accumulate
    /// campaign-wide and can be exported once at the end.
    pub telemetry: Telemetry,
}

/// One independent cell of a campaign grid.
///
/// Tasks are self-contained: `(scheme, workload, seed)` plus the shared
/// campaign configuration fully determine the run, so tasks can execute
/// in any order — or concurrently — and still reproduce the serial
/// campaign exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignTask {
    /// Position in the serial run order (and in
    /// [`CampaignResult::reports`]).
    pub index: usize,
    /// Seed replicate this task belongs to.
    pub replicate: usize,
    /// Index into [`Campaign::workloads`].
    pub workload: usize,
    /// Scheme under test.
    pub scheme: ErrorControlScheme,
    /// The derived master seed for this task's experiment.
    ///
    /// Seeds are drawn with [`rand::seed_stream`] from the campaign seed
    /// and the `(replicate, workload)` pair — deliberately *not* the raw
    /// task index: all schemes of one (replicate, workload) cell share a
    /// seed so they face the same traffic realization, variation map,
    /// and fault history, keeping the CRC-normalized comparisons paired
    /// the way the paper's figures assume.
    pub seed: u64,
}

impl Campaign {
    /// The paper's full evaluation grid with default simulation lengths.
    pub fn paper_default() -> Self {
        Self {
            schemes: ErrorControlScheme::ALL.to_vec(),
            workloads: WorkloadProfile::all(),
            noc: NocConfig::default(),
            seed: 2019,
            replicates: 1,
            pretrain_cycles: 600_000,
            warmup_cycles: 2_000,
            measure_cycles: None,
            drain_limit: 200_000,
            hard_faults: None,
            customize: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A reduced grid for fast runs (small mesh, short windows).
    pub fn quick() -> Self {
        Self {
            schemes: ErrorControlScheme::ALL.to_vec(),
            workloads: vec![WorkloadProfile::blackscholes(), WorkloadProfile::canneal()],
            noc: NocConfig::builder().mesh(4, 4).build(),
            seed: 7,
            replicates: 1,
            pretrain_cycles: 8_000,
            warmup_cycles: 1_000,
            measure_cycles: Some(6_000),
            drain_limit: 60_000,
            hard_faults: None,
            customize: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Decomposes the grid into its independent tasks, in serial run
    /// order: replicate-major, then workload, then scheme.
    pub fn tasks(&self) -> Vec<CampaignTask> {
        let replicates = self.replicates.max(1);
        let mut tasks = Vec::with_capacity(replicates * self.workloads.len() * self.schemes.len());
        for replicate in 0..replicates {
            for workload in 0..self.workloads.len() {
                let stream = (replicate * self.workloads.len() + workload) as u64;
                let seed = rand::seed_stream(self.seed, stream);
                for &scheme in &self.schemes {
                    tasks.push(CampaignTask {
                        index: tasks.len(),
                        replicate,
                        workload,
                        scheme,
                        seed,
                    });
                }
            }
        }
        tasks
    }

    /// Builds the fully configured experiment for one task.
    ///
    /// # Panics
    ///
    /// Panics if `task.workload` is out of range or the campaign
    /// configuration is invalid.
    pub fn experiment(&self, task: &CampaignTask) -> Experiment {
        let mut builder = Experiment::builder()
            .scheme(task.scheme)
            .workload(self.workloads[task.workload].clone())
            .noc(self.noc)
            .seed(task.seed)
            .pretrain_cycles(self.pretrain_cycles)
            .warmup_cycles(self.warmup_cycles)
            .drain_limit(self.drain_limit)
            .telemetry(self.telemetry.clone());
        if let Some(cap) = self.measure_cycles {
            builder = builder.measure_cycles(cap);
        }
        if let Some(hf) = &self.hard_faults {
            builder = builder.hard_faults(hf.clone());
        }
        if let Some(f) = self.customize {
            builder = f(builder);
        }
        builder
            .build()
            .expect("campaign configuration is validated")
    }

    /// Runs one task to completion.
    ///
    /// # Panics
    ///
    /// Panics as [`experiment`](Self::experiment) does.
    pub fn run_task(&self, task: &CampaignTask) -> ExperimentReport {
        self.experiment(task).run()
    }

    /// Runs every task serially, in task order.
    pub fn run(&self) -> CampaignResult {
        CampaignResult {
            reports: self.tasks().iter().map(|t| self.run_task(t)).collect(),
        }
    }

    /// A stable fingerprint of everything that shapes the task list and
    /// its results — used by checkpoint manifests to refuse resuming a
    /// checkpoint directory against a different campaign.
    ///
    /// The `customize` hook cannot be fingerprinted (it is an arbitrary
    /// function); only its presence is folded in, so swapping one hook
    /// for another between checkpoint and resume is the caller's
    /// responsibility.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical rendering of the run-relevant fields.
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut canon = String::new();
        use std::fmt::Write;
        write!(
            canon,
            "seed={};replicates={};pretrain={};warmup={};measure={:?};drain={};noc={:?};custom={};",
            self.seed,
            self.replicates.max(1),
            self.pretrain_cycles,
            self.warmup_cycles,
            self.measure_cycles,
            self.drain_limit,
            self.noc,
            self.customize.is_some(),
        )
        .expect("write to string");
        if let Some(hf) = &self.hard_faults {
            // The schedule's canonical text (CRC trailer included) pins
            // the exact fault realization; fault-free campaigns render
            // nothing here so their fingerprints are unchanged.
            write!(canon, "hardfaults={};", hf.to_text()).expect("write to string");
        }
        for s in &self.schemes {
            write!(canon, "scheme={s};").expect("write to string");
        }
        for w in &self.workloads {
            write!(canon, "workload={}/{};", w.name, w.duration_cycles).expect("write to string");
        }
        canon.bytes().fold(FNV_OFFSET, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
        })
    }
}

/// The results of a campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// All reports, workload-major, scheme-minor.
    pub reports: Vec<ExperimentReport>,
}

impl CampaignResult {
    /// Looks up the report for `(scheme, workload)`.
    pub fn report(&self, scheme: ErrorControlScheme, workload: &str) -> Option<&ExperimentReport> {
        self.reports
            .iter()
            .find(|r| r.scheme == scheme && r.workload == workload)
    }

    /// Workload names, in run order.
    pub fn workloads(&self) -> Vec<String> {
        let mut names = Vec::new();
        for r in &self.reports {
            if !names.contains(&r.workload) {
                names.push(r.workload.clone());
            }
        }
        names
    }

    /// `metric(scheme)/metric(CRC)` for one workload.
    ///
    /// Returns `None` when either report is missing or the baseline is
    /// non-positive.
    pub fn normalized_to_crc(
        &self,
        scheme: ErrorControlScheme,
        workload: &str,
        metric: impl Fn(&ExperimentReport) -> f64,
    ) -> Option<f64> {
        let base = metric(self.report(ErrorControlScheme::StaticCrc, workload)?);
        if base <= 0.0 {
            return None;
        }
        Some(metric(self.report(scheme, workload)?) / base)
    }

    /// Geometric mean of the CRC-normalized metric across workloads.
    pub fn geomean_normalized(
        &self,
        scheme: ErrorControlScheme,
        metric: impl Fn(&ExperimentReport) -> f64 + Copy,
    ) -> f64 {
        let values: Vec<f64> = self
            .workloads()
            .iter()
            .filter_map(|w| self.normalized_to_crc(scheme, w, metric))
            .filter(|v| *v > 0.0)
            .collect();
        if values.is_empty() {
            return 0.0;
        }
        (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
    }

    /// Renders a figure-style table: one row per workload (plus a
    /// geometric-mean row), one column per scheme, each cell the
    /// CRC-normalized metric.
    pub fn figure_table(
        &self,
        title: &str,
        metric: impl Fn(&ExperimentReport) -> f64 + Copy,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let schemes = ErrorControlScheme::ALL;
        writeln!(out, "# {title}").expect("write to string");
        write!(out, "{:<16}", "benchmark").expect("write");
        for s in schemes {
            write!(out, "{:>10}", s.to_string()).expect("write");
        }
        out.push('\n');
        for w in self.workloads() {
            write!(out, "{w:<16}").expect("write");
            for s in schemes {
                match self.normalized_to_crc(s, &w, metric) {
                    Some(v) => write!(out, "{v:>10.3}").expect("write"),
                    None => write!(out, "{:>10}", "-").expect("write"),
                }
            }
            out.push('\n');
        }
        write!(out, "{:<16}", "geomean").expect("write");
        for s in schemes {
            write!(out, "{:>10.3}", self.geomean_normalized(s, metric)).expect("write");
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> CampaignResult {
        let mut c = Campaign::quick();
        c.workloads = vec![WorkloadProfile::blackscholes()];
        c.pretrain_cycles = 4_000;
        c.measure_cycles = Some(4_000);
        c.run()
    }

    #[test]
    fn campaign_runs_full_grid() {
        let result = tiny_campaign();
        assert_eq!(result.reports.len(), 4);
        for s in ErrorControlScheme::ALL {
            let r = result.report(s, "blackscholes").expect("report exists");
            assert!(r.packets_injected > 0);
            assert_eq!(r.packets_delivered, r.packets_injected);
        }
    }

    #[test]
    fn crc_normalization_is_identity_for_crc() {
        let result = tiny_campaign();
        let v = result
            .normalized_to_crc(ErrorControlScheme::StaticCrc, "blackscholes", |r| {
                r.avg_latency_cycles
            })
            .expect("baseline exists");
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_single_workload_matches_point() {
        let result = tiny_campaign();
        let point = result
            .normalized_to_crc(ErrorControlScheme::StaticArqEcc, "blackscholes", |r| {
                r.avg_latency_cycles
            })
            .expect("exists");
        let geo =
            result.geomean_normalized(ErrorControlScheme::StaticArqEcc, |r| r.avg_latency_cycles);
        assert!((point - geo).abs() < 1e-12);
    }

    #[test]
    fn figure_table_formats_all_schemes() {
        let result = tiny_campaign();
        let table = result.figure_table("Fig test", |r| r.avg_latency_cycles);
        assert!(table.contains("Fig test"));
        assert!(table.contains("blackscholes"));
        assert!(table.contains("geomean"));
        for s in ["CRC", "ARQ+ECC", "DT", "RL"] {
            assert!(table.contains(s), "missing column {s}");
        }
    }

    #[test]
    fn missing_report_yields_none() {
        let result = tiny_campaign();
        assert!(result
            .normalized_to_crc(ErrorControlScheme::ProposedRl, "nonexistent", |r| {
                r.avg_latency_cycles
            })
            .is_none());
    }

    #[test]
    fn tasks_enumerate_the_grid_in_run_order() {
        let mut c = Campaign::quick();
        c.workloads = vec![
            WorkloadProfile::blackscholes(),
            WorkloadProfile::swaptions(),
        ];
        c.replicates = 2;
        let tasks = c.tasks();
        assert_eq!(tasks.len(), 2 * 2 * c.schemes.len());
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.index, i, "task index matches position");
        }
        // Replicate-major, workload-major, scheme-minor.
        assert_eq!(
            (tasks[0].replicate, tasks[0].workload),
            (0, 0),
            "first cell"
        );
        let per_rep = tasks.len() / 2;
        assert_eq!(tasks[per_rep].replicate, 1, "second replicate follows");
        assert_eq!(tasks[per_rep].workload, 0);
    }

    #[test]
    fn schemes_within_a_cell_share_a_seed_but_cells_differ() {
        let mut c = Campaign::quick();
        c.workloads = vec![
            WorkloadProfile::blackscholes(),
            WorkloadProfile::swaptions(),
        ];
        c.replicates = 2;
        let tasks = c.tasks();
        let n = c.schemes.len();
        // All schemes of one (replicate, workload) cell are paired on the
        // same seed so CRC-normalized comparisons see the same traffic,
        // variation map, and fault realization.
        for cell in tasks.chunks(n) {
            assert!(cell.iter().all(|t| t.seed == cell[0].seed));
        }
        // ... while distinct cells draw decorrelated seeds.
        let mut cell_seeds: Vec<u64> = tasks.chunks(n).map(|cell| cell[0].seed).collect();
        cell_seeds.sort_unstable();
        cell_seeds.dedup();
        assert_eq!(cell_seeds.len(), 4, "4 cells, 4 distinct seeds");
    }

    #[test]
    fn serial_run_equals_per_task_runs() {
        let mut c = Campaign::quick();
        c.workloads = vec![WorkloadProfile::blackscholes()];
        c.pretrain_cycles = 4_000;
        c.measure_cycles = Some(4_000);
        let serial = c.run();
        let per_task: Vec<ExperimentReport> = c.tasks().iter().map(|t| c.run_task(t)).collect();
        assert_eq!(serial.reports, per_task);
    }

    #[test]
    fn fingerprint_tracks_run_relevant_fields() {
        let a = Campaign::quick();
        let mut b = Campaign::quick();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same config, same print");
        b.seed += 1;
        assert_ne!(a.fingerprint(), b.fingerprint(), "seed changes it");
        let mut c = Campaign::quick();
        c.workloads.pop();
        assert_ne!(a.fingerprint(), c.fingerprint(), "workload set changes it");
        let mut d = Campaign::quick();
        d.replicates = 3;
        assert_ne!(a.fingerprint(), d.fingerprint(), "replicates change it");
        let mut e = Campaign::quick();
        e.hard_faults = Some(Arc::new(HardFaultSchedule::random(
            noc_sim::topology::Mesh::new(4, 4),
            2,
            0,
            (1, 100),
            9,
        )));
        assert_ne!(
            a.fingerprint(),
            e.fingerprint(),
            "fault schedule changes it"
        );
        let mut f = Campaign::quick();
        f.hard_faults = Some(Arc::new(HardFaultSchedule::random(
            noc_sim::topology::Mesh::new(4, 4),
            2,
            0,
            (1, 100),
            10,
        )));
        assert_ne!(
            e.fingerprint(),
            f.fingerprint(),
            "different fault realizations get different prints"
        );
    }

    #[test]
    fn campaign_threads_hard_faults_into_every_task() {
        use noc_fault::hardfault::{HardFault, HardFaultEntry};
        let mut c = Campaign::quick();
        c.workloads = vec![WorkloadProfile::blackscholes()];
        c.schemes = vec![
            ErrorControlScheme::StaticCrc,
            ErrorControlScheme::ProposedRl,
        ];
        c.pretrain_cycles = 4_000;
        c.measure_cycles = Some(4_000);
        // Cutting both links of corner node 0 at cycle 1 isolates a live
        // node long before any scheme's measurement window opens; the
        // unreachable-pairs gauge survives the measurement-phase stats
        // reset, so every report must see the degraded topology.
        c.hard_faults = Some(Arc::new(HardFaultSchedule::explicit(
            noc_sim::topology::Mesh::new(4, 4),
            vec![
                HardFaultEntry {
                    cycle: 1,
                    fault: HardFault::Link {
                        node: 0,
                        dir: noc_sim::topology::Direction::East,
                    },
                },
                HardFaultEntry {
                    cycle: 1,
                    fault: HardFault::Link {
                        node: 0,
                        dir: noc_sim::topology::Direction::South,
                    },
                },
            ],
        )));
        let result = c.run();
        for r in &result.reports {
            assert!(
                r.unreachable_pairs > 0,
                "{}/{} does not reflect the degraded topology",
                r.scheme,
                r.workload
            );
        }
    }
}
