//! Multi-scheme, multi-workload evaluation campaigns.
//!
//! The paper's Figs. 6–10 all share one shape: run every benchmark under
//! every scheme, then normalize each metric to the CRC baseline.
//! [`Campaign`] executes that grid reproducibly and [`CampaignResult`]
//! provides the normalization and formatting used by the figure
//! regeneration binaries in `rlnoc-bench`.

use crate::benchmarks::WorkloadProfile;
use crate::experiment::{ErrorControlScheme, Experiment, ExperimentBuilder, ExperimentReport};
use noc_sim::config::NocConfig;
use rlnoc_telemetry::Telemetry;

/// A grid of experiments: schemes × workloads.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Schemes to compare (default: all four).
    pub schemes: Vec<ErrorControlScheme>,
    /// Workloads to run (default: the eight PARSEC profiles).
    pub workloads: Vec<WorkloadProfile>,
    /// NoC configuration shared by every run.
    pub noc: NocConfig,
    /// Master seed; each run derives its own.
    pub seed: u64,
    /// Pre-training cycles for learning schemes.
    pub pretrain_cycles: u64,
    /// Warm-up cycles for all schemes.
    pub warmup_cycles: u64,
    /// Optional cap on the measured injection window.
    pub measure_cycles: Option<u64>,
    /// Drain budget per run.
    pub drain_limit: u64,
    /// Optional customization applied to every experiment builder.
    pub customize: Option<fn(ExperimentBuilder) -> ExperimentBuilder>,
    /// Telemetry handle cloned into every run (default: disabled). All
    /// runs share it, so the epoch series and run summaries accumulate
    /// campaign-wide and can be exported once at the end.
    pub telemetry: Telemetry,
}

impl Campaign {
    /// The paper's full evaluation grid with default simulation lengths.
    pub fn paper_default() -> Self {
        Self {
            schemes: ErrorControlScheme::ALL.to_vec(),
            workloads: WorkloadProfile::all(),
            noc: NocConfig::default(),
            seed: 2019,
            pretrain_cycles: 600_000,
            warmup_cycles: 2_000,
            measure_cycles: None,
            drain_limit: 200_000,
            customize: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A reduced grid for fast runs (small mesh, short windows).
    pub fn quick() -> Self {
        Self {
            schemes: ErrorControlScheme::ALL.to_vec(),
            workloads: vec![WorkloadProfile::blackscholes(), WorkloadProfile::canneal()],
            noc: NocConfig::builder().mesh(4, 4).build(),
            seed: 7,
            pretrain_cycles: 8_000,
            warmup_cycles: 1_000,
            measure_cycles: Some(6_000),
            drain_limit: 60_000,
            customize: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Runs every (scheme, workload) pair.
    pub fn run(&self) -> CampaignResult {
        let mut reports = Vec::with_capacity(self.schemes.len() * self.workloads.len());
        for workload in &self.workloads {
            for &scheme in &self.schemes {
                let mut builder = Experiment::builder()
                    .scheme(scheme)
                    .workload(workload.clone())
                    .noc(self.noc)
                    .seed(self.seed)
                    .pretrain_cycles(self.pretrain_cycles)
                    .warmup_cycles(self.warmup_cycles)
                    .drain_limit(self.drain_limit)
                    .telemetry(self.telemetry.clone());
                if let Some(cap) = self.measure_cycles {
                    builder = builder.measure_cycles(cap);
                }
                if let Some(f) = self.customize {
                    builder = f(builder);
                }
                reports.push(
                    builder
                        .build()
                        .expect("campaign configuration is validated")
                        .run(),
                );
            }
        }
        CampaignResult { reports }
    }
}

/// The results of a campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// All reports, workload-major, scheme-minor.
    pub reports: Vec<ExperimentReport>,
}

impl CampaignResult {
    /// Looks up the report for `(scheme, workload)`.
    pub fn report(&self, scheme: ErrorControlScheme, workload: &str) -> Option<&ExperimentReport> {
        self.reports
            .iter()
            .find(|r| r.scheme == scheme && r.workload == workload)
    }

    /// Workload names, in run order.
    pub fn workloads(&self) -> Vec<String> {
        let mut names = Vec::new();
        for r in &self.reports {
            if !names.contains(&r.workload) {
                names.push(r.workload.clone());
            }
        }
        names
    }

    /// `metric(scheme)/metric(CRC)` for one workload.
    ///
    /// Returns `None` when either report is missing or the baseline is
    /// non-positive.
    pub fn normalized_to_crc(
        &self,
        scheme: ErrorControlScheme,
        workload: &str,
        metric: impl Fn(&ExperimentReport) -> f64,
    ) -> Option<f64> {
        let base = metric(self.report(ErrorControlScheme::StaticCrc, workload)?);
        if base <= 0.0 {
            return None;
        }
        Some(metric(self.report(scheme, workload)?) / base)
    }

    /// Geometric mean of the CRC-normalized metric across workloads.
    pub fn geomean_normalized(
        &self,
        scheme: ErrorControlScheme,
        metric: impl Fn(&ExperimentReport) -> f64 + Copy,
    ) -> f64 {
        let values: Vec<f64> = self
            .workloads()
            .iter()
            .filter_map(|w| self.normalized_to_crc(scheme, w, metric))
            .filter(|v| *v > 0.0)
            .collect();
        if values.is_empty() {
            return 0.0;
        }
        (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
    }

    /// Renders a figure-style table: one row per workload (plus a
    /// geometric-mean row), one column per scheme, each cell the
    /// CRC-normalized metric.
    pub fn figure_table(
        &self,
        title: &str,
        metric: impl Fn(&ExperimentReport) -> f64 + Copy,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let schemes = ErrorControlScheme::ALL;
        writeln!(out, "# {title}").expect("write to string");
        write!(out, "{:<16}", "benchmark").expect("write");
        for s in schemes {
            write!(out, "{:>10}", s.to_string()).expect("write");
        }
        out.push('\n');
        for w in self.workloads() {
            write!(out, "{w:<16}").expect("write");
            for s in schemes {
                match self.normalized_to_crc(s, &w, metric) {
                    Some(v) => write!(out, "{v:>10.3}").expect("write"),
                    None => write!(out, "{:>10}", "-").expect("write"),
                }
            }
            out.push('\n');
        }
        write!(out, "{:<16}", "geomean").expect("write");
        for s in schemes {
            write!(out, "{:>10.3}", self.geomean_normalized(s, metric)).expect("write");
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> CampaignResult {
        let mut c = Campaign::quick();
        c.workloads = vec![WorkloadProfile::blackscholes()];
        c.pretrain_cycles = 4_000;
        c.measure_cycles = Some(4_000);
        c.run()
    }

    #[test]
    fn campaign_runs_full_grid() {
        let result = tiny_campaign();
        assert_eq!(result.reports.len(), 4);
        for s in ErrorControlScheme::ALL {
            let r = result.report(s, "blackscholes").expect("report exists");
            assert!(r.packets_injected > 0);
            assert_eq!(r.packets_delivered, r.packets_injected);
        }
    }

    #[test]
    fn crc_normalization_is_identity_for_crc() {
        let result = tiny_campaign();
        let v = result
            .normalized_to_crc(ErrorControlScheme::StaticCrc, "blackscholes", |r| {
                r.avg_latency_cycles
            })
            .expect("baseline exists");
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_single_workload_matches_point() {
        let result = tiny_campaign();
        let point = result
            .normalized_to_crc(ErrorControlScheme::StaticArqEcc, "blackscholes", |r| {
                r.avg_latency_cycles
            })
            .expect("exists");
        let geo =
            result.geomean_normalized(ErrorControlScheme::StaticArqEcc, |r| r.avg_latency_cycles);
        assert!((point - geo).abs() < 1e-12);
    }

    #[test]
    fn figure_table_formats_all_schemes() {
        let result = tiny_campaign();
        let table = result.figure_table("Fig test", |r| r.avg_latency_cycles);
        assert!(table.contains("Fig test"));
        assert!(table.contains("blackscholes"));
        assert!(table.contains("geomean"));
        for s in ["CRC", "ARQ+ECC", "DT", "RL"] {
            assert!(table.contains(s), "missing column {s}");
        }
    }

    #[test]
    fn missing_report_yields_none() {
        let result = tiny_campaign();
        assert!(result
            .normalized_to_crc(ErrorControlScheme::ProposedRl, "nonexistent", |r| {
                r.avg_latency_cycles
            })
            .is_none());
    }
}
