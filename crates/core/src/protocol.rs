//! The dynamic fault-tolerant link protocol.
//!
//! [`FaultTolerantProtocol`] implements the simulator's
//! [`ErrorControl`] extension point with the paper's full machinery:
//!
//! * **Fault injection** — every hop draws a timing-error event from the
//!   VARIUS-style model, parameterized by the *upstream* router's
//!   temperature, link utilization, and process-variation factor, and by
//!   whether its current operation mode relaxes timing (mode 3).
//! * **Link SECDED** — when the upstream router's mode enables ECC, the
//!   128-bit payload is genuinely encoded into two Hamming(72,64)
//!   codewords, the sampled bit flips are applied to codeword bits, and
//!   the decode outcome drives delivery/correction/rejection. Three or
//!   more flips can mis-correct, producing honest silent corruption.
//! * **Raw links** — with ECC disabled (mode 0), flips land directly on
//!   payload bits and ride to the destination.
//! * **End-to-end CRC** — ejection verifies every flit's CRC-32; a
//!   failure requests a full-packet source retransmission.

use crate::modes::OperationMode;
use noc_coding::crc::Crc32;
use noc_coding::hamming::{DecodeOutcome, Secded64};
use noc_fault::injector::{ErrorThreshold, FaultInjector};
use noc_fault::timing::TimingErrorModel;
use noc_fault::variation::VariationMap;
use noc_sim::error_control::{EjectOutcome, ErrorControl, HopOutcome, TransferKind};
use noc_sim::flit::Flit;
use noc_sim::stats::EventCounters;
use noc_sim::topology::{LinkId, Topo};

/// The paper's fault-tolerant protocol with per-router operation modes.
///
/// # Example
///
/// ```
/// use noc_fault::timing::TimingErrorModel;
/// use noc_fault::variation::VariationMap;
/// use noc_sim::topology::Mesh;
/// use rlnoc_core::modes::OperationMode;
/// use rlnoc_core::protocol::FaultTolerantProtocol;
///
/// let mesh = Mesh::new(8, 8);
/// let mut protocol = FaultTolerantProtocol::new(
///     mesh,
///     TimingErrorModel::default(),
///     VariationMap::uniform(8, 8),
///     42,
/// );
/// protocol.set_all_modes(OperationMode::Mode1);
/// assert!(protocol.modes().iter().all(|&m| m == OperationMode::Mode1));
/// ```
#[derive(Debug, Clone)]
pub struct FaultTolerantProtocol {
    mesh: Topo,
    modes: Vec<OperationMode>,
    timing: TimingErrorModel,
    variation: VariationMap,
    injector: FaultInjector,
    temperatures: Vec<f64>,
    utilizations: Vec<f64>,
    crc: Crc32,
    hop_transfers: u64,
    // Per-epoch caches: temperature, utilization, variation, and mode
    // change at most once per control epoch, so the VARIUS `exp()` is
    // evaluated on the epoch boundary and every per-flit hop does a
    // table load. Invalidated only by `set_temperatures`,
    // `set_utilizations`, `set_mode`, and `set_all_modes`.
    /// Cached [`link_error_probability`](Self::link_error_probability).
    link_p: Vec<f64>,
    /// Cached [`raw_error_probability`](Self::raw_error_probability).
    raw_p: Vec<f64>,
    /// `link_p` precompiled into integer Bernoulli thresholds.
    thresholds: Vec<ErrorThreshold>,
}

impl FaultTolerantProtocol {
    /// Creates the protocol with every router in mode 0 (the paper's
    /// initialization), 50 °C everywhere, and idle links.
    pub fn new(
        mesh: impl Into<Topo>,
        timing: TimingErrorModel,
        variation: VariationMap,
        seed: u64,
    ) -> Self {
        let mesh = mesh.into();
        let n = mesh.num_nodes();
        assert_eq!(
            variation.factors().len(),
            n,
            "variation map does not match mesh"
        );
        let mut protocol = Self {
            mesh,
            modes: vec![OperationMode::Mode0; n],
            timing,
            variation,
            injector: FaultInjector::new(seed),
            temperatures: vec![50.0; n],
            utilizations: vec![0.0; n],
            crc: Crc32::new(),
            hop_transfers: 0,
            link_p: vec![0.0; n],
            raw_p: vec![0.0; n],
            thresholds: vec![ErrorThreshold::default(); n],
        };
        protocol.refresh_all();
        protocol
    }

    /// A protocol whose fault model never errs — for calibration and
    /// simulator testing.
    pub fn fault_free(mesh: impl Into<Topo>, seed: u64) -> Self {
        let mesh = mesh.into();
        let timing = TimingErrorModel::new(noc_fault::timing::TimingErrorParams {
            p_ref: 0.0,
            ..Default::default()
        });
        let (w, h) = (mesh.width(), mesh.height());
        Self::new(mesh, timing, VariationMap::uniform(w, h), seed)
    }

    /// The topology this protocol serves.
    pub fn mesh(&self) -> Topo {
        self.mesh
    }

    /// Per-router operation modes.
    pub fn modes(&self) -> &[OperationMode] {
        &self.modes
    }

    /// Recomputes the cached probabilities/threshold for one router.
    ///
    /// This is the *only* place the VARIUS model is evaluated, so the
    /// cached values are bitwise-identical to a fresh
    /// `flit_error_probability` call with the current inputs.
    fn refresh_node(&mut self, node: usize) {
        let link = self.timing.flit_error_probability(
            self.temperatures[node],
            self.utilizations[node],
            self.variation.factor(node),
            self.modes[node].relaxed_timing(),
        );
        self.link_p[node] = link;
        self.raw_p[node] = self.timing.flit_error_probability(
            self.temperatures[node],
            self.utilizations[node],
            self.variation.factor(node),
            false,
        );
        self.thresholds[node] = ErrorThreshold::from_probability(link);
    }

    fn refresh_all(&mut self) {
        for node in 0..self.modes.len() {
            self.refresh_node(node);
        }
    }

    /// Sets router `node`'s operation mode (effective for flits that
    /// start a hop after this call).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_mode(&mut self, node: usize, mode: OperationMode) {
        self.modes[node] = mode;
        self.refresh_node(node);
    }

    /// Sets every router to `mode` (the static CRC / ARQ+ECC baselines).
    pub fn set_all_modes(&mut self, mode: OperationMode) {
        self.modes.fill(mode);
        self.refresh_all();
    }

    /// Updates per-router temperatures (°C) from the thermal model.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_temperatures(&mut self, temps: &[f64]) {
        assert_eq!(temps.len(), self.temperatures.len(), "length mismatch");
        self.temperatures.copy_from_slice(temps);
        self.refresh_all();
    }

    /// Updates per-router mean output-link utilizations (flits/cycle).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_utilizations(&mut self, utils: &[f64]) {
        assert_eq!(utils.len(), self.utilizations.len(), "length mismatch");
        self.utilizations.copy_from_slice(utils);
        self.refresh_all();
    }

    /// The current per-flit error probability on router `node`'s output
    /// links (what a VARIUS oracle would report) — also the supervised
    /// label used to train the decision-tree baseline. Served from the
    /// per-epoch cache (refreshed by the temperature / utilization /
    /// mode setters).
    pub fn link_error_probability(&self, node: usize) -> f64 {
        self.link_p[node]
    }

    /// Like [`link_error_probability`](Self::link_error_probability) but
    /// ignoring the mode's timing relaxation — the *raw* error level the
    /// controller must react to. Served from the per-epoch cache.
    pub fn raw_error_probability(&self, node: usize) -> f64 {
        self.raw_p[node]
    }

    /// All cached link error probabilities, indexed by router.
    pub fn link_error_probabilities(&self) -> &[f64] {
        &self.link_p
    }

    /// All cached raw error probabilities, indexed by router — the
    /// oracle-rate table the decision-tree label path reads per epoch.
    pub fn raw_error_probabilities(&self) -> &[f64] {
        &self.raw_p
    }

    /// Total hop transfers processed (diagnostics).
    pub fn hop_transfers(&self) -> u64 {
        self.hop_transfers
    }

    /// Total fault events injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injector.faults_injected()
    }
}

impl ErrorControl for FaultTolerantProtocol {
    fn hop_transfer(
        &mut self,
        link: LinkId,
        flit: &mut Flit,
        _cycle: u64,
        _kind: TransferKind,
        protected: bool,
        counters: &mut EventCounters,
    ) -> HopOutcome {
        self.hop_transfers += 1;
        let src = link.src.index();
        let flips = self
            .injector
            .sample_flips_at(&self.timing, self.thresholds[src]);

        // `protected` is the send-time ECC state — a flit launched before
        // a mode switch keeps the protection it was encoded with.
        if !protected {
            // Raw link: corruption rides through to the destination CRC.
            if flips > 0 {
                let (bits, n) = self.injector.pick_bits_fixed(flips, 128);
                flit.flip_payload_bits(&bits[..n]);
            }
            return HopOutcome::Delivered;
        }

        counters.ecc_encodes += 1;
        counters.ecc_decodes += 1;
        if flips == 0 {
            return HopOutcome::Delivered;
        }
        // Two Hamming(72,64) codewords protect the 128-bit payload; the
        // sampled flips land on codeword bits (data or check bits alike).
        let mut words = [
            Secded64::encode(flit.payload[0]),
            Secded64::encode(flit.payload[1]),
        ];
        let (bits, n) = self
            .injector
            .pick_bits_fixed(flips, 2 * Secded64::CODE_BITS);
        for &bit in &bits[..n] {
            let (w, b) = (
                (bit / Secded64::CODE_BITS) as usize,
                bit % Secded64::CODE_BITS,
            );
            words[w] = words[w].with_bit_flipped(b);
        }
        let mut corrected = false;
        let mut decoded = [0u64; 2];
        for (i, cw) in words.iter().enumerate() {
            match cw.decode() {
                DecodeOutcome::Clean { data } => decoded[i] = data,
                DecodeOutcome::Corrected { data, .. } => {
                    decoded[i] = data;
                    corrected = true;
                }
                DecodeOutcome::DoubleError => return HopOutcome::Reject,
            }
        }
        // Note: ≥3 flips in one codeword can mis-correct — `decoded` then
        // differs from the original payload and the corruption is carried
        // forward honestly (the destination CRC is the next line of
        // defense).
        flit.payload = decoded;
        if corrected {
            HopOutcome::DeliveredCorrected
        } else {
            HopOutcome::Delivered
        }
    }

    fn tx_delay(&self, link: LinkId) -> u32 {
        self.modes[link.src.index()].tx_delay()
    }

    fn pipeline_latency(&self, link: LinkId) -> u32 {
        self.modes[link.src.index()].pipeline_latency()
    }

    fn pre_retransmit(&self, link: LinkId) -> bool {
        self.modes[link.src.index()].pre_retransmit()
    }

    fn hop_arq(&self, link: LinkId) -> bool {
        self.modes[link.src.index()].ecc_enabled()
    }

    fn eject_check(
        &mut self,
        flits: &[Flit],
        _cycle: u64,
        _counters: &mut EventCounters,
    ) -> EjectOutcome {
        if flits.iter().all(|f| f.crc_ok(&self.crc)) {
            EjectOutcome::Accept
        } else {
            EjectOutcome::RequestRetransmit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::flit::{Packet, PacketClass, PacketId};
    use noc_sim::topology::{Direction, Mesh, NodeId};

    fn test_flit(seed: u64) -> Flit {
        Packet {
            id: PacketId(seed),
            src: NodeId(0),
            dst: NodeId(63),
            num_flits: 1,
            class: PacketClass::Data,
            injected_at: 0,
            payload_seed: seed,
        }
        .make_flit(0, 0, &Crc32::new())
    }

    fn hot_protocol(seed: u64) -> FaultTolerantProtocol {
        let mesh = Mesh::new(8, 8);
        let mut p = FaultTolerantProtocol::new(
            mesh,
            TimingErrorModel::default(),
            VariationMap::uniform(8, 8),
            seed,
        );
        // Very hot: high error probability for statistical tests.
        p.set_temperatures(&[100.0; 64]);
        p.set_utilizations(&[0.3; 64]);
        p
    }

    fn link() -> LinkId {
        LinkId {
            src: NodeId(0),
            dir: Direction::East,
        }
    }

    #[test]
    fn fault_free_protocol_never_corrupts() {
        let mut p = FaultTolerantProtocol::fault_free(Mesh::new(4, 4), 1);
        let mut counters = EventCounters::default();
        for i in 0..500u64 {
            let mut f = test_flit(i);
            let before = f;
            let out = p.hop_transfer(
                link(),
                &mut f,
                0,
                TransferKind::Original,
                true,
                &mut counters,
            );
            assert_eq!(out, HopOutcome::Delivered);
            assert_eq!(f, before);
        }
        assert_eq!(p.faults_injected(), 0);
    }

    #[test]
    fn mode0_corrupts_payload_on_error() {
        let mut p = hot_protocol(3);
        let mut counters = EventCounters::default();
        let mut corrupted = 0;
        for i in 0..2000u64 {
            let mut f = test_flit(i);
            let before = f;
            let out = p.hop_transfer(
                link(),
                &mut f,
                0,
                TransferKind::Original,
                false,
                &mut counters,
            );
            assert_eq!(out, HopOutcome::Delivered, "unprotected links never reject");
            if f.payload != before.payload {
                corrupted += 1;
                assert!(!f.crc_ok(&Crc32::new()), "CRC must catch the corruption");
            }
        }
        assert!(
            corrupted > 10,
            "expected corruption at 100 °C, got {corrupted}"
        );
        assert_eq!(counters.ecc_encodes, 0, "no ECC work in mode 0");
    }

    #[test]
    fn mode1_corrects_singles_and_rejects_doubles() {
        let mut p = hot_protocol(4);
        p.set_all_modes(OperationMode::Mode1);
        let mut counters = EventCounters::default();
        let (mut corrected, mut rejected, mut clean, mut miscorrected) = (0u64, 0u64, 0u64, 0u64);
        for i in 0..5000u64 {
            let mut f = test_flit(i);
            let before = f;
            match p.hop_transfer(
                link(),
                &mut f,
                0,
                TransferKind::Original,
                true,
                &mut counters,
            ) {
                HopOutcome::Delivered => {
                    clean += 1;
                }
                HopOutcome::DeliveredCorrected => {
                    corrected += 1;
                    // ≥3 flips in one codeword can mis-correct; the
                    // destination CRC is the backstop. Single flips (the
                    // common case) must restore the payload exactly.
                    if f.payload != before.payload {
                        miscorrected += 1;
                        assert!(!f.crc_ok(&Crc32::new()), "CRC must catch miscorrection");
                    }
                }
                HopOutcome::Reject => rejected += 1,
            }
        }
        assert!(clean > 0 && corrected > 0 && rejected > 0);
        assert!(
            miscorrected * 10 < corrected,
            "miscorrections ({miscorrected}) must be rare vs corrections ({corrected})"
        );
        // Single-bit flips dominate the flip distribution (85/12/3).
        assert!(
            corrected > rejected,
            "corrected {corrected} vs rejected {rejected}"
        );
        assert_eq!(counters.ecc_encodes, 5000);
        assert_eq!(counters.ecc_decodes, 5000);
    }

    #[test]
    fn mode3_suppresses_errors() {
        let mut p = hot_protocol(5);
        p.set_all_modes(OperationMode::Mode3);
        let mut counters = EventCounters::default();
        for i in 0..3000u64 {
            let mut f = test_flit(i);
            let out = p.hop_transfer(
                link(),
                &mut f,
                0,
                TransferKind::Original,
                true,
                &mut counters,
            );
            assert_ne!(out, HopOutcome::Reject, "relaxed timing ≈ no errors");
        }
        assert_eq!(p.faults_injected(), 0);
    }

    #[test]
    fn mode_flags_map_to_link_behaviour() {
        let mut p = hot_protocol(6);
        let l = link();
        p.set_mode(0, OperationMode::Mode0);
        assert!(!p.hop_arq(l) && !p.pre_retransmit(l) && p.tx_delay(l) == 0);
        p.set_mode(0, OperationMode::Mode1);
        assert!(p.hop_arq(l) && !p.pre_retransmit(l));
        p.set_mode(0, OperationMode::Mode2);
        assert!(p.hop_arq(l) && p.pre_retransmit(l));
        p.set_mode(0, OperationMode::Mode3);
        assert!(p.hop_arq(l) && p.tx_delay(l) == 2);
    }

    #[test]
    fn error_probability_tracks_temperature() {
        let mut p = hot_protocol(7);
        let hot = p.raw_error_probability(0);
        p.set_temperatures(&[55.0; 64]);
        let cool = p.raw_error_probability(0);
        assert!(hot > 20.0 * cool);
    }

    #[test]
    fn relaxation_lowers_effective_probability() {
        let mut p = hot_protocol(8);
        p.set_mode(0, OperationMode::Mode3);
        assert!(p.link_error_probability(0) < p.raw_error_probability(0) * 1e-3);
    }

    #[test]
    fn eject_check_accepts_clean_and_rejects_corrupt() {
        let mut p = hot_protocol(9);
        let mut counters = EventCounters::default();
        let clean = vec![test_flit(1), test_flit(2)];
        assert_eq!(
            p.eject_check(&clean, 0, &mut counters),
            EjectOutcome::Accept
        );
        let mut bad = clean.clone();
        bad[1].flip_payload_bit(7);
        assert_eq!(
            p.eject_check(&bad, 0, &mut counters),
            EjectOutcome::RequestRetransmit
        );
    }

    #[test]
    fn per_router_modes_are_independent() {
        let mut p = hot_protocol(10);
        p.set_mode(0, OperationMode::Mode3);
        p.set_mode(1, OperationMode::Mode0);
        let l0 = LinkId {
            src: NodeId(0),
            dir: Direction::East,
        };
        let l1 = LinkId {
            src: NodeId(1),
            dir: Direction::East,
        };
        assert_eq!(p.tx_delay(l0), 2);
        assert_eq!(p.tx_delay(l1), 0);
        assert!(p.hop_arq(l0));
        assert!(!p.hop_arq(l1));
    }
}
