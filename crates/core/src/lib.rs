//! The paper's contribution: a proactive, RL-driven fault-tolerant NoC.
//!
//! This crate assembles the workspace substrates into the system of
//! *"High-performance, Energy-efficient, Fault-tolerant Network-on-Chip
//! Design Using Reinforcement Learning"* (DATE 2019):
//!
//! * [`modes`] — the four fault-tolerant operation modes (§III).
//! * [`protocol`] — the dynamic link protocol implementing them on the
//!   simulator's [`ErrorControl`](noc_sim::error_control::ErrorControl)
//!   extension point, with real SECDED/CRC coding and VARIUS-style fault
//!   injection.
//! * [`controller`] — per-router controllers: static baselines, the
//!   decision-tree baseline, and the proposed per-router Q-learning bank
//!   (§IV).
//! * [`benchmarks`] — PARSEC-like workload profiles (§V).
//! * [`experiment`] — the closed-loop evaluation driver (traffic → power
//!   → temperature → errors → retransmissions).
//! * [`campaign`] — scheme × workload grids with CRC-normalized metrics,
//!   the shape of every figure in §VI.
//!
//! # Example
//!
//! ```
//! use rlnoc_core::benchmarks::WorkloadProfile;
//! use rlnoc_core::experiment::{ErrorControlScheme, Experiment};
//! use noc_sim::config::NocConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Experiment::builder()
//!     .scheme(ErrorControlScheme::ProposedRl)
//!     .workload(WorkloadProfile::swaptions())
//!     .noc(NocConfig::builder().mesh(4, 4).build())
//!     .pretrain_cycles(4_000)
//!     .warmup_cycles(500)
//!     .measure_cycles(3_000)
//!     .seed(1)
//!     .build()?
//!     .run();
//! assert!(report.packets_delivered > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod benchmarks;
pub mod campaign;
pub mod controller;
pub mod experiment;
pub mod fuzzcase;
pub mod modes;
pub mod protocol;
pub mod spec;

pub use backend::SimBackend;
pub use benchmarks::WorkloadProfile;
pub use campaign::{Campaign, CampaignResult, CampaignTask};
pub use controller::{ControllerBank, DtSample, DtThresholds, PolicyLoadError};
pub use experiment::{ErrorControlScheme, Experiment, ExperimentReport};
pub use fuzzcase::{FieldDiff, FuzzCase};
pub use modes::OperationMode;
pub use protocol::FaultTolerantProtocol;
pub use spec::{CampaignSpec, SpecError};
