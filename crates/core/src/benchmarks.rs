//! PARSEC-like workload profiles.
//!
//! The paper replays packet traces captured from PARSEC applications on a
//! 64-core CMP. Those traces are not redistributable, so each benchmark
//! is modeled as a *phase-structured synthetic profile* — a repeating
//! schedule of (duration, injection-rate, spatial-pattern) phases whose
//! aggregate intensity, burstiness, and locality match the published
//! qualitative characterization of the application (see DESIGN.md's
//! substitution table). The profiles drive the simulator through the
//! standard [`TrafficSource`] interface.

use noc_sim::topology::{NodeId, Topo};
use noc_sim::traffic::{TrafficPattern, TrafficSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One phase of a workload: `cycles` of Bernoulli injection at
/// `injection_rate` packets/node/cycle with the given spatial pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Phase length in cycles.
    pub cycles: u64,
    /// Per-node packet-injection probability per cycle.
    pub injection_rate: f64,
    /// Spatial traffic pattern.
    pub pattern: TrafficPattern,
}

/// A named, finite workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (PARSEC application).
    pub name: &'static str,
    /// Phases, cycled until `duration_cycles` elapse.
    pub phases: Vec<PhaseSpec>,
    /// Total cycles over which packets are offered.
    pub duration_cycles: u64,
}

impl WorkloadProfile {
    /// Mean injection rate over one phase cycle (packets/node/cycle).
    pub fn mean_injection_rate(&self) -> f64 {
        let total: u64 = self.phases.iter().map(|p| p.cycles).sum();
        if total == 0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| p.injection_rate * p.cycles as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Whether every node this workload's traffic patterns reference
    /// exists in `mesh`. Profiles that pin a coordinator node (e.g.
    /// streamcluster's hotspot at (3,3) of the 8×8 mesh) only run on
    /// meshes that contain it.
    pub fn fits_mesh(&self, mesh: impl Into<Topo>) -> bool {
        let mesh = mesh.into();
        self.phases.iter().all(|p| match p.pattern {
            TrafficPattern::Hotspot { hotspot, .. } => hotspot.index() < mesh.num_nodes(),
            _ => true,
        })
    }

    /// All eleven PARSEC profiles, in the figures' order.
    pub fn all() -> Vec<WorkloadProfile> {
        vec![
            Self::blackscholes(),
            Self::bodytrack(),
            Self::canneal(),
            Self::dedup(),
            Self::ferret(),
            Self::fluidanimate(),
            Self::freqmine(),
            Self::streamcluster(),
            Self::swaptions(),
            Self::vips(),
            Self::x264(),
        ]
    }

    /// `blackscholes` — embarrassingly parallel option pricing: light,
    /// steady, uniform traffic.
    pub fn blackscholes() -> Self {
        Self {
            name: "blackscholes",
            phases: vec![PhaseSpec {
                cycles: 1_000,
                injection_rate: 0.006,
                pattern: TrafficPattern::UniformRandom,
            }],
            duration_cycles: 30_000,
        }
    }

    /// `bodytrack` — computer vision with barrier phases: alternating
    /// bursts and lulls.
    pub fn bodytrack() -> Self {
        Self {
            name: "bodytrack",
            phases: vec![
                PhaseSpec {
                    cycles: 600,
                    injection_rate: 0.022,
                    pattern: TrafficPattern::UniformRandom,
                },
                PhaseSpec {
                    cycles: 400,
                    injection_rate: 0.004,
                    pattern: TrafficPattern::UniformRandom,
                },
            ],
            duration_cycles: 30_000,
        }
    }

    /// `canneal` — cache-hostile simulated annealing: sustained heavy
    /// irregular traffic.
    pub fn canneal() -> Self {
        Self {
            name: "canneal",
            phases: vec![
                PhaseSpec {
                    cycles: 800,
                    injection_rate: 0.019,
                    pattern: TrafficPattern::UniformRandom,
                },
                PhaseSpec {
                    cycles: 200,
                    injection_rate: 0.014,
                    pattern: TrafficPattern::BitComplement,
                },
            ],
            duration_cycles: 30_000,
        }
    }

    /// `dedup` — pipelined compression: moderate traffic with a
    /// transpose-like pipeline pattern.
    pub fn dedup() -> Self {
        Self {
            name: "dedup",
            phases: vec![
                PhaseSpec {
                    cycles: 700,
                    injection_rate: 0.017,
                    pattern: TrafficPattern::Transpose,
                },
                PhaseSpec {
                    cycles: 300,
                    injection_rate: 0.012,
                    pattern: TrafficPattern::UniformRandom,
                },
            ],
            duration_cycles: 30_000,
        }
    }

    /// `ferret` — content-based similarity search: a deep pipeline with
    /// moderate-high, stage-to-stage (transpose-like) traffic.
    pub fn ferret() -> Self {
        Self {
            name: "ferret",
            phases: vec![
                PhaseSpec {
                    cycles: 600,
                    injection_rate: 0.016,
                    pattern: TrafficPattern::UniformRandom,
                },
                PhaseSpec {
                    cycles: 400,
                    injection_rate: 0.012,
                    pattern: TrafficPattern::Transpose,
                },
            ],
            duration_cycles: 30_000,
        }
    }

    /// `freqmine` — frequent-itemset mining: bursty tree traversals over
    /// a shared structure.
    pub fn freqmine() -> Self {
        Self {
            name: "freqmine",
            phases: vec![
                PhaseSpec {
                    cycles: 500,
                    injection_rate: 0.024,
                    pattern: TrafficPattern::UniformRandom,
                },
                PhaseSpec {
                    cycles: 500,
                    injection_rate: 0.008,
                    pattern: TrafficPattern::UniformRandom,
                },
            ],
            duration_cycles: 30_000,
        }
    }

    /// `vips` — image-processing pipeline: steady moderate traffic.
    pub fn vips() -> Self {
        Self {
            name: "vips",
            phases: vec![PhaseSpec {
                cycles: 1_000,
                injection_rate: 0.012,
                pattern: TrafficPattern::UniformRandom,
            }],
            duration_cycles: 30_000,
        }
    }

    /// `fluidanimate` — particle simulation with spatial decomposition:
    /// strongly neighbor-local traffic.
    pub fn fluidanimate() -> Self {
        Self {
            name: "fluidanimate",
            phases: vec![
                PhaseSpec {
                    cycles: 800,
                    injection_rate: 0.020,
                    pattern: TrafficPattern::NearestNeighbor,
                },
                PhaseSpec {
                    cycles: 200,
                    injection_rate: 0.012,
                    pattern: TrafficPattern::UniformRandom,
                },
            ],
            duration_cycles: 30_000,
        }
    }

    /// `streamcluster` — online clustering: heavy traffic concentrated on
    /// a coordinator node (hotspot).
    pub fn streamcluster() -> Self {
        Self {
            name: "streamcluster",
            phases: vec![PhaseSpec {
                cycles: 1_000,
                injection_rate: 0.018,
                pattern: TrafficPattern::Hotspot {
                    hotspot: NodeId(27), // (3,3) in the 8×8 mesh
                    // 0.018 × 64 × 0.15 × 4 ≈ 0.69 flits/cycle at the hot
                    // ejection port — heavily loaded but below saturation.
                    fraction: 0.15,
                },
            }],
            duration_cycles: 30_000,
        }
    }

    /// `swaptions` — Monte-Carlo pricing: very light uniform traffic.
    pub fn swaptions() -> Self {
        Self {
            name: "swaptions",
            phases: vec![PhaseSpec {
                cycles: 1_000,
                injection_rate: 0.004,
                pattern: TrafficPattern::UniformRandom,
            }],
            duration_cycles: 30_000,
        }
    }

    /// `x264` — video encoding: heavy bursty traffic with inter-frame
    /// dependencies (tornado-like wavefront).
    pub fn x264() -> Self {
        Self {
            name: "x264",
            phases: vec![
                PhaseSpec {
                    cycles: 500,
                    injection_rate: 0.026,
                    pattern: TrafficPattern::Tornado,
                },
                PhaseSpec {
                    cycles: 500,
                    injection_rate: 0.010,
                    pattern: TrafficPattern::UniformRandom,
                },
            ],
            duration_cycles: 30_000,
        }
    }

    /// Instantiates the replayable traffic source for `mesh`.
    pub fn source(&self, mesh: impl Into<Topo>, seed: u64) -> ProfileSource {
        ProfileSource::new(self.clone(), mesh.into(), seed)
    }
}

/// Replays a [`WorkloadProfile`] through the [`TrafficSource`] interface.
#[derive(Debug, Clone)]
pub struct ProfileSource {
    profile: WorkloadProfile,
    mesh: Topo,
    rng: SmallRng,
    start_cycle: Option<u64>,
    phase_total: u64,
}

impl ProfileSource {
    /// Creates a source; injection begins at the first `generate` call.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no phases or a zero-length phase.
    pub fn new(profile: WorkloadProfile, mesh: impl Into<Topo>, seed: u64) -> Self {
        let mesh = mesh.into();
        assert!(!profile.phases.is_empty(), "profile needs phases");
        assert!(
            profile.phases.iter().all(|p| p.cycles > 0),
            "phases must be non-empty"
        );
        let phase_total = profile.phases.iter().map(|p| p.cycles).sum();
        Self {
            profile,
            mesh,
            rng: SmallRng::seed_from_u64(seed),
            start_cycle: None,
            phase_total,
        }
    }

    /// The profile being replayed.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn phase_at(&self, offset: u64) -> &PhaseSpec {
        let mut t = offset % self.phase_total;
        for phase in &self.profile.phases {
            if t < phase.cycles {
                return phase;
            }
            t -= phase.cycles;
        }
        unreachable!("offset within phase_total")
    }
}

impl TrafficSource for ProfileSource {
    fn generate(&mut self, cycle: u64, offer: &mut dyn FnMut(NodeId, NodeId)) {
        let start = *self.start_cycle.get_or_insert(cycle);
        let offset = cycle - start;
        if offset >= self.profile.duration_cycles {
            return;
        }
        let phase = *self.phase_at(offset);
        for src in self.mesh.nodes() {
            if self.rng.gen_bool(phase.injection_rate) {
                if let Some(dst) = phase.pattern.destination(self.mesh, src, &mut self.rng) {
                    offer(src, dst);
                }
            }
        }
    }

    fn is_exhausted(&self) -> bool {
        // Exhausted once the duration has elapsed relative to the first
        // generate() call; conservatively false before any call.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::topology::Mesh;

    #[test]
    fn eleven_benchmarks_with_unique_names() {
        let all = WorkloadProfile::all();
        assert_eq!(all.len(), 11);
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn intensity_ordering_matches_characterization() {
        // swaptions/blackscholes are light; canneal/x264 are heavy.
        let light = WorkloadProfile::swaptions().mean_injection_rate();
        let heavy = WorkloadProfile::canneal().mean_injection_rate();
        assert!(heavy > 3.0 * light);
        assert!(
            WorkloadProfile::blackscholes().mean_injection_rate()
                < WorkloadProfile::x264().mean_injection_rate()
        );
    }

    #[test]
    fn rates_stay_below_mesh_saturation() {
        // 8×8 XY uniform saturates near 0.03 packets/node/cycle for
        // 4-flit packets; profiles must stay tractable on average.
        for w in WorkloadProfile::all() {
            let rate = w.mean_injection_rate();
            assert!(rate > 0.0 && rate < 0.03, "{} rate {rate}", w.name);
        }
    }

    #[test]
    fn source_offers_expected_volume() {
        let mesh = Mesh::new(8, 8);
        let w = WorkloadProfile::bodytrack();
        let mut src = w.source(mesh, 11);
        let mut offered = 0u64;
        for cycle in 0..w.duration_cycles {
            src.generate(cycle, &mut |_, _| offered += 1);
        }
        let expected = w.mean_injection_rate() * 64.0 * w.duration_cycles as f64;
        let ratio = offered as f64 / expected;
        assert!(
            (0.9..1.1).contains(&ratio),
            "offered {offered} vs ≈{expected}"
        );
    }

    #[test]
    fn source_stops_after_duration() {
        let mesh = Mesh::new(8, 8);
        let w = WorkloadProfile::blackscholes();
        let mut src = w.source(mesh, 3);
        for cycle in 0..w.duration_cycles {
            src.generate(cycle, &mut |_, _| {});
        }
        let mut late = 0;
        for cycle in w.duration_cycles..w.duration_cycles + 5_000 {
            src.generate(cycle, &mut |_, _| late += 1);
        }
        assert_eq!(late, 0, "no packets after the duration");
    }

    #[test]
    fn source_start_is_relative_to_first_call() {
        let mesh = Mesh::new(8, 8);
        let w = WorkloadProfile::canneal();
        let mut src = w.source(mesh, 5);
        // First call at cycle 1_000_000 still injects (offsets are
        // relative).
        let mut n = 0;
        for cycle in 1_000_000..1_002_000 {
            src.generate(cycle, &mut |_, _| n += 1);
        }
        assert!(n > 0);
    }

    #[test]
    fn phases_alternate() {
        let mesh = Mesh::new(8, 8);
        let w = WorkloadProfile::bodytrack();
        let mut src = w.source(mesh, 9);
        let mut burst = 0u64;
        let mut lull = 0u64;
        for cycle in 0..1_000 {
            let counter = if cycle % 1_000 < 600 {
                &mut burst
            } else {
                &mut lull
            };
            src.generate(cycle, &mut |_, _| *counter += 1);
        }
        // Burst phase rate is 5.5× the lull rate over 1.5× the cycles.
        assert!(burst > 2 * lull, "burst {burst} vs lull {lull}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mesh = Mesh::new(8, 8);
        let collect = |seed| {
            let mut src = WorkloadProfile::dedup().source(mesh, seed);
            let mut v = Vec::new();
            for cycle in 0..2_000 {
                src.generate(cycle, &mut |s, d| v.push((s, d)));
            }
            v
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    #[should_panic(expected = "needs phases")]
    fn empty_profile_panics() {
        let w = WorkloadProfile {
            name: "empty",
            phases: vec![],
            duration_cycles: 100,
        };
        let _ = w.source(Mesh::new(2, 2), 0);
    }
}
