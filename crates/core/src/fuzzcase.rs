//! Differential fuzz cases: generation, replayable serialization, and
//! report diffing.
//!
//! The `rlnoc-verify` oracle runs the optimized kernel and a reference
//! kernel on the *same* randomly drawn configuration and demands
//! bit-identical [`ExperimentReport`]s. This module owns the pieces that
//! belong to the core crate: the case description itself (everything
//! needed to rebuild the [`Experiment`]), a stable text serialization so
//! a failing case can be committed and replayed, and a field-by-field
//! report differ whose output names exactly which metric diverged.
//!
//! ## Case-file format (`rlnoc-case v1`)
//!
//! Plain text, one `key=value` per line, CRC-32 trailer over everything
//! above it (the same corruption armor as the runner's checkpoints):
//!
//! ```text
//! rlnoc-case v1
//! mesh=3x2
//! scheme=RL
//! ...
//! ```
//!
//! The `mesh=` line carries a topology-zoo encoding (`3x2`,
//! `torus:4x4`, `ftorus:3x3`, `3d:4x2x2`), so plain-mesh case files
//! keep the original byte layout:
//!
//! ```text
//! rlnoc-case v1
//! mesh=3x2
//! scheme=RL
//! workload=canneal
//! seed=00000000deadbeef
//! epoch=500
//! pretrain=2000
//! warmup=500
//! measure=4000
//! drain=50000
//! modes=1011
//! p_ref_scale=3fd0000000000000
//! ambient=4044000000000000
//! hardfaults=2 1 00000000c0ffee00
//! crc=4a17c3b2
//! ```
//!
//! Floats are serialized as f64 bit patterns in hex so a replay is
//! exact, not merely close. The `hardfaults` line is optional (absent =
//! fault-free run); it stores the *generation parameters* — link-fault
//! quota, router-fault quota, schedule seed — and the replay regenerates
//! the identical [`HardFaultSchedule`](noc_fault::hardfault::HardFaultSchedule)
//! deterministically, which keeps case files small and the format v1.

use crate::benchmarks::WorkloadProfile;
use crate::experiment::{ErrorControlScheme, Experiment, ExperimentReport};
use noc_coding::crc::Crc32;
use noc_fault::hardfault::HardFaultSchedule;
use noc_fault::thermal::ThermalParams;
use noc_fault::timing::TimingErrorParams;
use noc_sim::config::NocConfig;
use noc_sim::flit::splitmix64;
use noc_sim::topology::{FoldedTorus, Mesh, Mesh3d, Topo, Torus};

/// Everything needed to rebuild one differential experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Topology under test (projection dimensions ≥ 2).
    pub topo: Topo,
    /// Error-control scheme under test.
    pub scheme: ErrorControlScheme,
    /// PARSEC workload name (resolved via [`WorkloadProfile::all`]).
    pub workload: String,
    /// Master experiment seed.
    pub seed: u64,
    /// Control-epoch length in cycles.
    pub epoch_cycles: u64,
    /// Pre-training budget (learning schemes).
    pub pretrain_cycles: u64,
    /// Warm-up cycles.
    pub warmup_cycles: u64,
    /// Measurement injection window.
    pub measure_cycles: u64,
    /// Drain budget.
    pub drain_limit: u64,
    /// Mode-ablation schedule: which of the four operation modes the
    /// controller may select.
    pub allowed_modes: [bool; 4],
    /// Multiplier on the timing model's `p_ref` (the fault pattern:
    /// from nearly fault-free to error storms).
    pub p_ref_scale: f64,
    /// Thermal ambient, °C (shifts the whole temperature field).
    pub ambient_c: f64,
    /// Hard-fault generation parameters: `(link_faults, router_faults,
    /// schedule_seed)`, or `None` for a fault-free run. The schedule
    /// itself is regenerated deterministically via
    /// [`HardFaultSchedule::random`] over the full run window.
    pub hard_faults: Option<(u16, u16, u64)>,
}

/// A parse/validation failure for a case file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCaseError(pub String);

impl std::fmt::Display for ParseCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid case file: {}", self.0)
    }
}

impl std::error::Error for ParseCaseError {}

const MAGIC: &str = "rlnoc-case v1";

impl FuzzCase {
    /// Draws case `index` from the SplitMix64 stream rooted at
    /// `root_seed`. Every field is derived from an independent mix so
    /// adjacent indices decorrelate; the same `(root_seed, index)` pair
    /// always yields the same case.
    pub fn generate(root_seed: u64, index: u64) -> Self {
        let base = rand::seed_stream(root_seed, index);
        let mut k = 0u64;
        let mut draw = move || {
            k += 1;
            splitmix64(base.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        };
        let mesh_w = 2 + (draw() % 3) as u16; // 2..=4
        let mesh_h = 2 + (draw() % 3) as u16;
        // The whole zoo, uniformly: the oracle must exercise wrap links
        // and date-line VC classes (tori), the folded wiring, and the
        // vertical dimension (stacked meshes) as hard as plain meshes.
        let topo: Topo = match draw() % 4 {
            0 => Mesh::new(mesh_w, mesh_h).into(),
            1 => Torus::new(mesh_w, mesh_h).into(),
            2 => FoldedTorus::new(mesh_w, mesh_h).into(),
            _ => Mesh3d::new(mesh_w, mesh_h, 2).into(),
        };
        let scheme = ErrorControlScheme::ALL[(draw() % 4) as usize];
        // Only workloads whose traffic patterns fit the drawn topology
        // (streamcluster pins a hotspot node that small meshes lack).
        let workloads: Vec<WorkloadProfile> = WorkloadProfile::all()
            .into_iter()
            .filter(|w| w.fits_mesh(topo))
            .collect();
        let workload = workloads[(draw() % workloads.len() as u64) as usize]
            .name
            .to_string();
        let seed = draw();
        let epoch_cycles = [250, 500, 1_000][(draw() % 3) as usize];
        let pretrain_cycles = [0, 2_000, 4_000, 6_000][(draw() % 4) as usize];
        let warmup_cycles = [0, 500, 1_000][(draw() % 3) as usize];
        let measure_cycles = [2_000, 4_000, 6_000][(draw() % 3) as usize];
        // Mode 1 stays allowed (it is the fallback for disallowed
        // decisions); the other three toggle freely.
        let mode_bits = draw();
        let allowed_modes = [
            mode_bits & 1 != 0,
            true,
            mode_bits & 2 != 0,
            mode_bits & 4 != 0,
        ];
        let p_ref_scale = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0][(draw() % 6) as usize];
        let ambient_c = 40.0 + (draw() % 21) as f64;
        // Roughly half the stream carries permanent failures, so the
        // oracle continuously exercises both the zero-fault fast path
        // and the fault-adaptive machinery.
        let hard_faults = if draw() % 2 == 0 {
            None
        } else {
            let links = 1 + (draw() % 2) as u16;
            let routers = (draw() % 2) as u16;
            Some((links, routers, draw()))
        };
        Self {
            topo,
            scheme,
            workload,
            seed,
            epoch_cycles,
            pretrain_cycles,
            warmup_cycles,
            measure_cycles,
            drain_limit: 50_000,
            allowed_modes,
            p_ref_scale,
            ambient_c,
            hard_faults,
        }
    }

    /// Builds the runnable experiment this case describes.
    ///
    /// # Panics
    ///
    /// Panics if the case is internally inconsistent (unknown workload,
    /// invalid dimensions) — [`FuzzCase::validate`] reports the same
    /// conditions as an error.
    pub fn experiment(&self) -> Experiment {
        self.validate().expect("invalid fuzz case");
        let workload = WorkloadProfile::all()
            .into_iter()
            .find(|w| w.name == self.workload)
            .expect("validated workload");
        let allowed: Vec<crate::modes::OperationMode> = crate::modes::OperationMode::ALL
            .into_iter()
            .filter(|m| self.allowed_modes[m.index()])
            .collect();
        let timing = TimingErrorParams {
            p_ref: TimingErrorParams::default().p_ref * self.p_ref_scale,
            ..TimingErrorParams::default()
        };
        let thermal = ThermalParams {
            ambient_c: self.ambient_c,
            ..ThermalParams::default()
        };
        let mut builder = Experiment::builder()
            .scheme(self.scheme)
            .workload(workload)
            .noc(NocConfig::builder().topology(self.topo).build())
            .seed(self.seed)
            .epoch_cycles(self.epoch_cycles)
            .pretrain_cycles(self.pretrain_cycles)
            .warmup_cycles(self.warmup_cycles)
            .measure_cycles(self.measure_cycles)
            .drain_limit(self.drain_limit)
            .timing(timing)
            .thermal(thermal)
            .allowed_modes(&allowed);
        if let Some(schedule) = self.hard_fault_schedule() {
            builder = builder.hard_faults(std::sync::Arc::new(schedule));
        }
        builder.build().expect("fuzz case must build")
    }

    /// Regenerates the hard-fault schedule this case describes (`None`
    /// for fault-free cases). Events land anywhere in the run, from the
    /// first pre-training cycle to the end of the injection window, so
    /// every phase of the experiment can be hit by a failure.
    pub fn hard_fault_schedule(&self) -> Option<HardFaultSchedule> {
        let (links, routers, seed) = self.hard_faults?;
        let horizon = (self.pretrain_cycles + self.warmup_cycles + self.measure_cycles).max(1);
        Some(HardFaultSchedule::random(
            self.topo,
            usize::from(links),
            usize::from(routers),
            (1, horizon),
            seed,
        ))
    }

    /// Checks internal consistency without building the experiment.
    pub fn validate(&self) -> Result<(), ParseCaseError> {
        if self.topo.width() < 2 || self.topo.height() < 2 {
            return Err(ParseCaseError("topology dimensions must be ≥ 2".into()));
        }
        if self.epoch_cycles == 0 || self.drain_limit == 0 {
            return Err(ParseCaseError("cycle budgets must be positive".into()));
        }
        if !self.allowed_modes.iter().any(|&b| b) {
            return Err(ParseCaseError("no operation mode allowed".into()));
        }
        if !self.p_ref_scale.is_finite() || self.p_ref_scale < 0.0 {
            return Err(ParseCaseError("p_ref_scale must be finite and ≥ 0".into()));
        }
        if !self.ambient_c.is_finite() {
            return Err(ParseCaseError("ambient_c must be finite".into()));
        }
        match WorkloadProfile::all()
            .iter()
            .find(|w| w.name == self.workload)
        {
            None => {
                return Err(ParseCaseError(format!(
                    "unknown workload `{}`",
                    self.workload
                )));
            }
            Some(w) if !w.fits_mesh(self.topo) => {
                return Err(ParseCaseError(format!(
                    "workload `{}` references nodes outside a {} topology",
                    self.workload,
                    self.topo.encode()
                )));
            }
            Some(_) => {}
        }
        Ok(())
    }

    /// Reduction candidates for shrinking, ordered most-aggressive
    /// first. Each candidate is a strictly "smaller" case; the driver
    /// keeps a candidate only if it still reproduces the divergence.
    pub fn shrink_candidates(&self) -> Vec<FuzzCase> {
        let mut out = Vec::new();
        let mut push = |c: FuzzCase| {
            if c != *self && c.validate().is_ok() {
                out.push(c);
            }
        };
        if self.hard_faults.is_some() {
            push(FuzzCase {
                hard_faults: None,
                ..self.clone()
            });
        }
        if self.pretrain_cycles > 0 {
            push(FuzzCase {
                pretrain_cycles: 0,
                ..self.clone()
            });
            push(FuzzCase {
                pretrain_cycles: self.pretrain_cycles / 2,
                ..self.clone()
            });
        }
        if self.warmup_cycles > 0 {
            push(FuzzCase {
                warmup_cycles: 0,
                ..self.clone()
            });
        }
        if self.measure_cycles > 500 {
            push(FuzzCase {
                measure_cycles: self.measure_cycles / 2,
                ..self.clone()
            });
        }
        // Topology shrinks: drop the exotic wiring first (same node
        // grid, plain mesh), then shrink each base dimension while
        // keeping the topology kind.
        let (w, h) = match self.topo {
            Topo::Mesh3d(m) => (m.width(), m.height()),
            t => (t.width(), t.height()),
        };
        let rebuild = |w: u16, h: u16, topo: Topo| -> Topo {
            match topo {
                Topo::Mesh(_) => Mesh::new(w, h).into(),
                Topo::Torus(_) => Torus::new(w, h).into(),
                Topo::FoldedTorus(_) => FoldedTorus::new(w, h).into(),
                Topo::Mesh3d(m) => Mesh3d::new(w, h, m.depth()).into(),
            }
        };
        if !matches!(self.topo, Topo::Mesh(_)) {
            push(FuzzCase {
                topo: Mesh::new(w, h).into(),
                ..self.clone()
            });
        }
        if let Topo::Mesh3d(m) = self.topo {
            if m.depth() > 2 {
                push(FuzzCase {
                    topo: Mesh3d::new(w, h, m.depth() - 1).into(),
                    ..self.clone()
                });
            }
        }
        if w > 2 {
            push(FuzzCase {
                topo: rebuild(w - 1, h, self.topo),
                ..self.clone()
            });
        }
        if h > 2 {
            push(FuzzCase {
                topo: rebuild(w, h - 1, self.topo),
                ..self.clone()
            });
        }
        if self.epoch_cycles > 250 {
            push(FuzzCase {
                epoch_cycles: self.epoch_cycles / 2,
                ..self.clone()
            });
        }
        out
    }

    /// Serializes the case to the `rlnoc-case v1` text format.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(MAGIC);
        body.push('\n');
        body.push_str(&format!("mesh={}\n", self.topo.encode()));
        body.push_str(&format!("scheme={}\n", self.scheme));
        body.push_str(&format!("workload={}\n", self.workload));
        body.push_str(&format!("seed={:016x}\n", self.seed));
        body.push_str(&format!("epoch={}\n", self.epoch_cycles));
        body.push_str(&format!("pretrain={}\n", self.pretrain_cycles));
        body.push_str(&format!("warmup={}\n", self.warmup_cycles));
        body.push_str(&format!("measure={}\n", self.measure_cycles));
        body.push_str(&format!("drain={}\n", self.drain_limit));
        let modes: String = self
            .allowed_modes
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        body.push_str(&format!("modes={modes}\n"));
        body.push_str(&format!(
            "p_ref_scale={:016x}\n",
            self.p_ref_scale.to_bits()
        ));
        body.push_str(&format!("ambient={:016x}\n", self.ambient_c.to_bits()));
        if let Some((links, routers, seed)) = self.hard_faults {
            body.push_str(&format!("hardfaults={links} {routers} {seed:016x}\n"));
        }
        let crc = Crc32::new().checksum(body.as_bytes());
        body.push_str(&format!("crc={crc:08x}\n"));
        body
    }

    /// Parses and validates an `rlnoc-case v1` file, including its
    /// CRC-32 trailer.
    pub fn from_text(text: &str) -> Result<Self, ParseCaseError> {
        let trailer_at = text
            .rfind("crc=")
            .ok_or_else(|| ParseCaseError("missing crc trailer".into()))?;
        let (body, trailer) = text.split_at(trailer_at);
        let stated = trailer
            .trim()
            .strip_prefix("crc=")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| ParseCaseError("malformed crc trailer".into()))?;
        let actual = Crc32::new().checksum(body.as_bytes());
        if stated != actual {
            return Err(ParseCaseError(format!(
                "crc mismatch: file says {stated:08x}, content is {actual:08x}"
            )));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MAGIC) {
            return Err(ParseCaseError(format!("bad magic, want `{MAGIC}`")));
        }
        let mut field = |name: &str| -> Result<String, ParseCaseError> {
            let line = lines
                .next()
                .ok_or_else(|| ParseCaseError(format!("missing field `{name}`")))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix('='))
                .map(str::to_string)
                .ok_or_else(|| ParseCaseError(format!("expected `{name}=`, got `{line}`")))
        };
        let topo = Topo::parse(&field("mesh")?).map_err(ParseCaseError)?;
        let scheme = match field("scheme")?.as_str() {
            "CRC" => ErrorControlScheme::StaticCrc,
            "ARQ+ECC" => ErrorControlScheme::StaticArqEcc,
            "DT" => ErrorControlScheme::DecisionTree,
            "RL" => ErrorControlScheme::ProposedRl,
            other => return Err(ParseCaseError(format!("unknown scheme `{other}`"))),
        };
        let workload = field("workload")?;
        let parse_u64 = |s: &str, what: &str| -> Result<u64, ParseCaseError> {
            s.parse()
                .map_err(|_| ParseCaseError(format!("bad {what} `{s}`")))
        };
        let parse_hex = |s: &str, what: &str| -> Result<u64, ParseCaseError> {
            u64::from_str_radix(s, 16).map_err(|_| ParseCaseError(format!("bad {what} `{s}`")))
        };
        let seed = parse_hex(&field("seed")?, "seed")?;
        let epoch_cycles = parse_u64(&field("epoch")?, "epoch")?;
        let pretrain_cycles = parse_u64(&field("pretrain")?, "pretrain")?;
        let warmup_cycles = parse_u64(&field("warmup")?, "warmup")?;
        let measure_cycles = parse_u64(&field("measure")?, "measure")?;
        let drain_limit = parse_u64(&field("drain")?, "drain")?;
        let modes = field("modes")?;
        if modes.len() != 4 || !modes.chars().all(|c| c == '0' || c == '1') {
            return Err(ParseCaseError("modes must be four 0/1 flags".into()));
        }
        let mut allowed_modes = [false; 4];
        for (i, c) in modes.chars().enumerate() {
            allowed_modes[i] = c == '1';
        }
        let p_ref_scale = f64::from_bits(parse_hex(&field("p_ref_scale")?, "p_ref_scale")?);
        let ambient_c = f64::from_bits(parse_hex(&field("ambient")?, "ambient")?);
        // Optional final line; anything else after `ambient` is junk.
        let hard_faults = match lines.next() {
            None => None,
            Some(line) => {
                let rest = line
                    .strip_prefix("hardfaults=")
                    .ok_or_else(|| ParseCaseError(format!("unexpected trailing line `{line}`")))?;
                let mut parts = rest.split(' ');
                let links: u16 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ParseCaseError("bad hardfaults link count".into()))?;
                let routers: u16 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ParseCaseError("bad hardfaults router count".into()))?;
                let seed = parse_hex(
                    parts
                        .next()
                        .ok_or_else(|| ParseCaseError("missing hardfaults seed".into()))?,
                    "hardfaults seed",
                )?;
                if parts.next().is_some() {
                    return Err(ParseCaseError("trailing junk on hardfaults line".into()));
                }
                if lines.next().is_some() {
                    return Err(ParseCaseError("unexpected content after hardfaults".into()));
                }
                Some((links, routers, seed))
            }
        };
        let case = Self {
            topo,
            scheme,
            workload,
            seed,
            epoch_cycles,
            pretrain_cycles,
            warmup_cycles,
            measure_cycles,
            drain_limit,
            allowed_modes,
            p_ref_scale,
            ambient_c,
            hard_faults,
        };
        case.validate()?;
        Ok(case)
    }
}

impl std::fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} {} seed={:016x} epoch={} pretrain={} warmup={} measure={} p_ref×{} ambient={}°C",
            self.topo.encode(),
            self.scheme,
            self.workload,
            self.seed,
            self.epoch_cycles,
            self.pretrain_cycles,
            self.warmup_cycles,
            self.measure_cycles,
            self.p_ref_scale,
            self.ambient_c,
        )?;
        if let Some((links, routers, seed)) = self.hard_faults {
            write!(f, " hardfaults={links}L/{routers}R@{seed:016x}")?;
        }
        Ok(())
    }
}

/// One report field that differs between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDiff {
    /// Field name in [`ExperimentReport`].
    pub field: &'static str,
    /// Value from the first (usually optimized) run.
    pub a: String,
    /// Value from the second (usually reference) run.
    pub b: String,
}

impl std::fmt::Display for FieldDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} != {}", self.field, self.a, self.b)
    }
}

impl ExperimentReport {
    /// Field-by-field comparison against `other`. Floats compare by bit
    /// pattern — the optimized kernel claims *bit*-identical behavior,
    /// so even a 1-ulp drift is a divergence worth naming.
    pub fn diff(&self, other: &ExperimentReport) -> Vec<FieldDiff> {
        let mut diffs = Vec::new();
        macro_rules! cmp {
            ($field:ident) => {
                if self.$field != other.$field {
                    diffs.push(FieldDiff {
                        field: stringify!($field),
                        a: format!("{:?}", self.$field),
                        b: format!("{:?}", other.$field),
                    });
                }
            };
        }
        macro_rules! cmp_f64 {
            ($field:ident) => {
                if self.$field.to_bits() != other.$field.to_bits() {
                    diffs.push(FieldDiff {
                        field: stringify!($field),
                        a: format!("{:?} ({:016x})", self.$field, self.$field.to_bits()),
                        b: format!("{:?} ({:016x})", other.$field, other.$field.to_bits()),
                    });
                }
            };
        }
        cmp!(scheme);
        cmp!(workload);
        cmp!(seed);
        cmp_f64!(frequency_hz);
        cmp!(packets_injected);
        cmp!(packets_delivered);
        cmp!(flits_delivered);
        cmp_f64!(avg_latency_cycles);
        cmp!(p99_latency_cycles);
        cmp!(execution_cycles);
        cmp!(drained);
        cmp!(packet_retransmissions);
        cmp!(flit_retransmissions);
        cmp_f64!(retransmitted_packets_equiv);
        cmp!(hop_nacks);
        cmp!(ecc_corrections);
        cmp!(crc_failures);
        cmp!(control_packets);
        cmp!(pre_retransmit_hits);
        cmp!(silent_corruptions);
        cmp_f64!(dynamic_energy_j);
        cmp_f64!(static_energy_j);
        cmp_f64!(control_energy_j);
        cmp!(mode_histogram);
        cmp_f64!(mean_temperature_c);
        cmp_f64!(max_temperature_c);
        cmp!(hard_fault_events);
        cmp!(reroute_events);
        cmp!(packets_lost_hard_fault);
        cmp!(packets_refused_unreachable);
        cmp!(unreachable_pairs);
        diffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a = FuzzCase::generate(7, 0);
        let b = FuzzCase::generate(7, 0);
        assert_eq!(a, b);
        let different = (0..32)
            .map(|i| FuzzCase::generate(7, i))
            .collect::<Vec<_>>();
        let schemes: std::collections::HashSet<_> =
            different.iter().map(|c| format!("{}", c.scheme)).collect();
        assert!(schemes.len() > 1, "case stream must vary the scheme");
        for c in &different {
            c.validate().expect("generated cases are always valid");
        }
    }

    #[test]
    fn generation_covers_the_topology_zoo() {
        // Any reasonable window of the stream must contain every zoo
        // member, and every member both with and without hard faults —
        // otherwise the differential oracle silently stops testing wrap
        // links, date-line VCs, or the vertical dimension.
        let cases: Vec<FuzzCase> = (0..64).map(|i| FuzzCase::generate(7, i)).collect();
        for (name, pick) in [("mesh", 0usize), ("torus", 1), ("ftorus", 2), ("3d", 3)] {
            let member = |c: &FuzzCase| match (pick, c.topo) {
                (0, Topo::Mesh(_))
                | (1, Topo::Torus(_))
                | (2, Topo::FoldedTorus(_))
                | (3, Topo::Mesh3d(_)) => true,
                _ => false,
            };
            assert!(
                cases.iter().any(|c| member(c) && c.hard_faults.is_some()),
                "no hard-faulted {name} case in the stream"
            );
            assert!(
                cases.iter().any(|c| member(c) && c.hard_faults.is_none()),
                "no fault-free {name} case in the stream"
            );
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        for i in 0..16 {
            let case = FuzzCase::generate(99, i);
            let text = case.to_text();
            let back = FuzzCase::from_text(&text).expect("round trip");
            assert_eq!(case, back);
        }
    }

    #[test]
    fn corrupt_case_file_is_rejected() {
        let text = FuzzCase::generate(1, 1).to_text();
        let mut corrupt = text.replace("mesh=", "mesh=9");
        assert!(
            FuzzCase::from_text(&corrupt).is_err(),
            "crc must catch edits"
        );
        corrupt = text[..text.len() - 2].to_string();
        assert!(FuzzCase::from_text(&corrupt).is_err());
    }

    #[test]
    fn shrink_candidates_are_smaller_and_valid() {
        let case = FuzzCase::generate(3, 5);
        for c in case.shrink_candidates() {
            assert_ne!(c, case);
            c.validate().expect("shrunk cases stay valid");
            assert!(
                c.pretrain_cycles <= case.pretrain_cycles
                    && c.warmup_cycles <= case.warmup_cycles
                    && c.measure_cycles <= case.measure_cycles
                    && c.topo.num_nodes() <= case.topo.num_nodes()
                    && c.epoch_cycles <= case.epoch_cycles
            );
        }
    }

    #[test]
    fn report_diff_names_the_changed_field() {
        let case = FuzzCase {
            topo: Mesh::new(2, 2).into(),
            scheme: ErrorControlScheme::StaticCrc,
            workload: "blackscholes".into(),
            seed: 11,
            epoch_cycles: 500,
            pretrain_cycles: 0,
            warmup_cycles: 0,
            measure_cycles: 1_000,
            drain_limit: 50_000,
            allowed_modes: [true; 4],
            p_ref_scale: 1.0,
            ambient_c: 45.0,
            hard_faults: None,
        };
        let report = case.experiment().run();
        assert!(report.diff(&report).is_empty());
        let mut other = report.clone();
        other.hop_nacks += 1;
        other.avg_latency_cycles += 1e-12;
        let diffs = report.diff(&other);
        let names: Vec<_> = diffs.iter().map(|d| d.field).collect();
        assert!(names.contains(&"hop_nacks"));
        assert!(names.contains(&"avg_latency_cycles"));
    }
}
