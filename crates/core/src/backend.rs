//! The simulation-backend seam used by the verification harness.
//!
//! [`Experiment`](crate::experiment::Experiment) normally drives the
//! optimized [`Network<FaultTolerantProtocol>`] kernel. To let an
//! independently written reference simulator reuse the *entire*
//! experiment pipeline (pre-training curriculum, control epochs, energy
//! and thermal accounting, report assembly), the runner is generic over
//! this trait: everything the control plane ever asks of the data plane,
//! and nothing else.
//!
//! The contract is strictly behavioral — a conforming backend fed the
//! same seeds and setter calls must produce the same statistics streams.
//! `rlnoc-verify` exploits this by running the optimized backend and a
//! deliberately slow reference backend through
//! [`Experiment::run_with_backend`](crate::experiment::Experiment::run_with_backend)
//! and diffing the resulting [`ExperimentReport`]s field by field.

use crate::modes::OperationMode;
use crate::protocol::FaultTolerantProtocol;
use noc_fault::timing::TimingErrorModel;
use noc_fault::variation::VariationMap;
use noc_sim::config::NocConfig;
use noc_sim::network::{HardFaultEvent, Network, SharedTables};
use noc_sim::stats::{EventCounters, NetworkStats, RouterEpochStats};
use noc_sim::topology::NodeId;
use rlnoc_telemetry::Telemetry;

/// A cycle-accurate data-plane implementation the experiment runner can
/// drive. See the [module docs](self) for the behavioral contract.
pub trait SimBackend {
    /// Constructs the backend. `protocol_seed` and `network_seed` are
    /// the exact values the default backend feeds to
    /// [`FaultTolerantProtocol::new`] and [`Network::new`]; a reference
    /// backend must consume them identically so fault and payload RNG
    /// streams line up draw for draw.
    fn build(
        noc: NocConfig,
        timing: TimingErrorModel,
        variation: VariationMap,
        protocol_seed: u64,
        network_seed: u64,
    ) -> Self;

    /// Installs a telemetry handle. Observation-only: enabled vs
    /// disabled telemetry must not change any report field.
    fn set_telemetry(&mut self, telemetry: &Telemetry);

    /// Installs a permanent hard-fault schedule before the first step.
    /// Each event must take effect at the start of its cycle's `step`,
    /// before event processing; an empty schedule must leave the
    /// backend exactly on its zero-fault path.
    fn set_hard_faults(&mut self, events: Vec<HardFaultEvent>);

    /// Current simulation cycle.
    fn cycle(&self) -> u64;

    /// Offers a data packet from `src` to `dst`.
    fn offer(&mut self, src: NodeId, dst: NodeId);

    /// Advances one clock cycle.
    fn step(&mut self);

    /// `true` when no packet or flit remains anywhere in the system.
    fn is_quiescent(&self) -> bool;

    /// Cumulative network statistics.
    fn stats(&self) -> &NetworkStats;

    /// Clears cumulative statistics and energy counters.
    fn reset_stats(&mut self);

    /// Per-router statistics for the current control epoch.
    ///
    /// Callers that need exact `cycles` values must call
    /// [`finish_epoch`](Self::finish_epoch) first: backends may defer
    /// per-cycle bookkeeping that is uniform across routers (the
    /// optimized kernel batches the per-router `cycles` bump) until
    /// flushed at an epoch boundary.
    fn epoch_stats(&self) -> &[RouterEpochStats];

    /// Flushes any deferred per-cycle epoch bookkeeping so
    /// [`epoch_stats`](Self::epoch_stats) is exact. Backends that
    /// sample eagerly need not override the default no-op.
    fn finish_epoch(&mut self) {}

    /// Resets per-router epoch statistics.
    fn reset_epoch_stats(&mut self);

    /// Cumulative per-router energy event counters.
    fn counters(&self) -> &[EventCounters];

    /// Per-router raw (mode-independent) error probabilities — the
    /// supervised labels for the decision-tree baseline. Called once per
    /// pre-training epoch, so an uncached per-node recompute is fine.
    fn raw_error_probabilities(&self) -> Vec<f64>;

    /// Sets router `node`'s operation mode.
    fn set_mode(&mut self, node: usize, mode: OperationMode);

    /// Sets every router's operation mode.
    fn set_all_modes(&mut self, mode: OperationMode);

    /// Updates per-router temperatures (°C) from the thermal model.
    fn set_temperatures(&mut self, temps: &[f64]);

    /// Updates per-router mean output-link utilizations (flits/cycle).
    fn set_utilizations(&mut self, utils: &[f64]);
}

/// A [`SimBackend`] whose replicate lanes can share immutable tables.
///
/// `BatchSim` — the batched execution engine behind
/// [`Experiment::run_batch`](crate::experiment::Experiment::run_batch)
/// — steps K lanes of one campaign cell in lockstep. Lanes differ only
/// in their seeds, so everything derived from the topology and the
/// hard-fault schedule (route tables, neighbor tables, post-fault
/// reroute tables) is identical across lanes and is built once per
/// batch through [`make_shared`](Self::make_shared). The sharing must
/// be invisible: a backend built by
/// [`build_with_shared`](Self::build_with_shared) must be byte-
/// identical in behavior to one built by [`SimBackend::build`] — the
/// lane-equivalence test wall checks exactly this.
pub trait BatchSimBackend: SimBackend + Sized {
    /// Immutable state shared by every lane of a batch. Cloning must be
    /// cheap (reference-counted) and must alias, not copy.
    type Shared: Clone;

    /// Builds the shared tables for one campaign cell's topology.
    fn make_shared(noc: &NocConfig) -> Self::Shared;

    /// [`SimBackend::build`], but aliasing `shared` instead of
    /// rebuilding per-lane copies of the immutable tables.
    fn build_with_shared(
        shared: &Self::Shared,
        noc: NocConfig,
        timing: TimingErrorModel,
        variation: VariationMap,
        protocol_seed: u64,
        network_seed: u64,
    ) -> Self;
}

/// The production backend: the optimized kernel behind every figure.
impl SimBackend for Network<FaultTolerantProtocol> {
    fn build(
        noc: NocConfig,
        timing: TimingErrorModel,
        variation: VariationMap,
        protocol_seed: u64,
        network_seed: u64,
    ) -> Self {
        let protocol = FaultTolerantProtocol::new(noc.mesh, timing, variation, protocol_seed);
        Network::new(noc, protocol, network_seed)
    }

    fn set_telemetry(&mut self, telemetry: &Telemetry) {
        Network::set_telemetry(self, telemetry);
    }

    fn set_hard_faults(&mut self, events: Vec<HardFaultEvent>) {
        Network::set_hard_faults(self, events);
    }

    fn cycle(&self) -> u64 {
        Network::cycle(self)
    }

    fn offer(&mut self, src: NodeId, dst: NodeId) {
        Network::offer(self, src, dst);
    }

    fn step(&mut self) {
        Network::step(self);
    }

    fn is_quiescent(&self) -> bool {
        Network::is_quiescent(self)
    }

    fn stats(&self) -> &NetworkStats {
        Network::stats(self)
    }

    fn reset_stats(&mut self) {
        Network::reset_stats(self);
    }

    fn epoch_stats(&self) -> &[RouterEpochStats] {
        Network::epoch_stats_raw(self)
    }

    fn finish_epoch(&mut self) {
        Network::finish_epoch(self);
    }

    fn reset_epoch_stats(&mut self) {
        Network::reset_epoch_stats(self);
    }

    fn counters(&self) -> &[EventCounters] {
        Network::counters(self)
    }

    fn raw_error_probabilities(&self) -> Vec<f64> {
        self.protocol().raw_error_probabilities().to_vec()
    }

    fn set_mode(&mut self, node: usize, mode: OperationMode) {
        self.protocol_mut().set_mode(node, mode);
    }

    fn set_all_modes(&mut self, mode: OperationMode) {
        self.protocol_mut().set_all_modes(mode);
    }

    fn set_temperatures(&mut self, temps: &[f64]) {
        self.protocol_mut().set_temperatures(temps);
    }

    fn set_utilizations(&mut self, utils: &[f64]) {
        self.protocol_mut().set_utilizations(utils);
    }
}

impl BatchSimBackend for Network<FaultTolerantProtocol> {
    type Shared = SharedTables;

    fn make_shared(noc: &NocConfig) -> SharedTables {
        SharedTables::new(noc.mesh)
    }

    fn build_with_shared(
        shared: &SharedTables,
        noc: NocConfig,
        timing: TimingErrorModel,
        variation: VariationMap,
        protocol_seed: u64,
        network_seed: u64,
    ) -> Self {
        let protocol = FaultTolerantProtocol::new(noc.mesh, timing, variation, protocol_seed);
        Network::with_shared(noc, protocol, network_seed, shared)
    }
}
