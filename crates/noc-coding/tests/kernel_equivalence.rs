//! New-vs-reference equivalence for the word-sliced data-plane kernels.
//!
//! The byte-sliced SECDED tables and the slicing-by-8 CRC must be
//! *indistinguishable* from the retained bitwise reference
//! implementations — the golden campaign fixtures depend on it. The
//! cheap sweeps run in every `cargo test`; the exhaustive sweeps
//! (every single-bit flip and all C(n,2) double flips across all
//! byte-lane patterns) are `#[ignore]`d for debug builds and executed
//! in release mode by the `kernel-equivalence` CI job via
//! `cargo test --release ... -- --include-ignored`.

use noc_coding::crc::Crc32;
use noc_coding::hamming::{DecodeOutcome, Secded32, Secded64};
use proptest::prelude::*;

/// Deterministic 64-bit mixer (SplitMix64 finalizer) for data sweeps.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Every single-byte pattern in every lane of a 64-bit word, plus the
/// all-zero and all-one words: the inputs that exercise each table
/// entry of the byte-sliced encoder in isolation.
fn lane_patterns_64() -> Vec<u64> {
    let mut v = vec![0, u64::MAX];
    for lane in 0..8 {
        for byte in 0..=255u64 {
            v.push(byte << (8 * lane));
        }
    }
    v
}

fn lane_patterns_32() -> Vec<u32> {
    let mut v = vec![0, u32::MAX];
    for lane in 0..4 {
        for byte in 0..=255u32 {
            v.push(byte << (8 * lane));
        }
    }
    v
}

#[test]
fn secded64_clean_encode_matches_reference_for_all_byte_patterns() {
    for data in lane_patterns_64() {
        let fast = Secded64::encode(data);
        assert_eq!(fast, Secded64::encode_reference(data), "data {data:#x}");
        assert_eq!(fast.decode(), DecodeOutcome::Clean { data });
        assert_eq!(fast.decode(), fast.decode_reference());
    }
}

#[test]
fn secded32_clean_encode_matches_reference_for_all_byte_patterns() {
    for data in lane_patterns_32() {
        let fast = Secded32::encode(data);
        assert_eq!(fast, Secded32::encode_reference(data), "data {data:#x}");
        assert_eq!(
            fast.decode(),
            DecodeOutcome::Clean {
                data: u64::from(data)
            }
        );
        assert_eq!(fast.decode(), fast.decode_reference());
    }
}

#[test]
fn secded64_flips_match_reference_on_mixed_words() {
    for i in 0..32u64 {
        let data = mix(i);
        let cw = Secded64::encode(data);
        for a in 0..Secded64::CODE_BITS {
            let one = cw.with_bit_flipped(a);
            assert_eq!(
                one.decode(),
                DecodeOutcome::Corrected { data, bit: a },
                "single flip {a}"
            );
            assert_eq!(one.decode(), one.decode_reference(), "single flip {a}");
        }
        for a in 0..Secded64::CODE_BITS {
            for b in (a + 1)..Secded64::CODE_BITS {
                let two = cw.with_bit_flipped(a).with_bit_flipped(b);
                assert_eq!(two.decode(), DecodeOutcome::DoubleError, "pair ({a},{b})");
                assert_eq!(two.decode(), two.decode_reference(), "pair ({a},{b})");
            }
        }
    }
}

#[test]
fn secded32_flips_match_reference_on_mixed_words() {
    for i in 0..32u64 {
        let data = mix(i.wrapping_add(977)) as u32;
        let cw = Secded32::encode(data);
        for a in 0..Secded32::CODE_BITS {
            let one = cw.with_bit_flipped(a);
            assert_eq!(
                one.decode(),
                DecodeOutcome::Corrected {
                    data: u64::from(data),
                    bit: a
                },
                "single flip {a}"
            );
            assert_eq!(one.decode(), one.decode_reference(), "single flip {a}");
        }
        for a in 0..Secded32::CODE_BITS {
            for b in (a + 1)..Secded32::CODE_BITS {
                let two = cw.with_bit_flipped(a).with_bit_flipped(b);
                assert_eq!(two.decode(), DecodeOutcome::DoubleError, "pair ({a},{b})");
                assert_eq!(two.decode(), two.decode_reference(), "pair ({a},{b})");
            }
        }
    }
}

/// Exhaustive: every byte-lane pattern × every single flip × every
/// C(72,2) double flip. ~17M decode pairs; release-mode CI only.
#[test]
#[ignore = "exhaustive sweep; run in release via the kernel-equivalence CI job"]
fn secded64_exhaustive_flip_equivalence_all_byte_patterns() {
    for data in lane_patterns_64() {
        let cw = Secded64::encode(data);
        assert_eq!(cw, Secded64::encode_reference(data));
        for a in 0..Secded64::CODE_BITS {
            let one = cw.with_bit_flipped(a);
            assert_eq!(
                one.decode(),
                DecodeOutcome::Corrected { data, bit: a },
                "data {data:#x} single flip {a}"
            );
            for b in (a + 1)..Secded64::CODE_BITS {
                let two = one.with_bit_flipped(b);
                let out = two.decode();
                assert_eq!(out, DecodeOutcome::DoubleError, "data {data:#x} ({a},{b})");
                assert_eq!(out, two.decode_reference(), "data {data:#x} ({a},{b})");
            }
        }
    }
}

/// Exhaustive (39,32) counterpart of the sweep above.
#[test]
#[ignore = "exhaustive sweep; run in release via the kernel-equivalence CI job"]
fn secded32_exhaustive_flip_equivalence_all_byte_patterns() {
    for data in lane_patterns_32() {
        let cw = Secded32::encode(data);
        assert_eq!(cw, Secded32::encode_reference(data));
        for a in 0..Secded32::CODE_BITS {
            let one = cw.with_bit_flipped(a);
            assert_eq!(
                one.decode(),
                DecodeOutcome::Corrected {
                    data: u64::from(data),
                    bit: a
                },
                "data {data:#x} single flip {a}"
            );
            for b in (a + 1)..Secded32::CODE_BITS {
                let two = one.with_bit_flipped(b);
                let out = two.decode();
                assert_eq!(out, DecodeOutcome::DoubleError, "data {data:#x} ({a},{b})");
                assert_eq!(out, two.decode_reference(), "data {data:#x} ({a},{b})");
            }
        }
    }
}

/// Wide random sweep of full words through encode/decode equivalence.
#[test]
#[ignore = "exhaustive sweep; run in release via the kernel-equivalence CI job"]
fn secded_random_word_sweep_matches_reference() {
    for i in 0..100_000u64 {
        let data = mix(i);
        let cw = Secded64::encode(data);
        assert_eq!(cw, Secded64::encode_reference(data), "data {data:#x}");
        assert_eq!(cw.decode(), DecodeOutcome::Clean { data });
        let d32 = data as u32;
        let cw32 = Secded32::encode(d32);
        assert_eq!(cw32, Secded32::encode_reference(d32), "data {d32:#x}");
        assert_eq!(
            cw32.decode(),
            DecodeOutcome::Clean {
                data: u64::from(d32)
            }
        );
    }
}

#[test]
fn crc32_sliced_matches_reference_check_value() {
    let crc = Crc32::new();
    assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
    assert_eq!(Crc32::checksum_reference(b"123456789"), 0xCBF4_3926);
}

#[test]
fn crc32_sliced_matches_reference_across_lengths() {
    let crc = Crc32::new();
    // Every length 0..=64 exercises all chunk/remainder splits of the
    // slicing-by-8 loop.
    let bytes: Vec<u8> = (0..64u64).map(|i| mix(i) as u8).collect();
    for len in 0..=bytes.len() {
        let data = &bytes[..len];
        assert_eq!(
            crc.checksum(data),
            Crc32::checksum_reference(data),
            "len {len}"
        );
    }
}

proptest! {
    // The sliced CRC-32 kernel must equal the retained bitwise
    // reference on arbitrary payloads (all alignments and lengths).
    #[test]
    fn crc32_sliced_equals_bitwise_reference(
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assert_eq!(Crc32::new().checksum(&data), Crc32::checksum_reference(&data));
    }

    // The two-step word kernel must equal the byte-serialized path.
    #[test]
    fn crc32_word_kernel_equals_byte_path(w0: u64, w1: u64) {
        let crc = Crc32::new();
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&w0.to_le_bytes());
        bytes[8..].copy_from_slice(&w1.to_le_bytes());
        prop_assert_eq!(crc.checksum_words(&[w0, w1]), crc.checksum(&bytes));
        prop_assert_eq!(crc.checksum_words(&[w0, w1]), Crc32::checksum_reference(&bytes));
    }
}

/// The word-parallel batch kernels (four-lane groups over independent
/// replicate-lane words) must be lane-for-lane identical to their
/// scalar counterparts at every width the batched engine uses — ragged
/// tails included — and across all three decode outcome kinds.
#[test]
fn batch_kernels_match_scalar_per_lane_for_all_widths() {
    let crc = Crc32::new();
    for k in [1usize, 2, 3, 4, 5, 7, 8, 16] {
        let payloads: Vec<[u64; 2]> = (0..k as u64)
            .map(|i| [mix(i), mix(i ^ 0xABCD_EF01)])
            .collect();
        let mut sums = vec![0u32; k];
        crc.checksum_words_batch(&payloads, &mut sums);
        for (lane, p) in payloads.iter().enumerate() {
            assert_eq!(sums[lane], crc.checksum_words(p), "crc lane {lane} of {k}");
        }

        let data: Vec<u64> = (0..k as u64).map(|i| mix(i.wrapping_mul(0x5EED))).collect();
        let mut codewords = vec![Secded64::encode(0); k];
        Secded64::encode_batch(&data, &mut codewords);
        for (lane, &d) in data.iter().enumerate() {
            assert_eq!(
                codewords[lane],
                Secded64::encode(d),
                "encode lane {lane} of {k}"
            );
        }

        // Corrupt lanes in a rotating pattern so one batch mixes clean,
        // corrected, and double-error outcomes.
        for (lane, cw) in codewords.iter_mut().enumerate() {
            match lane % 3 {
                1 => *cw = cw.with_bit_flipped(lane as u32 * 7 % Secded64::CODE_BITS),
                2 => *cw = cw.with_bit_flipped(3).with_bit_flipped(44),
                _ => {}
            }
        }
        let mut outcomes = vec![DecodeOutcome::DoubleError; k];
        Secded64::decode_batch(&codewords, &mut outcomes);
        for (lane, cw) in codewords.iter().enumerate() {
            assert_eq!(outcomes[lane], cw.decode(), "decode lane {lane} of {k}");
            assert_eq!(outcomes[lane], cw.decode_reference());
            match lane % 3 {
                0 => assert_eq!(outcomes[lane], DecodeOutcome::Clean { data: data[lane] }),
                1 => assert_eq!(outcomes[lane].data(), Some(data[lane])),
                _ => assert_eq!(outcomes[lane], DecodeOutcome::DoubleError),
            }
        }
    }
}
