//! Property tests for the hop-level ARQ machinery.
//!
//! Three guarantees the simulator's go-back-N retransmission layer
//! leans on:
//!
//! 1. **NACK round-trip restores the pristine flit.** Whatever happens
//!    to the wire copy (arbitrary bit corruption, detected by SECDED),
//!    every copy handed back by a NACK is bit-identical to the payload
//!    as originally sent — across any number of consecutive NACKs.
//! 2. **Retransmit windows never deliver duplicates.** Under any
//!    interleaving of ACK/NACK traffic, each sequence number is
//!    *released* at most once, stale acknowledgements classify as
//!    [`ArqEvent::Unknown`], and the buffer never exceeds its capacity.
//! 3. **Timeout/NACK ordering is seed-independent.** The set and order
//!    of payloads returned by a timeout sweep depends only on what was
//!    pushed and acknowledged, not on the order in which NACKs were
//!    processed in between.

use noc_coding::arq::{AckKind, ArqEvent, RetransmitBuffer, SequenceNumber};
use noc_coding::hamming::Secded64;
use proptest::prelude::*;

/// SplitMix64 step for deriving deterministic sub-streams from a raw
/// proptest `u64` without pulling in an RNG dependency.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    /// Push a payload, corrupt its wire image with two bit flips (always
    /// detected, never correctable by SECDED), and NACK repeatedly: each
    /// returned copy equals the payload as sent, and the final ACK
    /// releases exactly that entry.
    #[test]
    fn nack_round_trip_restores_pristine_payload(
        data: u64,
        flip_a in 0u32..Secded64::CODE_BITS,
        flip_b in 0u32..Secded64::CODE_BITS,
        nacks in 1usize..6,
    ) {
        prop_assume!(flip_a != flip_b);
        let mut buf: RetransmitBuffer<u64> = RetransmitBuffer::new(4);
        let seq = buf.push(data, 0).expect("buffer has space");

        // The wire copy takes a detectable double-bit error: the
        // downstream decoder must report it uncorrectable and NACK.
        let wire = Secded64::encode(data)
            .with_bit_flipped(flip_a)
            .with_bit_flipped(flip_b);
        prop_assert!(wire.decode().data().is_none(), "double flip must be uncorrectable");

        for _ in 0..nacks {
            let (event, copy) = buf.acknowledge(seq, AckKind::Nack);
            prop_assert_eq!(event, ArqEvent::Retransmit);
            // The buffered copy is untouched by wire corruption.
            prop_assert_eq!(copy, Some(data));
        }
        let (event, copy) = buf.acknowledge(seq, AckKind::Ack);
        prop_assert_eq!(event, ArqEvent::Released);
        prop_assert_eq!(copy, None);
        prop_assert!(buf.is_empty());
    }

    /// Random ACK/NACK/push traffic: every sequence number is released
    /// at most once, acknowledgements for released or never-issued
    /// sequence numbers classify as `Unknown`, and occupancy never
    /// exceeds capacity.
    #[test]
    fn windows_never_release_duplicates(
        capacity in 1usize..9,
        ops_seed: u64,
        ops_len in 1usize..64,
    ) {
        let mut buf: RetransmitBuffer<u64> = RetransmitBuffer::new(capacity);
        let mut issued: Vec<SequenceNumber> = Vec::new();
        let mut released: Vec<SequenceNumber> = Vec::new();
        let mut s = ops_seed;
        for step in 0..ops_len {
            s = mix(s);
            match s % 3 {
                0 => {
                    if let Some(seq) = buf.push(s, step as u64) {
                        prop_assert!(!issued.contains(&seq), "sequence numbers never repeat");
                        issued.push(seq);
                    } else {
                        prop_assert!(buf.is_full(), "push only fails when full");
                    }
                }
                1 | 2 => {
                    // Aim at a random issued (possibly released) seq, or
                    // a never-issued one.
                    let target = if issued.is_empty() || s % 7 == 0 {
                        SequenceNumber::new(u64::MAX - s % 1000)
                    } else {
                        issued[(s / 3) as usize % issued.len()]
                    };
                    let kind = if s % 3 == 1 { AckKind::Ack } else { AckKind::Nack };
                    let (event, copy) = buf.acknowledge(target, kind);
                    match event {
                        ArqEvent::Released => {
                            prop_assert_eq!(kind, AckKind::Ack);
                            prop_assert!(
                                !released.contains(&target),
                                "sequence {} released twice", target
                            );
                            released.push(target);
                        }
                        ArqEvent::Retransmit => {
                            prop_assert_eq!(kind, AckKind::Nack);
                            prop_assert!(copy.is_some());
                            prop_assert!(!released.contains(&target));
                        }
                        ArqEvent::Unknown => {
                            prop_assert!(copy.is_none());
                            prop_assert!(
                                released.contains(&target) || !issued.contains(&target),
                                "known in-flight {} classified Unknown", target
                            );
                        }
                    }
                }
                _ => unreachable!(),
            }
            prop_assert!(buf.len() <= capacity);
        }
    }

    /// Two buffers receive identical pushes and identical ACK sets but
    /// process their NACK bursts in different (seed-derived) orders: the
    /// timeout sweep must return the same sequence numbers and payloads
    /// in the same (send) order for both.
    #[test]
    fn timeout_sweep_is_nack_order_independent(
        n in 1usize..10,
        acked_mask in 0u16..1024,
        shuffle_seed: u64,
        timeout in 1u64..100,
    ) {
        let mut a: RetransmitBuffer<u64> = RetransmitBuffer::new(16);
        let mut b: RetransmitBuffer<u64> = RetransmitBuffer::new(16);
        let mut seqs = Vec::new();
        for i in 0..n {
            let payload = mix(i as u64);
            let sa = a.push(payload, 0).expect("capacity 16 > n");
            let sb = b.push(payload, 0).expect("capacity 16 > n");
            prop_assert_eq!(sa, sb, "sequence issue order is deterministic");
            seqs.push(sa);
        }

        // Identical ACK set...
        for (i, &seq) in seqs.iter().enumerate() {
            if acked_mask & (1 << i) != 0 {
                a.acknowledge(seq, AckKind::Ack);
                b.acknowledge(seq, AckKind::Ack);
            }
        }
        // ...but NACK bursts fed in different orders: `a` in send order,
        // `b` in a seed-shuffled order.
        let unacked: Vec<SequenceNumber> = seqs
            .iter()
            .enumerate()
            .filter(|(i, _)| acked_mask & (1 << i) == 0)
            .map(|(_, &s)| s)
            .collect();
        for &seq in &unacked {
            a.acknowledge(seq, AckKind::Nack);
        }
        let mut shuffled = unacked.clone();
        let mut s = shuffle_seed;
        for i in (1..shuffled.len()).rev() {
            s = mix(s);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for &seq in &shuffled {
            b.acknowledge(seq, AckKind::Nack);
        }

        let swept_a = a.expired(timeout, timeout);
        let swept_b = b.expired(timeout, timeout);
        prop_assert_eq!(&swept_a, &swept_b, "sweep independent of NACK order");
        // Sweep preserves send order over exactly the unacknowledged set.
        let order: Vec<SequenceNumber> = swept_a.iter().map(|(s, _)| *s).collect();
        prop_assert_eq!(order, unacked);
    }
}
