//! Extended Hamming SECDED (single-error-correct, double-error-detect)
//! codes.
//!
//! The ARQ+ECC link hardware of the paper attaches a SECDED code to each
//! flit: the downstream decoder corrects any single bit flip in place and
//! raises a NACK on any double flip. Two widths are provided:
//!
//! * [`Secded32`] — Hamming(39,32): 32 data bits, 6 parity bits, 1 overall
//!   parity bit.
//! * [`Secded64`] — Hamming(72,64): 64 data bits, 7 parity bits, 1 overall
//!   parity bit. Two of these protect one 128-bit flit.
//!
//! Bit layout follows the classic extended-Hamming construction: codeword
//! positions are 1-indexed, parity bits sit at power-of-two positions, data
//! bits fill the remaining positions, and the overall parity bit occupies
//! position 0. The syndrome of a single flip equals the flipped position.

use std::fmt;

/// Result of decoding a (possibly corrupted) SECDED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// The codeword was clean; `data` is the original payload.
    Clean {
        /// Recovered data word.
        data: u64,
    },
    /// A single-bit error was corrected.
    Corrected {
        /// Recovered data word (after correction).
        data: u64,
        /// Codeword bit position (0-indexed) that was flipped.
        bit: u32,
    },
    /// Two bit errors were detected; the data cannot be trusted and the
    /// receiver must request a retransmission (NACK).
    DoubleError,
}

impl DecodeOutcome {
    /// Returns the recovered data if the outcome is usable
    /// ([`Clean`](Self::Clean) or [`Corrected`](Self::Corrected)).
    pub fn data(self) -> Option<u64> {
        match self {
            Self::Clean { data } | Self::Corrected { data, .. } => Some(data),
            Self::DoubleError => None,
        }
    }

    /// Returns `true` when the decoder had to correct a bit.
    pub fn was_corrected(self) -> bool {
        matches!(self, Self::Corrected { .. })
    }
}

impl fmt::Display for DecodeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Clean { .. } => write!(f, "clean"),
            Self::Corrected { bit, .. } => write!(f, "corrected bit {bit}"),
            Self::DoubleError => write!(f, "double error detected"),
        }
    }
}

/// Const-evaluable extended-Hamming encode, used only to *build* the
/// byte-sliced tables below. The independently written
/// [`encode_generic`] remains the specification the tables are tested
/// against.
const fn encode_const(data: u64, data_bits: u32, total_positions: u32) -> u128 {
    let mut code: u128 = 0;
    let mut d = 0u32;
    let mut pos = 1u32;
    while pos <= total_positions {
        if !pos.is_power_of_two() {
            if data & (1u64 << d) != 0 {
                code |= 1u128 << pos;
            }
            d += 1;
            if d == data_bits {
                break;
            }
        }
        pos += 1;
    }
    let mut p = 1u32;
    while p <= total_positions {
        let mut parity = 0u32;
        let mut q = 1u32;
        while q <= total_positions {
            if q & p != 0 && code & (1u128 << q) != 0 {
                parity ^= 1;
            }
            q += 1;
        }
        if parity != 0 {
            code |= 1u128 << p;
        }
        p <<= 1;
    }
    if code.count_ones() & 1 != 0 {
        code |= 1;
    }
    code
}

/// Sentinel in `data_index` for positions that carry no data bit
/// (parity positions, position 0, and positions past the codeword).
const NO_DATA: u8 = 0xFF;

/// Word-sliced encode/decode tables for one code size.
///
/// Extended Hamming is linear, so a codeword is the XOR of the
/// codewords of its data bytes taken in isolation — `encode` is `DB`
/// table loads XORed together, with parity bits and the overall parity
/// bit already folded into each entry. Decode slices the codeword into
/// `CB` bytes: `syndrome[i][b]` accumulates (low 8 bits) the XOR of the
/// positions of `b`'s set bits and (bit 15) their popcount parity,
/// while `gather[i][b]` accumulates the data bits those positions
/// carry. No per-bit loops remain on the hot path.
struct ByteTables<const DB: usize, const CB: usize> {
    /// `encode[lane][b]` = codeword of data byte `b` in lane `lane`.
    encode: [[u128; 256]; DB],
    /// `syndrome[i][b]` = XOR of positions (low bits) | parity (bit 15).
    syndrome: [[u16; 256]; CB],
    /// `gather[i][b]` = data-word contribution of codeword byte `i`=`b`.
    gather: [[u64; 256]; CB],
    /// `data_index[pos]` = data-bit index stored at codeword position
    /// `pos`, or [`NO_DATA`].
    data_index: [u8; 128],
}

impl<const DB: usize, const CB: usize> ByteTables<DB, CB> {
    const fn build(data_bits: u32, total_positions: u32) -> Self {
        let mut data_index = [NO_DATA; 128];
        let mut d = 0u32;
        let mut pos = 1u32;
        while pos <= total_positions && d < data_bits {
            if !pos.is_power_of_two() {
                data_index[pos as usize] = d as u8;
                d += 1;
            }
            pos += 1;
        }
        let mut encode = [[0u128; 256]; DB];
        let mut lane = 0;
        while lane < DB {
            let mut v = 0usize;
            while v < 256 {
                encode[lane][v] =
                    encode_const((v as u64) << (lane * 8), data_bits, total_positions);
                v += 1;
            }
            lane += 1;
        }
        let mut syndrome = [[0u16; 256]; CB];
        let mut gather = [[0u64; 256]; CB];
        let mut byte = 0;
        while byte < CB {
            let mut v = 0usize;
            while v < 256 {
                let mut s = 0u16;
                let mut g = 0u64;
                let mut j = 0u32;
                while j < 8 {
                    if v & (1usize << j) != 0 {
                        let p = byte as u32 * 8 + j;
                        // Every set bit toggles the overall parity (bit
                        // 15) and XORs its position into the syndrome.
                        s ^= 0x8000 | (p as u16);
                        if data_index[p as usize] != NO_DATA {
                            g |= 1u64 << data_index[p as usize];
                        }
                    }
                    j += 1;
                }
                syndrome[byte][v] = s;
                gather[byte][v] = g;
                v += 1;
            }
            byte += 1;
        }
        Self {
            encode,
            syndrome,
            gather,
            data_index,
        }
    }

    /// Fast encode: one table load + XOR per data byte.
    #[inline]
    fn encode(&self, data: u64) -> u128 {
        let mut code = 0u128;
        for (lane, table) in self.encode.iter().enumerate() {
            code ^= table[((data >> (8 * lane)) & 0xFF) as usize];
        }
        code
    }

    /// Four-lane interleaved encode. The outer loop walks byte
    /// positions and the body XORs into four independent accumulators,
    /// so the table loads of different lanes issue back to back instead
    /// of waiting on one lane's serial XOR chain. Lane `i` equals
    /// `encode(data[i])` exactly (XOR order is immaterial).
    #[inline]
    fn encode4(&self, data: [u64; 4]) -> [u128; 4] {
        let mut code = [0u128; 4];
        for (lane, table) in self.encode.iter().enumerate() {
            let sh = 8 * lane;
            code[0] ^= table[((data[0] >> sh) & 0xFF) as usize];
            code[1] ^= table[((data[1] >> sh) & 0xFF) as usize];
            code[2] ^= table[((data[2] >> sh) & 0xFF) as usize];
            code[3] ^= table[((data[3] >> sh) & 0xFF) as usize];
        }
        code
    }

    /// Fast decode: syndrome + overall parity + data gather in one
    /// byte-sliced pass, then a single indexed fix-up on correction.
    #[inline]
    fn decode(&self, code: u128, total_positions: u32) -> DecodeOutcome {
        let mut acc = 0u16;
        let mut data = 0u64;
        for (byte, (syn, gat)) in self.syndrome.iter().zip(&self.gather).enumerate() {
            let v = ((code >> (8 * byte)) & 0xFF) as usize;
            acc ^= syn[v];
            data ^= gat[v];
        }
        self.resolve(acc, data, total_positions)
    }

    /// Four-lane interleaved decode; the counterpart of
    /// [`encode4`](Self::encode4). Lane `i` equals
    /// `decode(code[i], total_positions)` exactly.
    #[inline]
    fn decode4(&self, code: [u128; 4], total_positions: u32) -> [DecodeOutcome; 4] {
        let mut acc = [0u16; 4];
        let mut data = [0u64; 4];
        for (byte, (syn, gat)) in self.syndrome.iter().zip(&self.gather).enumerate() {
            let sh = 8 * byte;
            for l in 0..4 {
                let v = ((code[l] >> sh) & 0xFF) as usize;
                acc[l] ^= syn[v];
                data[l] ^= gat[v];
            }
        }
        [
            self.resolve(acc[0], data[0], total_positions),
            self.resolve(acc[1], data[1], total_positions),
            self.resolve(acc[2], data[2], total_positions),
            self.resolve(acc[3], data[3], total_positions),
        ]
    }

    /// Shared decode fix-up: maps the accumulated syndrome/parity word
    /// and gathered data to the outcome, applying the single-bit
    /// correction through the precomputed position→data-bit index.
    #[inline]
    fn resolve(&self, acc: u16, mut data: u64, total_positions: u32) -> DecodeOutcome {
        let syndrome = u32::from(acc & 0x7FFF);
        let overall_ok = acc & 0x8000 == 0;
        match (syndrome, overall_ok) {
            (0, true) => DecodeOutcome::Clean { data },
            // Position 0 (the overall parity bit) carries no data.
            (0, false) => DecodeOutcome::Corrected { data, bit: 0 },
            (s, false) => {
                if s > total_positions {
                    return DecodeOutcome::DoubleError;
                }
                let di = self.data_index[s as usize];
                if di != NO_DATA {
                    data ^= 1u64 << di;
                }
                DecodeOutcome::Corrected { data, bit: s }
            }
            (_, true) => DecodeOutcome::DoubleError,
        }
    }
}

static TABLES_64: ByteTables<8, 9> = ByteTables::build(64, 71);
static TABLES_32: ByteTables<4, 5> = ByteTables::build(32, 38);

/// Reference extended-Hamming encode over `k` data bits (kept as the
/// specification against which the table-driven fast path is tested).
///
/// Returns the codeword as a `u128` whose bit `i` is codeword position `i`
/// (position 0 = overall parity).
fn encode_generic(data: u64, data_bits: u32, total_positions: u32) -> u128 {
    debug_assert!(data_bits <= 64);
    debug_assert!(
        data_bits == 64 || data >> data_bits == 0,
        "data exceeds width"
    );
    let mut code: u128 = 0;
    // Scatter data bits into non-power-of-two positions 3, 5, 6, 7, 9, ...
    let mut d = 0u32;
    for pos in 1..=total_positions {
        if !pos.is_power_of_two() {
            if data & (1u64 << d) != 0 {
                code |= 1u128 << pos;
            }
            d += 1;
            if d == data_bits {
                break;
            }
        }
    }
    // Parity bits: parity bit at position 2^j covers every position whose
    // j-th index bit is set.
    let mut p = 1u32;
    while p <= total_positions {
        let mut parity = 0u32;
        for pos in 1..=total_positions {
            if pos & p != 0 && code & (1u128 << pos) != 0 {
                parity ^= 1;
            }
        }
        if parity != 0 {
            code |= 1u128 << p;
        }
        p <<= 1;
    }
    // Overall parity at position 0 (even parity over the whole codeword).
    if (code.count_ones() & 1) != 0 {
        code |= 1;
    }
    code
}

/// Shared extended-Hamming decode; inverse of [`encode_generic`].
fn decode_generic(mut code: u128, data_bits: u32, total_positions: u32) -> DecodeOutcome {
    // Syndrome: XOR of the positions of all set bits.
    let mut syndrome = 0u32;
    for pos in 1..=total_positions {
        if code & (1u128 << pos) != 0 {
            syndrome ^= pos;
        }
    }
    let overall_ok = code.count_ones().is_multiple_of(2);
    let corrected_bit = match (syndrome, overall_ok) {
        (0, true) => None,
        (0, false) => {
            // The overall parity bit itself flipped.
            code ^= 1;
            Some(0)
        }
        (s, false) => {
            if s > total_positions {
                // Syndrome points outside the codeword: an uncorrectable
                // pattern that we conservatively report as a double error.
                return DecodeOutcome::DoubleError;
            }
            code ^= 1u128 << s;
            Some(s)
        }
        (_, true) => return DecodeOutcome::DoubleError,
    };
    // Gather data bits back out.
    let mut data = 0u64;
    let mut d = 0u32;
    for pos in 1..=total_positions {
        if !pos.is_power_of_two() {
            if code & (1u128 << pos) != 0 {
                data |= 1u64 << d;
            }
            d += 1;
            if d == data_bits {
                break;
            }
        }
    }
    match corrected_bit {
        None => DecodeOutcome::Clean { data },
        Some(bit) => DecodeOutcome::Corrected { data, bit },
    }
}

/// A Hamming(72,64) SECDED codeword protecting one 64-bit word.
///
/// # Example
///
/// ```
/// use noc_coding::hamming::{Secded64, DecodeOutcome};
///
/// let cw = Secded64::encode(0xFACE_CAFE_1234_5678);
/// assert_eq!(cw.decode(), DecodeOutcome::Clean { data: 0xFACE_CAFE_1234_5678 });
/// assert_eq!(cw.with_bit_flipped(5).decode().data(), Some(0xFACE_CAFE_1234_5678));
/// assert_eq!(
///     cw.with_bit_flipped(5).with_bit_flipped(40).decode(),
///     DecodeOutcome::DoubleError
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Secded64 {
    bits: u128,
}

impl Secded64 {
    /// Number of data bits protected by the code.
    pub const DATA_BITS: u32 = 64;
    /// Total codeword length in bits (including the overall parity bit).
    pub const CODE_BITS: u32 = 72;
    const TOP_POSITION: u32 = Self::CODE_BITS - 1;

    /// Encodes a 64-bit word into a 72-bit SECDED codeword.
    pub fn encode(data: u64) -> Self {
        Self {
            bits: TABLES_64.encode(data),
        }
    }

    /// Reference (table-free) encoder used to cross-check the fast path.
    #[doc(hidden)]
    pub fn encode_reference(data: u64) -> Self {
        Self {
            bits: encode_generic(data, Self::DATA_BITS, Self::TOP_POSITION),
        }
    }

    /// Reconstructs a codeword from raw bits (e.g. after link transmission).
    ///
    /// Bits above [`Self::CODE_BITS`] are masked off.
    pub fn from_raw(bits: u128) -> Self {
        Self {
            bits: bits & ((1u128 << Self::CODE_BITS) - 1),
        }
    }

    /// Raw codeword bits (bit `i` = codeword position `i`).
    pub fn as_raw(self) -> u128 {
        self.bits
    }

    /// Decodes, correcting a single flip and detecting double flips.
    pub fn decode(self) -> DecodeOutcome {
        TABLES_64.decode(self.bits, Self::TOP_POSITION)
    }

    /// Reference (table-free) decoder used to cross-check the fast path.
    #[doc(hidden)]
    pub fn decode_reference(self) -> DecodeOutcome {
        decode_generic(self.bits, Self::DATA_BITS, Self::TOP_POSITION)
    }

    /// Returns a copy with codeword bit `bit` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= Self::CODE_BITS`.
    pub fn with_bit_flipped(self, bit: u32) -> Self {
        assert!(bit < Self::CODE_BITS, "bit {bit} out of range");
        Self {
            bits: self.bits ^ (1u128 << bit),
        }
    }

    /// Encodes a batch of independent data words — one per replicate
    /// lane of a batched simulation — in word-parallel groups of four.
    ///
    /// The byte-sliced parity-table XOR chains of different lanes share
    /// no state, so grouping four lanes lets their table loads overlap
    /// instead of serializing. Lane `i` of `out` is exactly
    /// `encode(data[i])`; a ragged tail falls back to the scalar
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `data` and `out` differ in length.
    pub fn encode_batch(data: &[u64], out: &mut [Self]) {
        assert_eq!(data.len(), out.len(), "one codeword slot per lane");
        let mut data4 = data.chunks_exact(4);
        let mut out4 = out.chunks_exact_mut(4);
        for (d, o) in (&mut data4).zip(&mut out4) {
            let cw = TABLES_64.encode4([d[0], d[1], d[2], d[3]]);
            for (bits, slot) in cw.into_iter().zip(o.iter_mut()) {
                *slot = Self { bits };
            }
        }
        for (&d, o) in data4.remainder().iter().zip(out4.into_remainder()) {
            *o = Self::encode(d);
        }
    }

    /// Decodes a batch of independent codewords in word-parallel groups
    /// of four; the counterpart of [`encode_batch`](Self::encode_batch).
    /// Lane `i` of `out` is exactly `words[i].decode()`.
    ///
    /// # Panics
    ///
    /// Panics if `words` and `out` differ in length.
    pub fn decode_batch(words: &[Self], out: &mut [DecodeOutcome]) {
        assert_eq!(words.len(), out.len(), "one outcome slot per lane");
        let mut words4 = words.chunks_exact(4);
        let mut out4 = out.chunks_exact_mut(4);
        for (w, o) in (&mut words4).zip(&mut out4) {
            let r = TABLES_64.decode4(
                [w[0].bits, w[1].bits, w[2].bits, w[3].bits],
                Self::TOP_POSITION,
            );
            o.copy_from_slice(&r);
        }
        for (w, o) in words4.remainder().iter().zip(out4.into_remainder()) {
            *o = w.decode();
        }
    }
}

/// A Hamming(39,32) SECDED codeword protecting one 32-bit word.
///
/// # Example
///
/// ```
/// use noc_coding::hamming::{Secded32, DecodeOutcome};
///
/// let cw = Secded32::encode(0xDEAD_BEEF);
/// assert_eq!(cw.decode(), DecodeOutcome::Clean { data: 0xDEAD_BEEF });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Secded32 {
    bits: u128,
}

impl Secded32 {
    /// Number of data bits protected by the code.
    pub const DATA_BITS: u32 = 32;
    /// Total codeword length in bits (including the overall parity bit).
    pub const CODE_BITS: u32 = 39;
    const TOP_POSITION: u32 = Self::CODE_BITS - 1;

    /// Encodes a 32-bit word into a 39-bit SECDED codeword.
    pub fn encode(data: u32) -> Self {
        Self {
            bits: TABLES_32.encode(u64::from(data)),
        }
    }

    /// Reference (table-free) encoder used to cross-check the fast path.
    #[doc(hidden)]
    pub fn encode_reference(data: u32) -> Self {
        Self {
            bits: encode_generic(u64::from(data), Self::DATA_BITS, Self::TOP_POSITION),
        }
    }

    /// Reconstructs a codeword from raw bits.
    ///
    /// Bits above [`Self::CODE_BITS`] are masked off.
    pub fn from_raw(bits: u128) -> Self {
        Self {
            bits: bits & ((1u128 << Self::CODE_BITS) - 1),
        }
    }

    /// Raw codeword bits (bit `i` = codeword position `i`).
    pub fn as_raw(self) -> u128 {
        self.bits
    }

    /// Decodes, correcting a single flip and detecting double flips.
    pub fn decode(self) -> DecodeOutcome {
        TABLES_32.decode(self.bits, Self::TOP_POSITION)
    }

    /// Reference (table-free) decoder used to cross-check the fast path.
    #[doc(hidden)]
    pub fn decode_reference(self) -> DecodeOutcome {
        decode_generic(self.bits, Self::DATA_BITS, Self::TOP_POSITION)
    }

    /// Returns a copy with codeword bit `bit` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= Self::CODE_BITS`.
    pub fn with_bit_flipped(self, bit: u32) -> Self {
        assert!(bit < Self::CODE_BITS, "bit {bit} out of range");
        Self {
            bits: self.bits ^ (1u128 << bit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secded64_clean_round_trip() {
        for data in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF, 0xAAAA_5555_AAAA_5555] {
            assert_eq!(
                Secded64::encode(data).decode(),
                DecodeOutcome::Clean { data }
            );
        }
    }

    #[test]
    fn secded32_clean_round_trip() {
        for data in [0u32, u32::MAX, 0xDEAD_BEEF, 0x5555_AAAA] {
            assert_eq!(
                Secded32::encode(data).decode(),
                DecodeOutcome::Clean {
                    data: u64::from(data)
                }
            );
        }
    }

    #[test]
    fn secded64_corrects_every_single_bit_flip() {
        let data = 0x0F1E_2D3C_4B5A_6978u64;
        let cw = Secded64::encode(data);
        for bit in 0..Secded64::CODE_BITS {
            let out = cw.with_bit_flipped(bit).decode();
            match out {
                DecodeOutcome::Corrected { data: d, bit: b } => {
                    assert_eq!(d, data, "wrong data after correcting bit {bit}");
                    assert_eq!(b, bit);
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn secded32_corrects_every_single_bit_flip() {
        let data = 0xC0DE_F00Du32;
        let cw = Secded32::encode(data);
        for bit in 0..Secded32::CODE_BITS {
            let out = cw.with_bit_flipped(bit).decode();
            assert_eq!(out.data(), Some(u64::from(data)), "bit {bit}");
            assert!(out.was_corrected());
        }
    }

    #[test]
    fn secded64_detects_every_double_bit_flip() {
        let data = 0x1234_5678_9ABC_DEF0u64;
        let cw = Secded64::encode(data);
        // Exhaustive over all 72*71/2 pairs.
        for a in 0..Secded64::CODE_BITS {
            for b in (a + 1)..Secded64::CODE_BITS {
                let out = cw.with_bit_flipped(a).with_bit_flipped(b).decode();
                assert_eq!(out, DecodeOutcome::DoubleError, "pair ({a},{b}) escaped");
            }
        }
    }

    #[test]
    fn secded32_detects_every_double_bit_flip() {
        let data = 0x0BAD_CAFEu32;
        let cw = Secded32::encode(data);
        for a in 0..Secded32::CODE_BITS {
            for b in (a + 1)..Secded32::CODE_BITS {
                let out = cw.with_bit_flipped(a).with_bit_flipped(b).decode();
                assert_eq!(out, DecodeOutcome::DoubleError, "pair ({a},{b}) escaped");
            }
        }
    }

    #[test]
    fn fast_encode_matches_reference() {
        for data in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF, 0x8000_0000_0000_0001] {
            assert_eq!(Secded64::encode(data), Secded64::encode_reference(data));
        }
        for data in [0u32, u32::MAX, 0xDEAD_BEEF] {
            assert_eq!(Secded32::encode(data), Secded32::encode_reference(data));
        }
    }

    #[test]
    fn fast_decode_matches_reference_under_flips() {
        let data = 0xA5A5_5A5A_0FF0_F00Fu64;
        let cw = Secded64::encode(data);
        assert_eq!(cw.decode(), cw.decode_reference());
        for a in 0..Secded64::CODE_BITS {
            let one = cw.with_bit_flipped(a);
            assert_eq!(one.decode(), one.decode_reference(), "single flip {a}");
            let two = one.with_bit_flipped((a + 13) % Secded64::CODE_BITS);
            assert_eq!(two.decode(), two.decode_reference(), "double flip {a}");
        }
    }

    #[test]
    fn from_raw_masks_out_of_range_bits() {
        let cw = Secded64::encode(42);
        let noisy = cw.as_raw() | (1u128 << 100);
        assert_eq!(Secded64::from_raw(noisy), cw);
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(DecodeOutcome::Clean { data: 7 }.data(), Some(7));
        assert_eq!(DecodeOutcome::DoubleError.data(), None);
        assert!(DecodeOutcome::Corrected { data: 1, bit: 2 }.was_corrected());
        assert!(!DecodeOutcome::Clean { data: 1 }.was_corrected());
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(
            DecodeOutcome::DoubleError.to_string(),
            "double error detected"
        );
        assert_eq!(DecodeOutcome::Clean { data: 0 }.to_string(), "clean");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn secded64_round_trip(data: u64) {
            prop_assert_eq!(Secded64::encode(data).decode(), DecodeOutcome::Clean { data });
        }

        #[test]
        fn secded64_single_flip_corrected(data: u64, bit in 0u32..72) {
            let out = Secded64::encode(data).with_bit_flipped(bit).decode();
            prop_assert_eq!(out.data(), Some(data));
        }

        #[test]
        fn secded64_double_flip_detected(data: u64, a in 0u32..72, b in 0u32..72) {
            prop_assume!(a != b);
            let out = Secded64::encode(data)
                .with_bit_flipped(a)
                .with_bit_flipped(b)
                .decode();
            prop_assert_eq!(out, DecodeOutcome::DoubleError);
        }

        #[test]
        fn secded32_round_trip(data: u32) {
            prop_assert_eq!(
                Secded32::encode(data).decode(),
                DecodeOutcome::Clean { data: u64::from(data) }
            );
        }

        #[test]
        fn secded32_single_flip_corrected(data: u32, bit in 0u32..39) {
            let out = Secded32::encode(data).with_bit_flipped(bit).decode();
            prop_assert_eq!(out.data(), Some(u64::from(data)));
        }

        #[test]
        fn secded32_double_flip_detected(data: u32, a in 0u32..39, b in 0u32..39) {
            prop_assume!(a != b);
            let out = Secded32::encode(data)
                .with_bit_flipped(a)
                .with_bit_flipped(b)
                .decode();
            prop_assert_eq!(out, DecodeOutcome::DoubleError);
        }

        // The decoder's classification must track the injected flip count
        // exactly: 0 flips → Clean, 1 flip → Corrected at that position,
        // 2 distinct flips → DoubleError.
        #[test]
        fn secded64_classification_matches_flip_count(data: u64, a in 0u32..72, b in 0u32..72) {
            let cw = Secded64::encode(data);
            prop_assert_eq!(cw.decode(), DecodeOutcome::Clean { data });
            prop_assert_eq!(
                cw.with_bit_flipped(a).decode(),
                DecodeOutcome::Corrected { data, bit: a }
            );
            prop_assume!(a != b);
            prop_assert_eq!(
                cw.with_bit_flipped(a).with_bit_flipped(b).decode(),
                DecodeOutcome::DoubleError
            );
        }

        #[test]
        fn secded32_classification_matches_flip_count(data: u32, a in 0u32..39, b in 0u32..39) {
            let cw = Secded32::encode(data);
            prop_assert_eq!(cw.decode(), DecodeOutcome::Clean { data: u64::from(data) });
            prop_assert_eq!(
                cw.with_bit_flipped(a).decode(),
                DecodeOutcome::Corrected { data: u64::from(data), bit: a }
            );
            prop_assume!(a != b);
            prop_assert_eq!(
                cw.with_bit_flipped(a).with_bit_flipped(b).decode(),
                DecodeOutcome::DoubleError
            );
        }

        // Transport round-trip: raw bits survive from_raw/as_raw untouched.
        #[test]
        fn secded64_raw_round_trip(data: u64) {
            let cw = Secded64::encode(data);
            prop_assert_eq!(Secded64::from_raw(cw.as_raw()), cw);
        }

        #[test]
        fn secded32_raw_round_trip(data: u32) {
            let cw = Secded32::encode(data);
            prop_assert_eq!(Secded32::from_raw(cw.as_raw()), cw);
        }
    }
}
