//! Table-driven cyclic-redundancy checks.
//!
//! Three widths are provided, matching the detection hardware commonly
//! attached to NoC ejection ports:
//!
//! * [`Crc8`] — polynomial `0x07` (ATM HEC family), cheapest hardware.
//! * [`Crc16`] — polynomial `0x1021` (CCITT), the classic link-layer check.
//! * [`Crc32`] — reflected polynomial `0xEDB88320` (IEEE 802.3), strongest.
//!
//! Each type precomputes a 256-entry lookup table at construction so that
//! per-byte cost in the simulator's hot loop is one table access and one
//! XOR — the same structure a parallel hardware CRC realizes in one cycle.
//!
//! CRC guarantees used by the protocol layer: any CRC detects **all**
//! single-bit errors and all burst errors shorter than its width; for the
//! random multi-bit flips produced by the timing-error injector the escape
//! probability is `2^-width`, which the protocol layer treats as zero for
//! CRC-16/32 (and accounts separately as "silent corruption" when it is
//! not).

/// CRC-8 with polynomial `x^8 + x^2 + x + 1` (`0x07`), MSB-first.
///
/// # Example
///
/// ```
/// use noc_coding::crc::Crc8;
/// let crc = Crc8::new();
/// assert_eq!(crc.checksum(b"123456789"), 0xF4);
/// ```
#[derive(Debug, Clone)]
pub struct Crc8 {
    table: [u8; 256],
}

impl Crc8 {
    /// Generator polynomial (implicit `x^8` term omitted).
    pub const POLY: u8 = 0x07;

    /// Builds the lookup table for [`Self::POLY`].
    pub fn new() -> Self {
        let mut table = [0u8; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u8;
            for _ in 0..8 {
                crc = if crc & 0x80 != 0 {
                    (crc << 1) ^ Self::POLY
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        Self { table }
    }

    /// Computes the CRC-8 of `data` with initial value 0.
    pub fn checksum(&self, data: &[u8]) -> u8 {
        data.iter()
            .fold(0u8, |crc, &b| self.table[(crc ^ b) as usize])
    }

    /// Returns `true` when `expected` matches the checksum of `data`.
    pub fn verify(&self, data: &[u8], expected: u8) -> bool {
        self.checksum(data) == expected
    }
}

impl Default for Crc8 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-16/CCITT-FALSE with polynomial `0x1021`, initial value `0xFFFF`,
/// MSB-first.
///
/// # Example
///
/// ```
/// use noc_coding::crc::Crc16;
/// let crc = Crc16::new();
/// assert_eq!(crc.checksum(b"123456789"), 0x29B1);
/// ```
#[derive(Debug, Clone)]
pub struct Crc16 {
    table: [u16; 256],
}

impl Crc16 {
    /// Generator polynomial (implicit `x^16` term omitted).
    pub const POLY: u16 = 0x1021;
    /// Initial register value.
    pub const INIT: u16 = 0xFFFF;

    /// Builds the lookup table for [`Self::POLY`].
    pub fn new() -> Self {
        let mut table = [0u16; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = (i as u16) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ Self::POLY
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        Self { table }
    }

    /// Computes the CRC-16 of `data` starting from [`Self::INIT`].
    pub fn checksum(&self, data: &[u8]) -> u16 {
        data.iter().fold(Self::INIT, |crc, &b| {
            (crc << 8) ^ self.table[(((crc >> 8) ^ b as u16) & 0xFF) as usize]
        })
    }

    /// Returns `true` when `expected` matches the checksum of `data`.
    pub fn verify(&self, data: &[u8], expected: u16) -> bool {
        self.checksum(data) == expected
    }
}

impl Default for Crc16 {
    fn default() -> Self {
        Self::new()
    }
}

/// Slicing-by-8 lookup tables for the reflected IEEE polynomial,
/// built at compile time and shared process-wide: constructing a
/// [`Crc32`] costs nothing, so every `Network`, checkpoint writer, and
/// policy-snapshot codec shares the same static 8 KiB.
///
/// `CRC32_TABLES[0]` is the classic byte-at-a-time table;
/// `CRC32_TABLES[j][b]` extends it to the CRC of byte `b` followed by
/// `j` zero bytes, which lets eight input bytes be consumed with eight
/// independent loads XORed together.
static CRC32_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ Crc32::POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut j = 1usize;
    while j < 8 {
        let mut i = 0usize;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`), the check used
/// by the simulated destination-router CRC decoders.
///
/// The kernel is slicing-by-8 over process-wide static tables: eight
/// input bytes per step, no per-instance table construction.
///
/// # Example
///
/// ```
/// use noc_coding::crc::Crc32;
/// let crc = Crc32::new();
/// assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32;

impl Crc32 {
    /// Reflected generator polynomial.
    pub const POLY: u32 = 0xEDB8_8320;

    /// Returns a handle to the process-wide tables (free; kept for API
    /// compatibility with the per-instance-table era).
    pub fn new() -> Self {
        Self
    }

    /// Advances `crc` over eight message bytes packed little-endian in
    /// `w` (slicing-by-8: one step, eight independent table loads).
    #[inline]
    fn step8(crc: u32, w: u64) -> u32 {
        let x = w ^ u64::from(crc);
        let t = &CRC32_TABLES;
        t[7][(x & 0xFF) as usize]
            ^ t[6][((x >> 8) & 0xFF) as usize]
            ^ t[5][((x >> 16) & 0xFF) as usize]
            ^ t[4][((x >> 24) & 0xFF) as usize]
            ^ t[3][((x >> 32) & 0xFF) as usize]
            ^ t[2][((x >> 40) & 0xFF) as usize]
            ^ t[1][((x >> 48) & 0xFF) as usize]
            ^ t[0][(x >> 56) as usize]
    }

    /// Computes the CRC-32 of `data` (init `0xFFFF_FFFF`, final XOR
    /// `0xFFFF_FFFF`, matching zlib's `crc32`).
    pub fn checksum(&self, data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            crc = Self::step8(crc, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }

    /// Computes the CRC-32 of the four 32-bit words of a 128-bit flit
    /// payload, the granularity at which the simulated CRC encoder runs.
    /// Equivalent to serializing the words little-endian and calling
    /// [`checksum`](Self::checksum), in exactly two slicing steps.
    #[inline]
    pub fn checksum_words(&self, words: &[u64; 2]) -> u32 {
        Self::step8(Self::step8(0xFFFF_FFFF, words[0]), words[1]) ^ 0xFFFF_FFFF
    }

    /// Computes [`checksum_words`](Self::checksum_words) for a batch of
    /// independent 128-bit payloads — one per replicate lane of a
    /// batched simulation — in word-parallel groups of four.
    ///
    /// The four CRC chains share no state, so the slicing-table loads
    /// of all four lanes issue back to back and overlap in the load
    /// pipeline instead of serializing on a single chain's
    /// load-to-use latency. Lane `i` of `out` is exactly
    /// `checksum_words(&lanes[i])`; a ragged tail (`lanes.len() % 4`)
    /// falls back to the scalar kernel.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` and `out` differ in length.
    pub fn checksum_words_batch(&self, lanes: &[[u64; 2]], out: &mut [u32]) {
        assert_eq!(lanes.len(), out.len(), "one checksum slot per lane");
        let mut lanes4 = lanes.chunks_exact(4);
        let mut out4 = out.chunks_exact_mut(4);
        for (l, o) in (&mut lanes4).zip(&mut out4) {
            let mut c = [0xFFFF_FFFFu32; 4];
            for i in 0..4 {
                c[i] = Self::step8(c[i], l[i][0]);
            }
            for i in 0..4 {
                c[i] = Self::step8(c[i], l[i][1]);
            }
            for i in 0..4 {
                o[i] = c[i] ^ 0xFFFF_FFFF;
            }
        }
        for (l, o) in lanes4.remainder().iter().zip(out4.into_remainder()) {
            *o = self.checksum_words(l);
        }
    }

    /// Bit-at-a-time reference implementation (no tables) retained as
    /// the oracle the sliced kernel is property-tested against.
    #[doc(hidden)]
    pub fn checksum_reference(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ Self::POLY
                } else {
                    crc >> 1
                };
            }
        }
        crc ^ 0xFFFF_FFFF
    }

    /// Returns `true` when `expected` matches the checksum of `data`.
    pub fn verify(&self, data: &[u8], expected: u32) -> bool {
        self.checksum(data) == expected
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK_INPUT: &[u8] = b"123456789";

    #[test]
    fn crc8_matches_reference_check_value() {
        assert_eq!(Crc8::new().checksum(CHECK_INPUT), 0xF4);
    }

    #[test]
    fn crc16_matches_reference_check_value() {
        assert_eq!(Crc16::new().checksum(CHECK_INPUT), 0x29B1);
    }

    #[test]
    fn crc32_matches_reference_check_value() {
        assert_eq!(Crc32::new().checksum(CHECK_INPUT), 0xCBF4_3926);
    }

    #[test]
    fn crc8_empty_input_is_zero() {
        assert_eq!(Crc8::new().checksum(&[]), 0);
    }

    #[test]
    fn crc16_empty_input_is_init() {
        assert_eq!(Crc16::new().checksum(&[]), Crc16::INIT);
    }

    #[test]
    fn crc32_empty_input_is_zero() {
        assert_eq!(Crc32::new().checksum(&[]), 0);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let crc = Crc32::new();
        let data = [0xA5u8, 0x5A, 0x33, 0xCC, 0x0F, 0xF0, 0x81, 0x7E];
        let good = crc.checksum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc.checksum(&bad), good, "flip at {byte}:{bit} escaped");
            }
        }
    }

    #[test]
    fn crc16_detects_any_single_bit_flip() {
        let crc = Crc16::new();
        let data = [0x12u8, 0x34, 0x56, 0x78];
        let good = crc.checksum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc.checksum(&bad), good);
            }
        }
    }

    #[test]
    fn crc8_detects_any_single_bit_flip() {
        let crc = Crc8::new();
        let data = [0xFFu8, 0x00, 0xAA];
        let good = crc.checksum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc.checksum(&bad), good);
            }
        }
    }

    #[test]
    fn crc32_word_helper_matches_byte_path() {
        let crc = Crc32::new();
        let words = [0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210u64];
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&words[0].to_le_bytes());
        bytes[8..].copy_from_slice(&words[1].to_le_bytes());
        assert_eq!(crc.checksum_words(&words), crc.checksum(&bytes));
    }

    #[test]
    fn verify_round_trips() {
        let data = b"network-on-chip";
        let c8 = Crc8::new();
        let c16 = Crc16::new();
        let c32 = Crc32::new();
        assert!(c8.verify(data, c8.checksum(data)));
        assert!(c16.verify(data, c16.checksum(data)));
        assert!(c32.verify(data, c32.checksum(data)));
        assert!(!c32.verify(data, c32.checksum(data) ^ 1));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn crc32_single_flip_always_detected(data in proptest::collection::vec(any::<u8>(), 1..64),
                                             flip in 0usize..512) {
            let crc = Crc32::new();
            let good = crc.checksum(&data);
            let bit = flip % (data.len() * 8);
            let mut bad = data.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(crc.checksum(&bad), good);
        }

        #[test]
        fn crc16_single_flip_always_detected(data in proptest::collection::vec(any::<u8>(), 1..64),
                                             flip in 0usize..512) {
            let crc = Crc16::new();
            let good = crc.checksum(&data);
            let bit = flip % (data.len() * 8);
            let mut bad = data.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(crc.checksum(&bad), good);
        }

        #[test]
        fn crc32_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let a = Crc32::new().checksum(&data);
            let b = Crc32::new().checksum(&data);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn crc32_sliced_matches_bitwise_reference(
            data in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            prop_assert_eq!(
                Crc32::new().checksum(&data),
                Crc32::checksum_reference(&data)
            );
        }

        #[test]
        fn crc32_burst_shorter_than_width_detected(
            data in proptest::collection::vec(any::<u8>(), 8..32),
            start in 0usize..128,
            pattern in 1u32..u32::MAX,
        ) {
            // Any burst of length <= 32 bits is detected by CRC-32.
            let crc = Crc32::new();
            let good = crc.checksum(&data);
            let total_bits = data.len() * 8;
            let start = start % (total_bits - 32);
            let mut bad = data.clone();
            for i in 0..32 {
                if pattern & (1 << i) != 0 {
                    let bit = start + i;
                    bad[bit / 8] ^= 1 << (bit % 8);
                }
            }
            prop_assert_ne!(crc.checksum(&bad), good);
        }
    }
}
