//! Automatic-retransmission-query (ARQ) machinery.
//!
//! In the ARQ+ECC scheme every transmitted flit is held in an upstream
//! *retransmission buffer* until the downstream router acknowledges it.
//! A positive acknowledgement ([`AckKind::Ack`]) frees the slot; a negative
//! one ([`AckKind::Nack`], raised when the SECDED decoder detects an
//! uncorrectable error) makes the buffered copy available for resend.
//!
//! [`RetransmitBuffer`] is generic over the payload so the simulator can
//! store whole flits, and bounded in capacity because the hardware it
//! models is a small per-VC output buffer. It also supports a *timeout*
//! sweep for lost acknowledgements.

use std::collections::VecDeque;
use std::fmt;

/// A wrapping per-link flit sequence number.
///
/// # Example
///
/// ```
/// use noc_coding::arq::SequenceNumber;
/// let s = SequenceNumber::ZERO;
/// assert_eq!(s.next().value(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SequenceNumber(u64);

impl SequenceNumber {
    /// The first sequence number.
    pub const ZERO: Self = Self(0);

    /// Creates a sequence number from a raw value.
    pub fn new(value: u64) -> Self {
        Self(value)
    }

    /// The raw counter value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The successor (wrapping) sequence number.
    #[must_use]
    pub fn next(self) -> Self {
        Self(self.0.wrapping_add(1))
    }
}

impl fmt::Display for SequenceNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq#{}", self.0)
    }
}

/// The polarity of an acknowledgement flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AckKind {
    /// The flit was received intact (possibly after a SECDED correction);
    /// the upstream copy may be released.
    Ack,
    /// The flit arrived with an uncorrectable error; the upstream copy must
    /// be retransmitted.
    Nack,
}

impl fmt::Display for AckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ack => write!(f, "ACK"),
            Self::Nack => write!(f, "NACK"),
        }
    }
}

/// Outcome of feeding an acknowledgement into a [`RetransmitBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArqEvent {
    /// The acknowledged entry was found and released.
    Released,
    /// A NACK matched a buffered entry; the caller received a copy to
    /// retransmit.
    Retransmit,
    /// The sequence number did not match any buffered entry (duplicate or
    /// stale acknowledgement). Hardware ignores these.
    Unknown,
}

/// An entry held in the retransmission buffer.
#[derive(Debug, Clone)]
struct Pending<T> {
    seq: SequenceNumber,
    sent_at: u64,
    payload: T,
}

/// Bounded buffer of in-flight payloads awaiting acknowledgement.
///
/// The buffer preserves send order, matching the FIFO output buffer of the
/// modeled router. `T` is usually a flit.
///
/// # Example
///
/// ```
/// use noc_coding::arq::{AckKind, ArqEvent, RetransmitBuffer, SequenceNumber};
///
/// let mut buf: RetransmitBuffer<&str> = RetransmitBuffer::new(4);
/// let seq = buf.push("flit-a", 100).expect("buffer has space");
/// // Downstream NACKs: get the copy back for resend.
/// let (event, copy) = buf.acknowledge(seq, AckKind::Nack);
/// assert_eq!(event, ArqEvent::Retransmit);
/// assert_eq!(copy, Some("flit-a"));
/// // Eventually the retry succeeds.
/// let (event, _) = buf.acknowledge(seq, AckKind::Ack);
/// assert_eq!(event, ArqEvent::Released);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RetransmitBuffer<T> {
    capacity: usize,
    next_seq: SequenceNumber,
    pending: VecDeque<Pending<T>>,
}

impl<T: Clone> RetransmitBuffer<T> {
    /// Creates a buffer holding at most `capacity` unacknowledged payloads.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "retransmit buffer capacity must be positive");
        Self {
            capacity,
            next_seq: SequenceNumber::ZERO,
            pending: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of unacknowledged payloads currently held.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when nothing is awaiting acknowledgement.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Returns `true` when no further payload can be pushed.
    pub fn is_full(&self) -> bool {
        self.pending.len() >= self.capacity
    }

    /// Maximum number of in-flight payloads.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers a payload as sent at time `now` and returns its sequence
    /// number, or `None` when the buffer is full (the link must stall).
    pub fn push(&mut self, payload: T, now: u64) -> Option<SequenceNumber> {
        if self.is_full() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.next();
        self.pending.push_back(Pending {
            seq,
            sent_at: now,
            payload,
        });
        Some(seq)
    }

    /// Feeds an acknowledgement for `seq` into the buffer.
    ///
    /// Returns the event classification and, for a NACK that matched, a
    /// clone of the payload to retransmit (the original stays buffered
    /// until a matching ACK arrives).
    pub fn acknowledge(&mut self, seq: SequenceNumber, kind: AckKind) -> (ArqEvent, Option<T>) {
        let Some(idx) = self.pending.iter().position(|p| p.seq == seq) else {
            return (ArqEvent::Unknown, None);
        };
        match kind {
            AckKind::Ack => {
                self.pending.remove(idx);
                (ArqEvent::Released, None)
            }
            AckKind::Nack => {
                let copy = self.pending[idx].payload.clone();
                (ArqEvent::Retransmit, Some(copy))
            }
        }
    }

    /// Returns clones of every payload whose acknowledgement is older than
    /// `timeout` cycles at time `now`, refreshing their send timestamps.
    ///
    /// Models the ARQ timeout path for lost ACK/NACK flits.
    pub fn expired(&mut self, now: u64, timeout: u64) -> Vec<(SequenceNumber, T)> {
        let mut out = Vec::new();
        for p in &mut self.pending {
            if now.saturating_sub(p.sent_at) >= timeout {
                p.sent_at = now;
                out.push((p.seq, p.payload.clone()));
            }
        }
        out
    }

    /// Drops every buffered payload (e.g. on link reconfiguration).
    pub fn clear(&mut self) {
        self.pending.clear();
    }

    /// Iterates over `(sequence, payload)` pairs in send order.
    pub fn iter(&self) -> impl Iterator<Item = (SequenceNumber, &T)> {
        self.pending.iter().map(|p| (p.seq, &p.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_increase_monotonically() {
        let mut buf: RetransmitBuffer<u32> = RetransmitBuffer::new(8);
        let a = buf.push(1, 0).unwrap();
        let b = buf.push(2, 0).unwrap();
        let c = buf.push(3, 0).unwrap();
        assert!(a < b && b < c);
        assert_eq!(b, a.next());
    }

    #[test]
    fn push_fails_when_full() {
        let mut buf: RetransmitBuffer<u32> = RetransmitBuffer::new(2);
        assert!(buf.push(1, 0).is_some());
        assert!(buf.push(2, 0).is_some());
        assert!(buf.is_full());
        assert!(buf.push(3, 0).is_none());
    }

    #[test]
    fn ack_releases_slot() {
        let mut buf: RetransmitBuffer<u32> = RetransmitBuffer::new(1);
        let seq = buf.push(7, 0).unwrap();
        assert!(buf.is_full());
        let (event, copy) = buf.acknowledge(seq, AckKind::Ack);
        assert_eq!(event, ArqEvent::Released);
        assert_eq!(copy, None);
        assert!(buf.is_empty());
        assert!(buf.push(8, 1).is_some());
    }

    #[test]
    fn nack_returns_copy_and_keeps_entry() {
        let mut buf: RetransmitBuffer<u32> = RetransmitBuffer::new(2);
        let seq = buf.push(99, 0).unwrap();
        let (event, copy) = buf.acknowledge(seq, AckKind::Nack);
        assert_eq!(event, ArqEvent::Retransmit);
        assert_eq!(copy, Some(99));
        assert_eq!(buf.len(), 1, "entry must stay until ACK");
        // Repeated NACKs keep returning copies.
        let (event, copy) = buf.acknowledge(seq, AckKind::Nack);
        assert_eq!(event, ArqEvent::Retransmit);
        assert_eq!(copy, Some(99));
        let (event, _) = buf.acknowledge(seq, AckKind::Ack);
        assert_eq!(event, ArqEvent::Released);
        assert!(buf.is_empty());
    }

    #[test]
    fn unknown_sequence_is_ignored() {
        let mut buf: RetransmitBuffer<u32> = RetransmitBuffer::new(2);
        let seq = buf.push(1, 0).unwrap();
        let (event, copy) = buf.acknowledge(seq.next(), AckKind::Ack);
        assert_eq!(event, ArqEvent::Unknown);
        assert_eq!(copy, None);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn duplicate_ack_is_unknown() {
        let mut buf: RetransmitBuffer<u32> = RetransmitBuffer::new(2);
        let seq = buf.push(1, 0).unwrap();
        assert_eq!(buf.acknowledge(seq, AckKind::Ack).0, ArqEvent::Released);
        assert_eq!(buf.acknowledge(seq, AckKind::Ack).0, ArqEvent::Unknown);
    }

    #[test]
    fn expired_returns_timed_out_entries_and_refreshes() {
        let mut buf: RetransmitBuffer<u32> = RetransmitBuffer::new(4);
        let a = buf.push(10, 0).unwrap();
        let _b = buf.push(20, 90).unwrap();
        let out = buf.expired(100, 50);
        assert_eq!(out, vec![(a, 10)]);
        // Timestamp refreshed: nothing expires again immediately.
        assert!(buf.expired(101, 50).is_empty());
        // But later both expire.
        assert_eq!(buf.expired(200, 50).len(), 2);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut buf: RetransmitBuffer<u32> = RetransmitBuffer::new(4);
        buf.push(1, 0);
        buf.push(2, 0);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn iter_is_in_send_order() {
        let mut buf: RetransmitBuffer<&str> = RetransmitBuffer::new(4);
        buf.push("a", 0);
        buf.push("b", 0);
        buf.push("c", 0);
        let items: Vec<&&str> = buf.iter().map(|(_, p)| p).collect();
        assert_eq!(items, vec![&"a", &"b", &"c"]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RetransmitBuffer::<u32>::new(0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(AckKind::Ack.to_string(), "ACK");
        assert_eq!(AckKind::Nack.to_string(), "NACK");
        assert_eq!(SequenceNumber::new(3).to_string(), "seq#3");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pushing then ACKing everything always empties the buffer.
        #[test]
        fn ack_all_empties(values in proptest::collection::vec(any::<u32>(), 1..32)) {
            let mut buf = RetransmitBuffer::new(values.len());
            let seqs: Vec<_> = values
                .iter()
                .map(|&v| buf.push(v, 0).expect("capacity sized to input"))
                .collect();
            for seq in seqs {
                prop_assert_eq!(buf.acknowledge(seq, AckKind::Ack).0, ArqEvent::Released);
            }
            prop_assert!(buf.is_empty());
        }

        /// A NACK never loses data: the returned copy equals what was pushed.
        #[test]
        fn nack_returns_original(values in proptest::collection::vec(any::<u32>(), 1..16),
                                 pick in any::<proptest::sample::Index>()) {
            let mut buf = RetransmitBuffer::new(values.len());
            let seqs: Vec<_> = values
                .iter()
                .map(|&v| buf.push(v, 0).unwrap())
                .collect();
            let i = pick.index(values.len());
            let (_, copy) = buf.acknowledge(seqs[i], AckKind::Nack);
            prop_assert_eq!(copy, Some(values[i]));
        }

        /// len() never exceeds capacity regardless of operation order.
        #[test]
        fn len_bounded_by_capacity(ops in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut buf: RetransmitBuffer<u8> = RetransmitBuffer::new(4);
            let mut live: Vec<SequenceNumber> = Vec::new();
            for (t, op) in ops.into_iter().enumerate() {
                if op % 2 == 0 {
                    if let Some(seq) = buf.push(op, t as u64) {
                        live.push(seq);
                    }
                } else if let Some(seq) = live.pop() {
                    buf.acknowledge(seq, AckKind::Ack);
                }
                prop_assert!(buf.len() <= buf.capacity());
            }
        }
    }
}
