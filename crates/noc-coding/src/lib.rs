//! Error-control coding substrates for on-chip networks.
//!
//! This crate provides the three "hardware" building blocks that the
//! fault-tolerant router designs in the parent workspace rely on:
//!
//! * [`crc`] — cyclic-redundancy checks (CRC-8, CRC-16/CCITT, CRC-32/IEEE)
//!   used for *end-to-end* error detection at the destination router's local
//!   ejection port.
//! * [`hamming`] — Hamming single-error-correct / double-error-detect
//!   (SECDED) codes used for *per-hop* error correction on ECC-protected
//!   links ("ARQ+ECC" in the paper).
//! * [`arq`] — automatic-retransmission-query machinery: ACK/NACK messages,
//!   sequence numbers, and the upstream retransmission buffer that holds a
//!   copy of every in-flight flit until it is acknowledged.
//!
//! All types are deterministic, allocation-light, and independent of the
//! simulator so they can be tested (and property-tested) in isolation.
//!
//! # Example
//!
//! ```
//! use noc_coding::crc::Crc32;
//! use noc_coding::hamming::{Secded64, DecodeOutcome};
//!
//! // End-to-end CRC over a packet payload.
//! let crc = Crc32::new();
//! let payload = [0xDEu8, 0xAD, 0xBE, 0xEF];
//! let check = crc.checksum(&payload);
//! assert!(crc.verify(&payload, check));
//!
//! // Per-hop SECDED over a 64-bit word.
//! let code = Secded64::encode(0x0123_4567_89AB_CDEF);
//! let corrupted = code.with_bit_flipped(17);
//! match corrupted.decode() {
//!     DecodeOutcome::Corrected { data, .. } => assert_eq!(data, 0x0123_4567_89AB_CDEF),
//!     other => panic!("expected single-bit correction, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
pub mod crc;
pub mod hamming;

pub use arq::{AckKind, ArqEvent, RetransmitBuffer, SequenceNumber};
pub use crc::{Crc16, Crc32, Crc8};
pub use hamming::{DecodeOutcome, Secded32, Secded64};
