//! A CART regression tree: the supervised-learning baseline.
//!
//! The paper compares against DiTomaso et al. (MICRO 2016), which trains
//! decision trees offline to *predict the per-link timing-error rate*
//! from router metrics, then selects mitigation modes from the predicted
//! rate. This module provides the tree learner; the mode-selection
//! thresholds live with the controller in `rlnoc-core`.
//!
//! Training uses standard variance-reduction splitting with depth and
//! minimum-samples stopping rules. Inference is a root-to-leaf walk —
//! the cheap, fixed-latency comparator cascade that makes DT attractive
//! in hardware.

use serde::{Deserialize, Serialize};

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer samples.
    pub min_samples_split: usize,
    /// Do not split nodes whose target variance is already below this.
    pub min_variance: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_split: 8,
            min_variance: 1e-12,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained regression tree.
///
/// # Example
///
/// ```
/// use noc_rl::decision_tree::{DecisionTree, TreeParams};
///
/// // y = 1.0 when x0 > 0.5, else 0.0.
/// let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| if x[0] > 0.5 { 1.0 } else { 0.0 }).collect();
/// let tree = DecisionTree::fit(&xs, &ys, TreeParams::default());
/// assert!(tree.predict(&[0.9]) > 0.9);
/// assert!(tree.predict(&[0.1]) < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fits a tree to `(features, targets)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, lengths mismatch, or feature rows
    /// have inconsistent dimensionality.
    pub fn fit(features: &[Vec<f64>], targets: &[f64], params: TreeParams) -> Self {
        assert!(!features.is_empty(), "training set must be non-empty");
        assert_eq!(
            features.len(),
            targets.len(),
            "features/targets length mismatch"
        );
        let dim = features[0].len();
        assert!(
            features.iter().all(|f| f.len() == dim),
            "inconsistent feature dimensionality"
        );
        let mut tree = Self { nodes: Vec::new() };
        let indices: Vec<usize> = (0..features.len()).collect();
        tree.grow(features, targets, &indices, 0, &params);
        tree
    }

    /// Number of nodes (splits + leaves) — the hardware comparator budget.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than a split feature index encountered on
    /// the walk.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Grows a subtree over `indices`; returns its root node index.
    fn grow(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        indices: &[usize],
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / indices.len() as f64;
        let variance =
            indices.iter().map(|&i| (ys[i] - mean).powi(2)).sum::<f64>() / indices.len() as f64;
        let stop = depth >= params.max_depth
            || indices.len() < params.min_samples_split
            || variance <= params.min_variance;
        if stop {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = best_split(xs, ys, indices) else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| xs[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        // Reserve this node's slot before growing children.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        let left = self.grow(xs, ys, &left_idx, depth + 1, params);
        let right = self.grow(xs, ys, &right_idx, depth + 1, params);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }
}

/// Finds the (feature, threshold) minimizing the post-split weighted SSE.
fn best_split(xs: &[Vec<f64>], ys: &[f64], indices: &[usize]) -> Option<(usize, f64)> {
    let dim = xs[indices[0]].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
                                                    // `feature` selects a column across every sample row, so there is no
                                                    // single container to enumerate here.
    #[allow(clippy::needless_range_loop)]
    for feature in 0..dim {
        let mut values: Vec<(f64, f64)> =
            indices.iter().map(|&i| (xs[i][feature], ys[i])).collect();
        values.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Prefix sums for O(n) SSE evaluation per feature.
        let n = values.len();
        let mut prefix_sum = vec![0.0; n + 1];
        let mut prefix_sq = vec![0.0; n + 1];
        for (i, &(_, y)) in values.iter().enumerate() {
            prefix_sum[i + 1] = prefix_sum[i] + y;
            prefix_sq[i + 1] = prefix_sq[i] + y * y;
        }
        for split in 1..n {
            if values[split - 1].0 == values[split].0 {
                continue; // not a valid threshold between equal values
            }
            let (nl, nr) = (split as f64, (n - split) as f64);
            let (sl, sr) = (prefix_sum[split], prefix_sum[n] - prefix_sum[split]);
            let (ql, qr) = (prefix_sq[split], prefix_sq[n] - prefix_sq[split]);
            let sse = (ql - sl * sl / nl) + (qr - sr * sr / nr);
            let threshold = (values[split - 1].0 + values[split].0) / 2.0;
            if best.is_none_or(|(_, _, b)| sse < b) {
                best = Some((feature, threshold, sse));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![3.5; 20];
        let tree = DecisionTree::fit(&xs, &ys, TreeParams::default());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[100.0]), 3.5);
    }

    #[test]
    fn learns_step_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 1.0 }).collect();
        let tree = DecisionTree::fit(&xs, &ys, TreeParams::default());
        assert_eq!(tree.predict(&[10.0]), 0.0);
        assert_eq!(tree.predict(&[90.0]), 1.0);
    }

    #[test]
    fn learns_two_feature_interaction() {
        // y = 1 iff x0 > 0.5 AND x1 > 0.5.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 / 20.0, j as f64 / 20.0);
                xs.push(vec![a, b]);
                ys.push(if a > 0.5 && b > 0.5 { 1.0 } else { 0.0 });
            }
        }
        let tree = DecisionTree::fit(&xs, &ys, TreeParams::default());
        assert!(tree.predict(&[0.9, 0.9]) > 0.8);
        assert!(tree.predict(&[0.9, 0.1]) < 0.2);
        assert!(tree.predict(&[0.1, 0.9]) < 0.2);
    }

    #[test]
    fn depth_limit_bounds_tree_size() {
        let xs: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..256).map(|i| (i % 7) as f64).collect();
        let shallow = DecisionTree::fit(
            &xs,
            &ys,
            TreeParams {
                max_depth: 2,
                ..TreeParams::default()
            },
        );
        // Depth-2 binary tree has at most 7 nodes.
        assert!(shallow.num_nodes() <= 7);
        assert!(shallow.num_leaves() <= 4);
    }

    #[test]
    fn prediction_is_mean_of_leaf_region() {
        let xs: Vec<Vec<f64>> = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
        let ys = vec![1.0, 3.0, 10.0, 12.0];
        let tree = DecisionTree::fit(
            &xs,
            &ys,
            TreeParams {
                max_depth: 1,
                min_samples_split: 2,
                min_variance: 0.0,
            },
        );
        assert_eq!(tree.predict(&[0.05]), 2.0);
        assert_eq!(tree.predict(&[0.95]), 11.0);
    }

    #[test]
    fn regression_accuracy_on_noisy_linear_data() {
        // Deterministic pseudo-noise; tree should capture the trend.
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let ys: Vec<f64> = (0..200)
            .map(|i| {
                let x = i as f64 / 200.0;
                2.0 * x + 0.05 * ((i * 2654435761u64 % 100) as f64 / 100.0 - 0.5)
            })
            .collect();
        let tree = DecisionTree::fit(&xs, &ys, TreeParams::default());
        let mse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| (tree.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_panics() {
        let _ = DecisionTree::fit(&[], &[], TreeParams::default());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = DecisionTree::fit(&[vec![1.0]], &[1.0, 2.0], TreeParams::default());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Predictions always lie within the target range.
        #[test]
        fn predictions_within_target_range(
            ys in proptest::collection::vec(-100.0f64..100.0, 4..64),
            probe in -200.0f64..200.0,
        ) {
            let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let tree = DecisionTree::fit(&xs, &ys, TreeParams::default());
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let p = tree.predict(&[probe]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }

        /// Fitting is deterministic.
        #[test]
        fn fit_deterministic(ys in proptest::collection::vec(0.0f64..10.0, 4..32)) {
            let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let a = DecisionTree::fit(&xs, &ys, TreeParams::default());
            let b = DecisionTree::fit(&xs, &ys, TreeParams::default());
            prop_assert_eq!(a, b);
        }
    }
}
