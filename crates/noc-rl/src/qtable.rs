//! The tabular action-value function.
//!
//! One [`QTable`] per router maps `(state, action)` pairs to expected
//! returns. Values are updated with the temporal-difference rule of the
//! paper's Eq. (2):
//!
//! ```text
//! Q(s,a) ← (1−α)·Q(s,a) + α·[r + γ·max_a' Q(s',a')]
//! ```

use crate::NUM_ACTIONS;
use serde::{Deserialize, Serialize};

/// A dense `num_states × NUM_ACTIONS` table of Q-values.
///
/// # Example
///
/// ```
/// use noc_rl::qtable::QTable;
///
/// let mut q = QTable::new(100);
/// q.update(3, 1, 10.0, 4, 0.1, 0.5);
/// assert!(q.value(3, 1) > 0.0);
/// assert_eq!(q.best_action(3), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    num_states: usize,
    values: Vec<f64>,
    visits: Vec<u32>,
    updates: u64,
}

impl QTable {
    /// Creates a table of zeros (the paper initializes Q-values to 0).
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0`.
    pub fn new(num_states: usize) -> Self {
        Self::with_initial(num_states, 0.0)
    }

    /// Creates a table with every entry set to `initial`.
    ///
    /// An *optimistic* initial value (above the maximum achievable
    /// return) makes the greedy policy systematically try every action in
    /// every visited state before settling — important for convergence
    /// within the paper's pre-training budget when rewards are strictly
    /// positive.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0` or `initial` is not finite.
    pub fn with_initial(num_states: usize, initial: f64) -> Self {
        assert!(num_states > 0, "state space must be non-empty");
        assert!(initial.is_finite(), "initial Q-value must be finite");
        Self {
            num_states,
            values: vec![initial; num_states * NUM_ACTIONS],
            visits: vec![0; num_states * NUM_ACTIONS],
            updates: 0,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Total TD updates applied (for the computation-overhead analysis).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The Q-value of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range.
    pub fn value(&self, state: usize, action: usize) -> f64 {
        assert!(action < NUM_ACTIONS, "action out of range");
        self.values[state * NUM_ACTIONS + action]
    }

    /// All four Q-values of `state`.
    pub fn row(&self, state: usize) -> &[f64] {
        &self.values[state * NUM_ACTIONS..(state + 1) * NUM_ACTIONS]
    }

    /// The greedy action in `state` (lowest index wins ties — mode 0, the
    /// cheapest, is the tie-break default).
    pub fn best_action(&self, state: usize) -> usize {
        let row = self.row(state);
        let mut best = 0;
        for (a, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = a;
            }
        }
        best
    }

    /// The maximum Q-value in `state`.
    pub fn max_value(&self, state: usize) -> f64 {
        self.row(state)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Applies the temporal-difference update of Eq. (2).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or `alpha`/`gamma` are outside
    /// `[0, 1]`.
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        alpha: f64,
        gamma: f64,
    ) {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0,1]");
        let target = reward + gamma * self.max_value(next_state);
        let cell = &mut self.values[state * NUM_ACTIONS + action];
        *cell = (1.0 - alpha) * *cell + alpha * target;
        self.visits[state * NUM_ACTIONS + action] += 1;
        self.updates += 1;
    }

    /// How many TD updates have been applied to `(state, action)`.
    pub fn visit_count(&self, state: usize, action: usize) -> u32 {
        self.visits[state * NUM_ACTIONS + action]
    }

    /// States that have received at least one update, with their total
    /// visit counts, most-visited first.
    pub fn visited_states(&self) -> Vec<(usize, u32)> {
        let mut out: Vec<(usize, u32)> = (0..self.num_states)
            .filter_map(|s| {
                let total: u32 = (0..NUM_ACTIONS).map(|a| self.visit_count(s, a)).sum();
                (total > 0).then_some((s, total))
            })
            .collect();
        out.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_is_zero() {
        let q = QTable::new(10);
        for s in 0..10 {
            for a in 0..NUM_ACTIONS {
                assert_eq!(q.value(s, a), 0.0);
            }
        }
        assert_eq!(q.updates(), 0);
    }

    #[test]
    fn update_moves_toward_target() {
        let mut q = QTable::new(4);
        q.update(0, 2, 1.0, 1, 0.5, 0.0);
        assert_eq!(q.value(0, 2), 0.5);
        q.update(0, 2, 1.0, 1, 0.5, 0.0);
        assert_eq!(q.value(0, 2), 0.75);
    }

    #[test]
    fn discounted_bootstrap_uses_next_state_max() {
        let mut q = QTable::new(4);
        // Prime the next state.
        q.update(1, 3, 2.0, 2, 1.0, 0.0); // Q(1,3) = 2
        q.update(0, 0, 0.0, 1, 1.0, 0.5); // target = 0 + 0.5 * 2 = 1
        assert_eq!(q.value(0, 0), 1.0);
    }

    #[test]
    fn best_action_breaks_ties_toward_mode_zero() {
        let q = QTable::new(4);
        assert_eq!(q.best_action(0), 0, "all-zero row defaults to mode 0");
    }

    #[test]
    fn best_action_finds_maximum() {
        let mut q = QTable::new(4);
        q.update(2, 1, 5.0, 3, 1.0, 0.0);
        q.update(2, 3, 7.0, 3, 1.0, 0.0);
        assert_eq!(q.best_action(2), 3);
        assert_eq!(q.max_value(2), 7.0);
    }

    #[test]
    fn repeated_updates_converge_to_constant_reward() {
        // With gamma = 0 and constant reward r, Q converges to r.
        let mut q = QTable::new(2);
        for _ in 0..200 {
            q.update(0, 0, 3.0, 1, 0.1, 0.0);
        }
        assert!((q.value(0, 0) - 3.0).abs() < 1e-6);
        assert_eq!(q.updates(), 200);
    }

    #[test]
    fn row_has_four_entries() {
        let q = QTable::new(3);
        assert_eq!(q.row(1).len(), NUM_ACTIONS);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let mut q = QTable::new(2);
        q.update(0, 0, 1.0, 1, 1.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "state space must be non-empty")]
    fn empty_table_panics() {
        let _ = QTable::new(0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Q-values stay bounded by max |reward| / (1 - gamma), the
        /// standard contraction bound.
        #[test]
        fn values_bounded_by_return_bound(
            updates in proptest::collection::vec((0usize..8, 0usize..4, -1.0f64..1.0, 0usize..8), 1..200)
        ) {
            let mut q = QTable::new(8);
            let gamma = 0.5;
            for (s, a, r, s2) in updates {
                q.update(s, a, r, s2, 0.1, gamma);
            }
            let bound = 1.0 / (1.0 - gamma) + 1e-9;
            for s in 0..8 {
                for a in 0..NUM_ACTIONS {
                    prop_assert!(q.value(s, a).abs() <= bound);
                }
            }
        }

        /// best_action is consistent with max_value.
        #[test]
        fn best_matches_max(
            updates in proptest::collection::vec((0usize..4, 0usize..4, -1.0f64..1.0), 1..50)
        ) {
            let mut q = QTable::new(4);
            for (s, a, r) in updates {
                q.update(s, a, r, (s + 1) % 4, 0.2, 0.3);
            }
            for s in 0..4 {
                prop_assert_eq!(q.value(s, q.best_action(s)), q.max_value(s));
            }
        }
    }
}

/// Error parsing a persisted Q-table.
#[derive(Debug)]
pub struct ParseQTableError {
    line: usize,
    message: String,
}

impl std::fmt::Display for ParseQTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "q-table parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQTableError {}

impl QTable {
    /// Writes the table in a sparse, line-oriented text format: a header
    /// with the state count, then one line per visited state holding the
    /// four Q-values and the four visit counts.
    ///
    /// Persisting a pre-trained policy lets deployments skip the
    /// pre-training phase entirely.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn save<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "qtable {} {}", self.num_states, self.updates)?;
        for (state, _) in self.visited_states() {
            write!(writer, "{state}")?;
            for a in 0..NUM_ACTIONS {
                write!(writer, " {:e}", self.value(state, a))?;
            }
            for a in 0..NUM_ACTIONS {
                write!(writer, " {}", self.visit_count(state, a))?;
            }
            writeln!(writer)?;
        }
        Ok(())
    }

    /// Reads a table previously written by [`save`](Self::save).
    /// Unlisted states are zero-valued, as after [`QTable::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseQTableError`] on malformed input.
    pub fn load<R: std::io::BufRead>(reader: R) -> Result<Self, ParseQTableError> {
        let err = |line: usize, message: String| ParseQTableError { line, message };
        let mut lines = reader.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| err(1, "empty input".into()))?;
        let header = header.map_err(|e| err(1, e.to_string()))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("qtable") {
            return Err(err(1, "missing `qtable` header".into()));
        }
        let num_states: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(1, "bad state count".into()))?;
        let updates: u64 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(1, "bad update count".into()))?;
        let mut table = QTable::new(num_states);
        table.updates = updates;
        for (i, line) in lines {
            let line = line.map_err(|e| err(i + 1, e.to_string()))?;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 1 + 2 * NUM_ACTIONS {
                return Err(err(
                    i + 1,
                    format!("expected 9 fields, got {}", fields.len()),
                ));
            }
            let state: usize = fields[0]
                .parse()
                .map_err(|e| err(i + 1, format!("bad state index: {e}")))?;
            if state >= num_states {
                return Err(err(i + 1, format!("state {state} out of range")));
            }
            for a in 0..NUM_ACTIONS {
                let value: f64 = fields[1 + a]
                    .parse()
                    .map_err(|e| err(i + 1, format!("bad value: {e}")))?;
                let visits: u32 = fields[1 + NUM_ACTIONS + a]
                    .parse()
                    .map_err(|e| err(i + 1, format!("bad visit count: {e}")))?;
                table.values[state * NUM_ACTIONS + a] = value;
                table.visits[state * NUM_ACTIONS + a] = visits;
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    fn trained_table() -> QTable {
        let mut q = QTable::new(50);
        q.update(3, 1, 1.5, 4, 0.5, 0.5);
        q.update(4, 2, -0.25, 3, 0.5, 0.5);
        q.update(49, 0, 3.125e-3, 0, 0.1, 0.5);
        q
    }

    #[test]
    fn save_load_round_trip() {
        let q = trained_table();
        let mut buf = Vec::new();
        q.save(&mut buf).expect("write to vec");
        let loaded = QTable::load(buf.as_slice()).expect("parse own output");
        assert_eq!(loaded, q);
    }

    #[test]
    fn unlisted_states_stay_zero() {
        let q = trained_table();
        let mut buf = Vec::new();
        q.save(&mut buf).expect("write");
        let loaded = QTable::load(buf.as_slice()).expect("parse");
        assert_eq!(loaded.value(10, 0), 0.0);
        assert_eq!(loaded.visit_count(10, 0), 0);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(QTable::load(&b"not a table"[..]).is_err());
        assert!(QTable::load(&b"qtable x 0"[..]).is_err());
        assert!(QTable::load(&b"qtable 4 0\n9 0 0 0 0 0 0 0 0"[..]).is_err());
        assert!(QTable::load(&b"qtable 4 0\n1 0 0 0"[..]).is_err());
        assert!(QTable::load(&b""[..]).is_err());
    }

    #[test]
    fn round_trip_preserves_policy() {
        let q = trained_table();
        let mut buf = Vec::new();
        q.save(&mut buf).expect("write");
        let loaded = QTable::load(buf.as_slice()).expect("parse");
        for s in [3usize, 4, 49] {
            assert_eq!(loaded.best_action(s), q.best_action(s));
        }
        assert_eq!(loaded.updates(), q.updates());
    }
}
