//! The per-router ε-greedy Q-learning agent.
//!
//! At every control epoch the agent receives the reward earned by its
//! previous action together with the newly observed state, applies the
//! temporal-difference update to `Q(s, a)`, and picks the next action —
//! greedy with probability `1 − ε`, uniformly random with probability
//! `ε` (the paper's exploration scheme with ε = 0.1).

use crate::qtable::QTable;
use crate::schedule::Schedule;
use crate::NUM_ACTIONS;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rlnoc_telemetry::{Telemetry, TimerHandle};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a Q-learning agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Learning-rate schedule (paper: constant 0.1).
    pub alpha: Schedule,
    /// Discount factor γ (paper: 0.5).
    pub gamma: f64,
    /// Exploration-probability schedule (paper: constant 0.1).
    pub epsilon: Schedule,
    /// Initial operation mode (paper: mode 0).
    pub initial_action: usize,
    /// Initial Q-value for every (state, action) pair. The paper uses 0;
    /// an optimistic value (above the best achievable return) forces the
    /// greedy policy to sample each action in a state before committing.
    pub initial_q: f64,
    /// Confidence gate: when fewer than three actions of a state have
    /// ever been updated, greedy selection returns this safe default
    /// instead of trusting one or two noisy samples. `None` disables the
    /// gate (the paper's literal behaviour). Prevents self-selecting
    /// attractors — states that only arise as a consequence of one mode's
    /// behaviour and therefore never fairly sample the alternatives.
    pub fallback_action: Option<usize>,
}

impl AgentConfig {
    /// The paper's §IV-C initialization: α = 0.1, γ = 0.5, ε = 0.1,
    /// starting in mode 0.
    pub fn paper_default() -> Self {
        Self {
            alpha: Schedule::Constant(0.1),
            gamma: 0.5,
            epsilon: Schedule::Constant(0.1),
            initial_action: 0,
            initial_q: 0.0,
            fallback_action: None,
        }
    }

    /// The paper's parameters with an optimistic initial Q-value, the
    /// configuration used by the experiment driver (see DESIGN.md).
    pub fn optimistic(initial_q: f64) -> Self {
        Self {
            initial_q,
            ..Self::paper_default()
        }
    }
}

/// One router's learning agent.
///
/// # Example
///
/// ```
/// use noc_rl::agent::{AgentConfig, QLearningAgent};
/// use noc_rl::schedule::Schedule;
///
/// let config = AgentConfig {
///     epsilon: Schedule::Constant(0.2),
///     ..AgentConfig::paper_default()
/// };
/// let mut agent = QLearningAgent::new(100, config, 7);
/// let mut action = agent.observe_and_act(0, 0.0);
/// for _ in 0..300 {
///     // Reward action 2 whenever it is taken in state 0.
///     let reward = if action == 2 { 1.0 } else { -0.1 };
///     action = agent.observe_and_act(0, reward);
/// }
/// assert_eq!(agent.q_table().best_action(0), 2);
/// ```
#[derive(Debug, Clone)]
pub struct QLearningAgent {
    q: QTable,
    config: AgentConfig,
    rng: SmallRng,
    step: u64,
    last: Option<(usize, usize)>,
    exploration_moves: u64,
    learning: bool,
    td_timer: TimerHandle,
    last_td_delta: f64,
    /// Most recent ε observed by the runtime invariant checker; the
    /// schedule must never rise above it (`verify` feature only).
    #[cfg(feature = "verify")]
    verify_last_eps: f64,
}

/// `true` when the process opted into per-step agent-state invariant
/// checking via `RLNOC_VERIFY=1` (or `true`). Read once and cached.
#[cfg(feature = "verify")]
pub(crate) fn verify_armed() -> bool {
    static ARMED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ARMED.get_or_init(|| {
        matches!(
            std::env::var("RLNOC_VERIFY").as_deref(),
            Ok("1") | Ok("true")
        )
    })
}

impl QLearningAgent {
    /// Creates an agent over `num_states` states.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0`, `initial_action` is out of range, or
    /// `gamma` is outside `[0, 1]`.
    pub fn new(num_states: usize, config: AgentConfig, seed: u64) -> Self {
        assert!(
            config.initial_action < NUM_ACTIONS,
            "initial action out of range"
        );
        assert!(
            (0.0..=1.0).contains(&config.gamma),
            "gamma must be in [0,1]"
        );
        Self {
            q: QTable::with_initial(num_states, config.initial_q),
            config,
            rng: SmallRng::seed_from_u64(seed),
            step: 0,
            last: None,
            exploration_moves: 0,
            learning: true,
            td_timer: TimerHandle::default(),
            last_td_delta: 0.0,
            #[cfg(feature = "verify")]
            verify_last_eps: f64::INFINITY,
        }
    }

    /// Installs a telemetry handle: TD updates are timed under the
    /// `rl.td_update` span. Inert (the default) until called with an
    /// enabled handle.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.td_timer = telemetry.timer("rl.td_update");
    }

    /// The learned table.
    pub fn q_table(&self) -> &QTable {
        &self.q
    }

    /// Control epochs observed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// How many actions were exploratory (random) rather than greedy.
    pub fn exploration_moves(&self) -> u64 {
        self.exploration_moves
    }

    /// Whether learning updates are applied (disabled for frozen-policy
    /// evaluation).
    pub fn learning_enabled(&self) -> bool {
        self.learning
    }

    /// One agent step: credit `reward` to the previous `(state, action)`
    /// via the TD rule, then select the action for `state`.
    ///
    /// The first call (no previous action) performs no update and returns
    /// the configured initial action.
    pub fn observe_and_act(&mut self, state: usize, reward: f64) -> usize {
        self.credit_previous(state, reward);
        let action = if self.last.is_none() {
            self.config.initial_action
        } else {
            let eps = self.config.epsilon.value(self.step);
            if self.rng.gen_bool(eps.clamp(0.0, 1.0)) {
                self.exploration_moves += 1;
                self.rng.gen_range(0..NUM_ACTIONS)
            } else {
                let greedy = self.q.best_action(state);
                match self.config.fallback_action {
                    Some(fallback) => {
                        let covered = (0..NUM_ACTIONS)
                            .filter(|&a| self.q.visit_count(state, a) > 0)
                            .count();
                        if covered < 3 {
                            fallback
                        } else {
                            greedy
                        }
                    }
                    None => greedy,
                }
            }
        };
        self.last = Some((state, action));
        self.step += 1;
        #[cfg(feature = "verify")]
        self.verify_agent_state(state, action);
        action
    }

    /// Like [`observe_and_act`](Self::observe_and_act) but with the next
    /// action imposed by the caller instead of the ε-greedy policy.
    ///
    /// Used for curriculum pre-training: forcing the whole fleet into one
    /// mode lets every agent learn that mode's *collective* value, which
    /// a single agent's unilateral deviation cannot reveal.
    ///
    /// # Panics
    ///
    /// Panics if `action >= NUM_ACTIONS`.
    pub fn observe_and_force(&mut self, state: usize, reward: f64, action: usize) -> usize {
        assert!(action < NUM_ACTIONS, "action out of range");
        self.credit_previous(state, reward);
        self.last = Some((state, action));
        self.step += 1;
        #[cfg(feature = "verify")]
        self.verify_agent_state(state, action);
        action
    }

    /// Runtime agent-state invariants (`verify` feature, armed by
    /// `RLNOC_VERIFY=1`): every Q-value finite, the selected action in
    /// range, ε within `[0, 1]` after clamping and non-increasing along
    /// the schedule, and the learning rate α within `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic on the first violated invariant.
    #[cfg(feature = "verify")]
    fn verify_agent_state(&mut self, state: usize, action: usize) {
        if !verify_armed() {
            return;
        }
        assert!(
            action < NUM_ACTIONS,
            "selected action {action} out of range"
        );
        assert!(
            state < self.q.num_states(),
            "state {state} outside the {}-state table",
            self.q.num_states()
        );
        for s in 0..self.q.num_states() {
            for (a, &v) in self.q.row(s).iter().enumerate() {
                assert!(
                    v.is_finite(),
                    "Q[{s}][{a}] diverged to {v} at step {}",
                    self.step
                );
            }
        }
        let eps = self.current_epsilon();
        assert!(
            (0.0..=1.0).contains(&eps),
            "ε = {eps} escaped [0,1] at step {}",
            self.step
        );
        assert!(
            eps <= self.verify_last_eps,
            "ε rose from {} to {eps} at step {} (schedule must be non-increasing)",
            self.verify_last_eps,
            self.step
        );
        self.verify_last_eps = eps;
        let alpha = self.config.alpha.value(self.step);
        assert!(
            alpha.is_finite() && 0.0 < alpha && alpha <= 1.0,
            "α = {alpha} escaped (0,1] at step {}",
            self.step
        );
    }

    /// Applies the TD update crediting `reward` to the previous
    /// `(state, action)` pair, tracking the update magnitude and timing
    /// the update under the `rl.td_update` span when telemetry is wired.
    fn credit_previous(&mut self, state: usize, reward: f64) {
        if let Some((s, a)) = self.last {
            if self.learning {
                let _span = self.td_timer.start();
                let alpha = self.config.alpha.value(self.step);
                let before = self.q.value(s, a);
                self.q.update(s, a, reward, state, alpha, self.config.gamma);
                self.last_td_delta = (self.q.value(s, a) - before).abs();
            }
        }
    }

    /// Freezes or resumes learning (ε-greedy selection continues either
    /// way; set ε to zero for fully greedy evaluation).
    pub fn set_learning(&mut self, enabled: bool) {
        self.learning = enabled;
    }

    /// Replaces the agent's Q-table with `table` — the load half of
    /// policy snapshotting. The pending `(state, action)` credit is
    /// cleared so the imported table is never updated with a reward
    /// earned under the old policy.
    ///
    /// # Errors
    ///
    /// Returns the table unchanged when its state count differs from the
    /// agent's.
    pub fn import_table(&mut self, table: QTable) -> Result<(), QTable> {
        if table.num_states() != self.q.num_states() {
            return Err(table);
        }
        self.q = table;
        self.last = None;
        self.last_td_delta = 0.0;
        Ok(())
    }

    /// Switches the agent to deployed-policy (inference-only) operation:
    /// TD updates stop and exploration is disabled, so every decision is
    /// the frozen table's greedy action.
    pub fn freeze(&mut self) {
        self.set_learning(false);
        self.set_epsilon(Schedule::Constant(0.0));
    }

    /// Replaces the exploration schedule (e.g. ε → 0 after pre-training).
    pub fn set_epsilon(&mut self, epsilon: Schedule) {
        self.config.epsilon = epsilon;
        // A deliberate schedule swap restarts the monotonicity baseline.
        #[cfg(feature = "verify")]
        {
            self.verify_last_eps = f64::INFINITY;
        }
    }

    /// The exploration probability the next action draw will use.
    pub fn current_epsilon(&self) -> f64 {
        self.config.epsilon.value(self.step).clamp(0.0, 1.0)
    }

    /// Magnitude of the most recent TD update to the Q-table (0.0 before
    /// any update). This is the convergence signal exported per epoch as
    /// `max_q_delta`.
    pub fn last_td_delta(&self) -> f64 {
        self.last_td_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(seed: u64) -> QLearningAgent {
        QLearningAgent::new(16, AgentConfig::paper_default(), seed)
    }

    #[test]
    fn first_action_is_initial_mode() {
        let mut a = agent(1);
        assert_eq!(a.observe_and_act(0, 0.0), 0);
    }

    #[test]
    fn learns_rewarding_action() {
        let mut a = QLearningAgent::new(
            4,
            AgentConfig {
                epsilon: Schedule::Constant(0.2),
                ..AgentConfig::paper_default()
            },
            7,
        );
        let mut action = a.observe_and_act(0, 0.0);
        for _ in 0..300 {
            let reward = if action == 3 { 1.0 } else { -0.1 };
            action = a.observe_and_act(0, reward);
        }
        assert_eq!(a.q_table().best_action(0), 3);
    }

    #[test]
    fn zero_epsilon_is_fully_greedy() {
        let mut a = QLearningAgent::new(
            4,
            AgentConfig {
                epsilon: Schedule::Constant(0.0),
                ..AgentConfig::paper_default()
            },
            9,
        );
        let mut last = a.observe_and_act(0, 0.0);
        for _ in 0..100 {
            last = a.observe_and_act(0, if last == 0 { 1.0 } else { 0.0 });
        }
        assert_eq!(a.exploration_moves(), 0);
    }

    #[test]
    fn epsilon_one_always_explores() {
        let mut a = QLearningAgent::new(
            4,
            AgentConfig {
                epsilon: Schedule::Constant(1.0),
                ..AgentConfig::paper_default()
            },
            11,
        );
        a.observe_and_act(0, 0.0);
        for _ in 0..50 {
            a.observe_and_act(0, 0.0);
        }
        assert_eq!(a.exploration_moves(), 50);
    }

    #[test]
    fn optimistic_init_tries_every_action_greedily() {
        // With ε = 0 and an optimistic initial value, the greedy policy
        // alone must cycle through all four actions in a revisited state.
        let mut a = QLearningAgent::new(
            4,
            AgentConfig {
                epsilon: Schedule::Constant(0.0),
                ..AgentConfig::optimistic(10.0)
            },
            5,
        );
        let mut seen = [false; 4];
        let mut action = a.observe_and_act(0, 0.0);
        for _ in 0..12 {
            seen[action] = true;
            action = a.observe_and_act(0, 1.0);
        }
        assert!(seen.iter().all(|&s| s), "not all actions tried: {seen:?}");
    }

    #[test]
    fn frozen_agent_stops_updating() {
        let mut a = agent(3);
        a.observe_and_act(0, 0.0);
        a.observe_and_act(1, 5.0);
        let snapshot = a.q_table().clone();
        a.set_learning(false);
        for _ in 0..20 {
            a.observe_and_act(1, 123.0);
        }
        assert_eq!(a.q_table(), &snapshot, "no updates while frozen");
        assert!(!a.learning_enabled());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut a = agent(seed);
            (0..100)
                .map(|i| a.observe_and_act(i % 16, (i % 3) as f64))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn steps_count_calls() {
        let mut a = agent(0);
        for i in 0..7 {
            a.observe_and_act(i, 0.0);
        }
        assert_eq!(a.steps(), 7);
    }

    #[test]
    fn import_table_replaces_policy_and_clears_pending_credit() {
        let mut a = QLearningAgent::new(
            16,
            AgentConfig {
                epsilon: Schedule::Constant(0.0),
                ..AgentConfig::paper_default()
            },
            1,
        );
        a.observe_and_act(0, 0.0); // pending credit on (0, initial)
        let mut trained = QTable::new(16);
        for _ in 0..50 {
            trained.update(0, 2, 1.0, 0, 0.5, 0.0);
        }
        a.import_table(trained.clone()).expect("state counts match");
        a.freeze();
        // The pending credit was cleared: the first post-import step is a
        // fresh start (initial action, no update), after which decisions
        // are the imported table's greedy policy.
        assert_eq!(a.observe_and_act(0, 999.0), 0, "fresh start");
        let action = a.observe_and_act(0, 999.0);
        assert_eq!(action, 2, "greedy action comes from the imported table");
        assert_eq!(a.q_table(), &trained, "no stray update applied");
    }

    #[test]
    fn import_table_rejects_mismatched_state_space() {
        let mut a = agent(1);
        let wrong = QTable::new(9);
        assert!(a.import_table(wrong).is_err());
    }

    #[test]
    fn frozen_agent_is_greedy_and_static() {
        let mut a = agent(4);
        a.observe_and_act(0, 0.0);
        a.observe_and_act(1, 2.0);
        a.freeze();
        let snapshot = a.q_table().clone();
        let explorations = a.exploration_moves();
        for _ in 0..200 {
            a.observe_and_act(1, 5.0);
        }
        assert_eq!(a.q_table(), &snapshot, "frozen agent must not learn");
        assert_eq!(a.exploration_moves(), explorations, "nor explore");
        assert_eq!(a.current_epsilon(), 0.0);
    }

    #[test]
    #[should_panic(expected = "initial action out of range")]
    fn bad_initial_action_panics() {
        let _ = QLearningAgent::new(
            4,
            AgentConfig {
                initial_action: 9,
                ..AgentConfig::paper_default()
            },
            0,
        );
    }
}
