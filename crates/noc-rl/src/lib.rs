//! Reinforcement-learning and supervised-learning substrates for NoC
//! control policies.
//!
//! * [`state`] — Table I's feature vector and its discretization into a
//!   compact tabular state index ({5,5,5,4,4,5} bins → 10 000 states).
//! * [`qtable`] — the tabular action-value function with the
//!   temporal-difference update of Eq. (2).
//! * [`agent`] — the ε-greedy Q-learning agent each router runs.
//! * [`schedule`] — learning-rate / exploration schedules.
//! * [`decision_tree`] — a CART regression tree, the supervised baseline
//!   (DiTomaso et al., MICRO 2016) the paper compares against.
//! * [`snapshot`] — versioned, CRC-32-checksummed persistence of trained
//!   policy banks (train-once/eval-many and checkpoint/resume).
//!
//! # Example
//!
//! ```
//! use noc_rl::agent::{AgentConfig, QLearningAgent};
//! use noc_rl::state::{RouterFeatures, StateSpace};
//!
//! let space = StateSpace::paper_default();
//! let mut agent = QLearningAgent::new(space.num_states(), AgentConfig::paper_default(), 7);
//! let features = RouterFeatures {
//!     buffer_occupancy: 3.0,
//!     input_utilization: 0.05,
//!     output_utilization: 0.06,
//!     input_nack_rate: 0.001,
//!     output_nack_rate: 0.0,
//!     temperature_c: 62.0,
//!     ..Default::default()
//! };
//! let state = space.discretize(&features);
//! let action = agent.observe_and_act(state, 0.5);
//! assert!(action < 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod decision_tree;
pub mod qtable;
pub mod schedule;
pub mod snapshot;
pub mod state;

pub use agent::{AgentConfig, QLearningAgent};
pub use decision_tree::{DecisionTree, TreeParams};
pub use qtable::QTable;
pub use schedule::Schedule;
pub use snapshot::{PolicySnapshot, SnapshotError};
pub use state::{RouterFeatures, StateSpace};

/// Number of actions: the four fault-tolerant operation modes.
pub const NUM_ACTIONS: usize = 4;
