//! The RL state space: Table I's features and their discretization.
//!
//! The paper's Table I lists six per-router features. Features 1–5 are
//! observed per port; to keep the state-action table tabular (the paper's
//! own requirement that "Q-learning converges in feasible time") they are
//! aggregated across ports before discretization — see DESIGN.md for the
//! full argument.
//!
//! Discretization follows §IV-B: features 1–3 and 6 use five bins each,
//! features 4–5 (NACK rates) use four; bins are equal-width in linear
//! space for utilizations/temperature and in log space for NACK rates.
//! The observed ranges quoted by the paper fix the scales: temperature in
//! [50, 100] °C and link utilization up to 0.3 flits/cycle.

use serde::{Deserialize, Serialize};

/// The six observed features of one router (Table I), aggregated over
/// ports.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RouterFeatures {
    /// Mean number of occupied input VCs (0..=20 for a 5-port, 4-VC
    /// router).
    pub buffer_occupancy: f64,
    /// Mean input link utilization, flits/cycle (0..~0.3).
    pub input_utilization: f64,
    /// Mean output link utilization, flits/cycle.
    pub output_utilization: f64,
    /// NACKs received per transmitted flit.
    pub input_nack_rate: f64,
    /// NACKs issued per received flit.
    pub output_nack_rate: f64,
    /// Router temperature, °C (50..100 observed).
    pub temperature_c: f64,
    /// Local hard-fault degree: the fraction of this router's existing
    /// compass links that have permanently failed (1.0 if the router
    /// itself is dead). 0.0 on a healthy mesh — beyond the paper's
    /// Table I, so the default state space ignores it (one bin) and
    /// fault-aware policies opt in via
    /// [`StateSpace::with_fault_bins`].
    pub fault_degree: f64,
}

/// Maps [`RouterFeatures`] to a dense state index.
///
/// # Example
///
/// ```
/// use noc_rl::state::{RouterFeatures, StateSpace};
///
/// let space = StateSpace::paper_default();
/// assert_eq!(space.num_states(), 10_000);
/// let idle = space.discretize(&RouterFeatures::default());
/// assert!(idle < space.num_states());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSpace {
    /// Bin counts per feature, in Table I order.
    bins: [usize; 6],
    /// Linear ranges for features 1–3 and 6: `(min, max)`.
    buffer_range: (f64, f64),
    util_range: (f64, f64),
    temp_range: (f64, f64),
    /// Log-space NACK-rate bin edges (shared by features 4–5): a rate
    /// below `nack_log_min` falls in bin 0; each decade above moves up a
    /// bin.
    nack_log_min: f64,
    /// Bin count for the local hard-fault degree, appended as the
    /// *last* (least-significant) index dimension so that `1` — the
    /// paper's fault-free default — leaves every state index and the
    /// total state count exactly as they were before the feature
    /// existed.
    fault_bins: usize,
}

impl StateSpace {
    /// The paper's discretization: bins {5,5,5,4,4,5}, utilization scaled
    /// to the observed 0.3 flits/cycle maximum, temperature bins of 10 °C
    /// over the observed operating range, NACK-rate decades starting at
    /// 10⁻⁴.
    ///
    /// The temperature edges are anchored at [45, 95] °C so that the
    /// mode-0/mode-1 cost crossover of the default calibration (~65 °C)
    /// falls on a bin boundary — with the crossover mid-bin, one bin
    /// would mix both regimes and the tabular policy could not separate
    /// them.
    pub fn paper_default() -> Self {
        Self {
            bins: [5, 5, 5, 4, 4, 5],
            buffer_range: (0.0, 20.0),
            util_range: (0.0, 0.3),
            temp_range: (45.0, 95.0),
            nack_log_min: 1e-4,
            fault_bins: 1,
        }
    }

    /// Extends this space with `fault_bins` bins for the local
    /// hard-fault degree (healthy → partially amputated → dead). `1`
    /// returns the space unchanged; `3` is the recommended granularity
    /// for degradation sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `fault_bins == 0`.
    pub fn with_fault_bins(mut self, fault_bins: usize) -> Self {
        assert!(fault_bins > 0, "need at least one fault bin");
        self.fault_bins = fault_bins;
        self
    }

    /// A custom space with uniform `bins_per_feature` everywhere (used by
    /// the bin-granularity ablation).
    ///
    /// # Panics
    ///
    /// Panics if `bins_per_feature == 0`.
    pub fn with_uniform_bins(bins_per_feature: usize) -> Self {
        assert!(bins_per_feature > 0, "need at least one bin");
        Self {
            bins: [bins_per_feature; 6],
            ..Self::paper_default()
        }
    }

    /// Total number of discrete states (the product of bin counts,
    /// including the fault-degree dimension).
    pub fn num_states(&self) -> usize {
        self.bins.iter().product::<usize>() * self.fault_bins
    }

    /// The per-feature bin counts (Table I features; the fault-degree
    /// bin count is reported by [`fault_bins`](Self::fault_bins)).
    pub fn bins(&self) -> &[usize; 6] {
        &self.bins
    }

    /// Bin count of the appended fault-degree dimension (`1` = the
    /// feature is ignored, the paper's default).
    pub fn fault_bins(&self) -> usize {
        self.fault_bins
    }

    /// Discretizes a feature vector into a dense state index in
    /// `[0, num_states)`.
    pub fn discretize(&self, f: &RouterFeatures) -> usize {
        let d = [
            linear_bin(f.buffer_occupancy, self.buffer_range, self.bins[0]),
            linear_bin(f.input_utilization, self.util_range, self.bins[1]),
            linear_bin(f.output_utilization, self.util_range, self.bins[2]),
            log_bin(f.input_nack_rate, self.nack_log_min, self.bins[3]),
            log_bin(f.output_nack_rate, self.nack_log_min, self.bins[4]),
            linear_bin(f.temperature_c, self.temp_range, self.bins[5]),
        ];
        let mut index = 0;
        for (bin, &count) in d.iter().zip(&self.bins) {
            index = index * count + bin;
        }
        // Fault degree rides last so `fault_bins == 1` leaves every
        // index exactly as it was before the feature existed.
        index * self.fault_bins + linear_bin(f.fault_degree, (0.0, 1.0), self.fault_bins)
    }
}

/// Equal-width bin over `[min, max]`, clamped at the ends.
fn linear_bin(value: f64, (min, max): (f64, f64), bins: usize) -> usize {
    if bins <= 1 || !value.is_finite() {
        return 0;
    }
    let t = ((value - min) / (max - min)).clamp(0.0, 1.0);
    ((t * bins as f64) as usize).min(bins - 1)
}

/// Log-decade bin: values below `min_rate` are bin 0; each decade above
/// occupies the next bin.
fn log_bin(rate: f64, min_rate: f64, bins: usize) -> usize {
    if bins <= 1 || rate <= min_rate || rate.is_nan() {
        return 0;
    }
    let decades = (rate / min_rate).log10();
    (decades.floor() as usize + 1).min(bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_has_10000_states() {
        assert_eq!(StateSpace::paper_default().num_states(), 10_000);
    }

    #[test]
    fn index_always_in_range() {
        let space = StateSpace::paper_default();
        let extremes = [
            RouterFeatures::default(),
            RouterFeatures {
                buffer_occupancy: 1e9,
                input_utilization: 1e9,
                output_utilization: 1e9,
                input_nack_rate: 1.0,
                output_nack_rate: 1.0,
                temperature_c: 1e9,
                fault_degree: 2.0,
            },
            RouterFeatures {
                buffer_occupancy: -5.0,
                input_utilization: -1.0,
                output_utilization: -1.0,
                input_nack_rate: -1.0,
                output_nack_rate: -1.0,
                temperature_c: -100.0,
                fault_degree: -1.0,
            },
        ];
        for f in extremes {
            assert!(space.discretize(&f) < space.num_states());
        }
    }

    #[test]
    fn hotter_router_lands_in_higher_temp_bin() {
        let space = StateSpace::paper_default();
        let cold = RouterFeatures {
            temperature_c: 47.0,
            ..Default::default()
        };
        let hot = RouterFeatures {
            temperature_c: 98.0,
            ..Default::default()
        };
        assert!(space.discretize(&hot) > space.discretize(&cold));
    }

    #[test]
    fn distinct_features_usually_distinct_states() {
        let space = StateSpace::paper_default();
        let a = RouterFeatures {
            buffer_occupancy: 1.0,
            input_utilization: 0.02,
            ..Default::default()
        };
        let b = RouterFeatures {
            buffer_occupancy: 18.0,
            input_utilization: 0.28,
            ..Default::default()
        };
        assert_ne!(space.discretize(&a), space.discretize(&b));
    }

    #[test]
    fn nack_rate_bins_are_log_spaced() {
        // 0, 2e-4, 2e-3, 2e-2 should land in bins 0,1,2,3.
        assert_eq!(log_bin(0.0, 1e-4, 4), 0);
        assert_eq!(log_bin(2e-4, 1e-4, 4), 1);
        assert_eq!(log_bin(2e-3, 1e-4, 4), 2);
        assert_eq!(log_bin(2e-2, 1e-4, 4), 3);
        assert_eq!(log_bin(0.5, 1e-4, 4), 3, "saturates at top bin");
    }

    #[test]
    fn linear_bin_edges() {
        assert_eq!(linear_bin(0.0, (0.0, 1.0), 5), 0);
        assert_eq!(linear_bin(0.19, (0.0, 1.0), 5), 0);
        assert_eq!(linear_bin(0.21, (0.0, 1.0), 5), 1);
        assert_eq!(linear_bin(0.99, (0.0, 1.0), 5), 4);
        assert_eq!(
            linear_bin(1.0, (0.0, 1.0), 5),
            4,
            "max clamps into last bin"
        );
        assert_eq!(linear_bin(f64::NAN, (0.0, 1.0), 5), 0, "NaN is bin 0");
    }

    #[test]
    fn uniform_bins_scale_state_count() {
        assert_eq!(StateSpace::with_uniform_bins(3).num_states(), 729);
        assert_eq!(StateSpace::with_uniform_bins(1).num_states(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = StateSpace::with_uniform_bins(0);
    }

    #[test]
    fn fault_bins_scale_state_count() {
        let space = StateSpace::paper_default().with_fault_bins(3);
        assert_eq!(space.num_states(), 30_000);
        assert_eq!(space.fault_bins(), 3);
    }

    #[test]
    fn fault_degree_only_matters_with_fault_bins() {
        let healthy = RouterFeatures {
            temperature_c: 60.0,
            ..Default::default()
        };
        let amputated = RouterFeatures {
            fault_degree: 1.0,
            ..healthy
        };

        let blind = StateSpace::paper_default();
        assert_eq!(blind.discretize(&healthy), blind.discretize(&amputated));

        let aware = StateSpace::paper_default().with_fault_bins(3);
        let h = aware.discretize(&healthy);
        let a = aware.discretize(&amputated);
        assert_ne!(h, a);
        assert!(a > h, "higher fault degree lands in a higher bin");
    }

    #[test]
    fn fault_blind_indices_unchanged_by_feature_addition() {
        // fault_bins == 1 must reproduce the pre-hard-fault indexing
        // exactly, so existing policy snapshots keep their meaning.
        let space = StateSpace::paper_default();
        let f = RouterFeatures {
            buffer_occupancy: 7.0,
            input_utilization: 0.12,
            output_utilization: 0.05,
            input_nack_rate: 3e-3,
            output_nack_rate: 0.0,
            temperature_c: 72.0,
            fault_degree: 0.75,
        };
        // Hand-computed mixed-radix index over bins [5,5,5,4,4,5].
        let expected = ((((1 * 5 + 2) * 5 + 0) * 4 + 2) * 4 + 0) * 5 + 2;
        assert_eq!(space.discretize(&f), expected);
    }

    #[test]
    #[should_panic(expected = "at least one fault bin")]
    fn zero_fault_bins_panics() {
        let _ = StateSpace::paper_default().with_fault_bins(0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn discretize_total(b in -10.0f64..50.0, iu in -1.0f64..2.0, ou in -1.0f64..2.0,
                            inr in -1.0f64..2.0, onr in -1.0f64..2.0, t in -50.0f64..200.0) {
            let space = StateSpace::paper_default();
            let f = RouterFeatures {
                buffer_occupancy: b,
                input_utilization: iu,
                output_utilization: ou,
                input_nack_rate: inr,
                output_nack_rate: onr,
                temperature_c: t,
                fault_degree: 0.0,
            };
            prop_assert!(space.discretize(&f) < space.num_states());
        }

        #[test]
        fn discretize_is_deterministic(t in 40.0f64..110.0, u in 0.0f64..0.4) {
            let space = StateSpace::paper_default();
            let f = RouterFeatures {
                input_utilization: u,
                temperature_c: t,
                ..Default::default()
            };
            prop_assert_eq!(space.discretize(&f), space.discretize(&f));
        }
    }
}
