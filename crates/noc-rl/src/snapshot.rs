//! Versioned, checksummed persistence for trained policies.
//!
//! A [`PolicySnapshot`] captures the Q-tables of a whole controller bank
//! (one table per router) in **snapshot format v1**: a line-oriented
//! text body — a bank header, then each agent's table in the sparse
//! [`QTable::save`] layout — terminated by a CRC-32 trailer over every
//! preceding byte. The checksum turns the two failure modes of
//! checkpoint/resume (truncated file from a killed run, bit rot on disk)
//! into clean [`SnapshotError::ChecksumMismatch`] errors instead of
//! silently resuming from a corrupt policy.
//!
//! ```text
//! rlnoc-policy v1 agents=<n> states=<s>
//! agent 0
//! qtable <s> <updates>
//! <state> <q0> <q1> <q2> <q3> <v0> <v1> <v2> <v3>
//! ...
//! agent 1
//! ...
//! end
//! crc32 <8 hex digits>
//! ```
//!
//! **Format v2** extends the bank header with a `fault_bins=<k>` field
//! recording the fault-degree bin count of the state space the bank was
//! trained against (see `StateSpace::with_fault_bins`). A fault-blind
//! bank (`fault_bins == 1`) still writes byte-identical v1, so every
//! pre-hard-fault snapshot on disk remains valid and every fault-blind
//! policy written by this build loads under older readers.
//!
//! The format is the train-once/eval-many split the paper implies: an
//! expensive pre-training phase persists its policy once, and any number
//! of deployed (inference-only, learning-frozen) runs load it back.
//!
//! # Example
//!
//! ```
//! use noc_rl::qtable::QTable;
//! use noc_rl::snapshot::PolicySnapshot;
//!
//! let mut q = QTable::new(16);
//! q.update(3, 1, 1.0, 4, 0.1, 0.5);
//! let snap = PolicySnapshot::new(vec![q]);
//! let mut buf = Vec::new();
//! snap.write(&mut buf).unwrap();
//! let restored = PolicySnapshot::read(buf.as_slice()).unwrap();
//! assert_eq!(restored, snap);
//! ```

use crate::qtable::QTable;
use noc_coding::crc::Crc32;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// The newest snapshot format version this build writes and reads.
/// Fault-blind banks are still written as v1 (see the module docs).
pub const FORMAT_VERSION: u32 = 2;

/// A persisted bank of per-router Q-tables.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySnapshot {
    tables: Vec<QTable>,
    /// Fault-degree bin count of the originating state space; `1` for
    /// fault-blind banks (and for every v1 snapshot on disk).
    fault_bins: usize,
}

/// Why a snapshot could not be read.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The body parsed but the CRC-32 trailer does not match it.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u32,
        /// Checksum recomputed over the body.
        actual: u32,
    },
    /// The header names a format version this build cannot read.
    UnsupportedVersion(u32),
    /// Structurally malformed input.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: trailer {expected:08x}, body {actual:08x}"
            ),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::Corrupt { line, message } => {
                write!(f, "corrupt snapshot at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl PolicySnapshot {
    /// Wraps the per-router tables of one bank.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or the tables disagree on state count
    /// (a bank shares one state space).
    pub fn new(tables: Vec<QTable>) -> Self {
        assert!(!tables.is_empty(), "snapshot needs at least one table");
        let states = tables[0].num_states();
        assert!(
            tables.iter().all(|t| t.num_states() == states),
            "all tables in a snapshot must share one state space"
        );
        Self {
            tables,
            fault_bins: 1,
        }
    }

    /// Records the fault-degree bin count of the state space this bank
    /// was trained against. `1` (the default) keeps the snapshot in the
    /// v1 format; anything larger writes v2.
    ///
    /// # Panics
    ///
    /// Panics if `fault_bins == 0`.
    pub fn with_fault_bins(mut self, fault_bins: usize) -> Self {
        assert!(fault_bins > 0, "need at least one fault bin");
        self.fault_bins = fault_bins;
        self
    }

    /// Fault-degree bin count of the originating state space (`1` for
    /// fault-blind banks).
    pub fn fault_bins(&self) -> usize {
        self.fault_bins
    }

    /// Number of per-router tables.
    pub fn num_agents(&self) -> usize {
        self.tables.len()
    }

    /// States per table.
    pub fn num_states(&self) -> usize {
        self.tables[0].num_states()
    }

    /// The tables, in router order.
    pub fn tables(&self) -> &[QTable] {
        &self.tables
    }

    /// Consumes the snapshot, yielding the tables in router order.
    pub fn into_tables(self) -> Vec<QTable> {
        self.tables
    }

    /// Serializes the snapshot (body + CRC-32 trailer) into `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let mut body = Vec::new();
        if self.fault_bins == 1 {
            // Fault-blind banks stay byte-identical to pre-v2 output.
            writeln!(
                body,
                "rlnoc-policy v1 agents={} states={}",
                self.num_agents(),
                self.num_states()
            )?;
        } else {
            writeln!(
                body,
                "rlnoc-policy v2 agents={} states={} fault_bins={}",
                self.num_agents(),
                self.num_states(),
                self.fault_bins
            )?;
        }
        for (i, table) in self.tables.iter().enumerate() {
            writeln!(body, "agent {i}")?;
            table.save(&mut body)?;
        }
        writeln!(body, "end")?;
        let checksum = Crc32::new().checksum(&body);
        writer.write_all(&body)?;
        writeln!(writer, "crc32 {checksum:08x}")
    }

    /// Parses a snapshot previously produced by [`write`](Self::write),
    /// verifying the trailer checksum before trusting any content.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure, checksum mismatch,
    /// unsupported version, or malformed structure.
    pub fn read<R: BufRead>(mut reader: R) -> Result<Self, SnapshotError> {
        let mut raw = String::new();
        reader.read_to_string(&mut raw)?;
        let corrupt = |line: usize, message: String| SnapshotError::Corrupt { line, message };

        // Split off the trailer: the final non-empty line.
        let trimmed = raw.trim_end_matches('\n');
        let trailer_start = trimmed.rfind('\n').map_or(0, |p| p + 1);
        let trailer = &trimmed[trailer_start..];
        let expected = trailer
            .strip_prefix("crc32 ")
            .and_then(|hex| u32::from_str_radix(hex.trim(), 16).ok())
            .ok_or_else(|| corrupt(0, "missing crc32 trailer".into()))?;
        let body = &raw.as_bytes()[..trailer_start];
        let actual = Crc32::new().checksum(body);
        if actual != expected {
            return Err(SnapshotError::ChecksumMismatch { expected, actual });
        }

        let mut lines = trimmed[..trailer_start.saturating_sub(1)]
            .lines()
            .enumerate()
            .peekable();
        let (_, header) = lines
            .next()
            .ok_or_else(|| corrupt(1, "empty snapshot".into()))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("rlnoc-policy") {
            return Err(corrupt(1, "missing rlnoc-policy header".into()));
        }
        let version: u32 = parts
            .next()
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt(1, "bad version field".into()))?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let field = |parts: &mut std::str::SplitWhitespace<'_>, name: &str| {
            parts
                .next()
                .and_then(|v| v.strip_prefix(name))
                .and_then(|v| v.strip_prefix('='))
                .and_then(|v| v.parse::<usize>().ok())
        };
        let num_agents =
            field(&mut parts, "agents").ok_or_else(|| corrupt(1, "bad agents field".into()))?;
        let num_states =
            field(&mut parts, "states").ok_or_else(|| corrupt(1, "bad states field".into()))?;
        // v1 predates the fault-degree dimension; v2 records it.
        let fault_bins = if version >= 2 {
            field(&mut parts, "fault_bins")
                .ok_or_else(|| corrupt(1, "bad fault_bins field".into()))?
        } else {
            1
        };
        if num_agents == 0 || num_states == 0 || fault_bins == 0 {
            return Err(corrupt(1, "empty bank".into()));
        }
        if version == 2 && fault_bins == 1 {
            return Err(corrupt(1, "fault-blind bank must use format v1".into()));
        }

        // Each agent section is buffered and handed to QTable::load.
        let mut tables = Vec::with_capacity(num_agents);
        for expect in 0..num_agents {
            let (n, line) = lines
                .next()
                .ok_or_else(|| corrupt(0, format!("missing section for agent {expect}")))?;
            if line.trim() != format!("agent {expect}") {
                return Err(corrupt(n + 1, format!("expected `agent {expect}`")));
            }
            let mut section = String::new();
            while let Some((_, peeked)) = lines.peek() {
                let p = peeked.trim();
                if p.starts_with("agent ") || p == "end" {
                    break;
                }
                let (_, line) = lines.next().expect("peeked");
                section.push_str(line);
                section.push('\n');
            }
            let table = QTable::load(section.as_bytes())
                .map_err(|e| corrupt(n + 1, format!("agent {expect}: {e}")))?;
            if table.num_states() != num_states {
                return Err(corrupt(
                    n + 1,
                    format!(
                        "agent {expect} has {} states, bank header says {num_states}",
                        table.num_states()
                    ),
                ));
            }
            tables.push(table);
        }
        match lines.next() {
            Some((_, line)) if line.trim() == "end" => {}
            Some((n, line)) => {
                return Err(corrupt(n + 1, format!("expected `end`, got `{line}`")));
            }
            None => return Err(corrupt(0, "missing `end` marker".into())),
        }
        Ok(Self::new(tables).with_fault_bins(fault_bins))
    }

    /// Writes the snapshot to `path` atomically: the bytes land in a
    /// sibling temporary file which is renamed into place, so a killed
    /// process never leaves a half-written snapshot under the final name.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = io::BufWriter::new(std::fs::File::create(&tmp)?);
            self.write(&mut file)?;
            file.flush()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] as [`read`](Self::read) does.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let file = std::fs::File::open(path)?;
        Self::read(io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_bank(agents: usize) -> PolicySnapshot {
        let tables = (0..agents)
            .map(|i| {
                let mut q = QTable::new(40);
                q.update(i % 40, i % 4, 1.0 + i as f64, (i + 1) % 40, 0.5, 0.5);
                q.update(7, 2, -0.125, 3, 0.25, 0.5);
                q
            })
            .collect();
        PolicySnapshot::new(tables)
    }

    #[test]
    fn round_trip_is_identity() {
        let snap = trained_bank(5);
        let mut buf = Vec::new();
        snap.write(&mut buf).expect("write to vec");
        let restored = PolicySnapshot::read(buf.as_slice()).expect("read own output");
        assert_eq!(restored, snap);
        assert_eq!(restored.num_agents(), 5);
        assert_eq!(restored.num_states(), 40);
    }

    #[test]
    fn single_agent_round_trips() {
        let snap = trained_bank(1);
        let mut buf = Vec::new();
        snap.write(&mut buf).expect("write");
        assert_eq!(PolicySnapshot::read(buf.as_slice()).expect("read"), snap);
    }

    #[test]
    fn bit_flip_is_detected() {
        let snap = trained_bank(3);
        let mut buf = Vec::new();
        snap.write(&mut buf).expect("write");
        // Flip one bit somewhere in the middle of the body.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x04;
        match PolicySnapshot::read(buf.as_slice()) {
            Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::Corrupt { .. }) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let snap = trained_bank(3);
        let mut buf = Vec::new();
        snap.write(&mut buf).expect("write");
        buf.truncate(buf.len() * 2 / 3);
        assert!(
            PolicySnapshot::read(buf.as_slice()).is_err(),
            "truncated snapshot must not parse"
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let text = "rlnoc-policy v99 agents=1 states=4\nagent 0\nqtable 4 0\nend\n";
        let mut buf = text.as_bytes().to_vec();
        let crc = Crc32::new().checksum(&buf);
        buf.extend_from_slice(format!("crc32 {crc:08x}\n").as_bytes());
        match PolicySnapshot::read(buf.as_slice()) {
            Err(SnapshotError::UnsupportedVersion(99)) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(PolicySnapshot::read(&b""[..]).is_err());
        assert!(PolicySnapshot::read(&b"not a snapshot\n"[..]).is_err());
    }

    #[test]
    fn path_round_trip_is_atomic_and_identical() {
        let snap = trained_bank(4);
        let dir = std::env::temp_dir().join(format!("rlnoc-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bank.policy");
        snap.save_to_path(&path).expect("save");
        assert!(
            !path.with_extension("policy.tmp").exists(),
            "temporary file must be renamed away"
        );
        let restored = PolicySnapshot::load_from_path(&path).expect("load");
        assert_eq!(restored, snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn empty_snapshot_panics() {
        let _ = PolicySnapshot::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "share one state space")]
    fn mismatched_state_counts_panic() {
        let _ = PolicySnapshot::new(vec![QTable::new(4), QTable::new(8)]);
    }

    #[test]
    fn fault_blind_bank_writes_v1_bytes() {
        let snap = trained_bank(2);
        let mut buf = Vec::new();
        snap.write(&mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(
            text.starts_with("rlnoc-policy v1 agents=2 states=40\n"),
            "fault-blind header regressed: {}",
            text.lines().next().unwrap_or("")
        );
        assert!(!text.contains("fault_bins"));
    }

    #[test]
    fn fault_aware_bank_round_trips_as_v2() {
        let snap = trained_bank(3).with_fault_bins(3);
        let mut buf = Vec::new();
        snap.write(&mut buf).expect("write");
        let text = String::from_utf8(buf.clone()).expect("utf8");
        assert!(
            text.starts_with("rlnoc-policy v2 agents=3 states=40 fault_bins=3\n"),
            "v2 header wrong: {}",
            text.lines().next().unwrap_or("")
        );
        let restored = PolicySnapshot::read(buf.as_slice()).expect("read v2");
        assert_eq!(restored, snap);
        assert_eq!(restored.fault_bins(), 3);
    }

    #[test]
    fn v1_snapshot_loads_as_fault_blind() {
        // A pre-hard-fault snapshot written by an older build.
        let text = "rlnoc-policy v1 agents=1 states=4\nagent 0\nqtable 4 0\nend\n";
        let mut buf = text.as_bytes().to_vec();
        let crc = Crc32::new().checksum(&buf);
        buf.extend_from_slice(format!("crc32 {crc:08x}\n").as_bytes());
        let snap = PolicySnapshot::read(buf.as_slice()).expect("v1 must load");
        assert_eq!(snap.fault_bins(), 1);
        assert_eq!(snap.num_agents(), 1);
    }

    #[test]
    fn v2_header_without_fault_bins_is_corrupt() {
        let text = "rlnoc-policy v2 agents=1 states=4\nagent 0\nqtable 4 0\nend\n";
        let mut buf = text.as_bytes().to_vec();
        let crc = Crc32::new().checksum(&buf);
        buf.extend_from_slice(format!("crc32 {crc:08x}\n").as_bytes());
        match PolicySnapshot::read(buf.as_slice()) {
            Err(SnapshotError::Corrupt { line: 1, .. }) => {}
            other => panic!("expected corrupt header, got {other:?}"),
        }
    }
}
