//! Hyper-parameter schedules.
//!
//! The paper uses constant α and ε, but notes that "the learning rate α
//! can be reduced over time"; decaying schedules are provided for the
//! convergence ablations.

use serde::{Deserialize, Serialize};

/// A scalar hyper-parameter as a function of the agent step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Always the same value.
    Constant(f64),
    /// Linear interpolation from `from` to `to` over `steps`, constant
    /// afterwards.
    Linear {
        /// Starting value at step 0.
        from: f64,
        /// Final value reached at `steps`.
        to: f64,
        /// Number of steps over which to interpolate.
        steps: u64,
    },
    /// Exponential decay `from · decay^step`, floored at `floor`.
    Exponential {
        /// Starting value at step 0.
        from: f64,
        /// Per-step multiplicative decay (0 < decay ≤ 1).
        decay: f64,
        /// Lower bound.
        floor: f64,
    },
}

impl Schedule {
    /// The value at `step`.
    ///
    /// # Example
    ///
    /// ```
    /// use noc_rl::schedule::Schedule;
    ///
    /// let s = Schedule::Linear { from: 1.0, to: 0.0, steps: 10 };
    /// assert_eq!(s.value(0), 1.0);
    /// assert_eq!(s.value(5), 0.5);
    /// assert_eq!(s.value(100), 0.0);
    /// ```
    pub fn value(&self, step: u64) -> f64 {
        match *self {
            Schedule::Constant(v) => v,
            Schedule::Linear { from, to, steps } => {
                if steps == 0 || step >= steps {
                    to
                } else {
                    let t = step as f64 / steps as f64;
                    from + (to - from) * t
                }
            }
            Schedule::Exponential { from, decay, floor } => {
                (from * decay.powi(step.min(i32::MAX as u64) as i32)).max(floor)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = Schedule::Constant(0.1);
        assert_eq!(s.value(0), 0.1);
        assert_eq!(s.value(1_000_000), 0.1);
    }

    #[test]
    fn linear_interpolates_and_saturates() {
        let s = Schedule::Linear {
            from: 0.5,
            to: 0.1,
            steps: 4,
        };
        assert_eq!(s.value(0), 0.5);
        assert!((s.value(2) - 0.3).abs() < 1e-12);
        assert_eq!(s.value(4), 0.1);
        assert_eq!(s.value(99), 0.1);
    }

    #[test]
    fn linear_zero_steps_is_target() {
        let s = Schedule::Linear {
            from: 1.0,
            to: 0.2,
            steps: 0,
        };
        assert_eq!(s.value(0), 0.2);
    }

    #[test]
    fn exponential_decays_to_floor() {
        let s = Schedule::Exponential {
            from: 1.0,
            decay: 0.5,
            floor: 0.1,
        };
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.value(1), 0.5);
        assert_eq!(s.value(2), 0.25);
        assert_eq!(s.value(10), 0.1, "floored");
    }

    #[test]
    fn exponential_huge_step_is_safe() {
        let s = Schedule::Exponential {
            from: 1.0,
            decay: 0.99,
            floor: 0.01,
        };
        assert_eq!(s.value(u64::MAX), 0.01);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn linear_stays_between_endpoints(from in 0.0f64..1.0, to in 0.0f64..1.0,
                                          steps in 1u64..1000, step in 0u64..2000) {
            let s = Schedule::Linear { from, to, steps };
            let v = s.value(step);
            let (lo, hi) = if from <= to { (from, to) } else { (to, from) };
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }

        #[test]
        fn exponential_monotone_nonincreasing(step in 0u64..100) {
            let s = Schedule::Exponential { from: 1.0, decay: 0.9, floor: 0.0 };
            prop_assert!(s.value(step + 1) <= s.value(step) + 1e-12);
        }
    }
}
