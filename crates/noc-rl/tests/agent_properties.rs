//! Property tests for the tabular Q-learning stack.
//!
//! 1. **The TD update matches the Bellman form within ulp bounds.** The
//!    table's update must equal
//!    `Q + α·(r + γ·maxₐ′ Q(s′, a′) − Q)` up to a few ulps of
//!    re-association — no drifted constants, no accidental extra terms.
//! 2. **Decaying ε-schedules are monotone non-increasing** and respect
//!    their floors, so exploration can only shrink over a campaign.
//! 3. **State discretization maps every feature into exactly one of ≤5
//!    bins with no boundary gaps**: per-feature bin indices are monotone
//!    in the feature, start at bin 0, reach the top bin, and never skip
//!    a bin — so adjacent operating points land in the same or adjacent
//!    states.

use noc_rl::qtable::QTable;
use noc_rl::schedule::Schedule;
use noc_rl::state::{RouterFeatures, StateSpace};
use noc_rl::NUM_ACTIONS;
use proptest::prelude::*;

/// `|a − b|` measured in units-in-the-last-place of `scale`.
///
/// The two Bellman associations (`(1−α)q + αt` vs `q + α(t−q)`) agree
/// to a few rounding errors *of their operands*; when q and the target
/// nearly cancel, the result can be tiny and relative-to-result ulps
/// explode, so the bound must be anchored at the operand magnitude.
fn ulps_of(a: f64, b: f64, scale: f64) -> u64 {
    ((a - b).abs() / (scale.max(f64::MIN_POSITIVE) * f64::EPSILON)) as u64
}

proptest! {
    /// The applied TD update equals the Bellman target convex
    /// combination, compared against an independently associated
    /// evaluation of the same formula.
    #[test]
    fn q_update_matches_bellman_within_ulps(
        q0 in -1000.0f64..1000.0,
        q1 in -1000.0f64..1000.0,
        q2 in -1000.0f64..1000.0,
        q3 in -1000.0f64..1000.0,
        q4 in -1000.0f64..1000.0,
        reward in -100.0f64..100.0,
        alpha in 0.0f64..1.0,
        gamma in 0.0f64..1.0,
        action in 0usize..NUM_ACTIONS,
    ) {
        let qnext = [q1, q2, q3, q4];
        let mut table = QTable::with_initial(2, q0);
        for (a, &v) in qnext.iter().enumerate() {
            // Install the next-state row by driving cell `a` to `v` with
            // a full-overwrite update (α = 1, γ = 0 ⇒ cell := reward).
            table.update(1, a, v, 0, 1.0, 0.0);
        }
        let max_next = qnext.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(table.max_value(1), max_next);

        table.update(0, action, reward, 1, alpha, gamma);
        let got = table.value(0, action);
        // Bellman form in incremental association.
        let target = reward + gamma * max_next;
        let expected = q0 + alpha * (target - q0);
        let scale = q0.abs().max(target.abs()).max(1.0);
        prop_assert!(
            ulps_of(got, expected, scale) <= 4,
            "TD update drifted: got {got}, Bellman {expected} ({} operand-ulps)",
            ulps_of(got, expected, scale)
        );
        // Untouched cells stay untouched.
        for a in (0..NUM_ACTIONS).filter(|&a| a != action) {
            prop_assert_eq!(table.value(0, a), q0);
        }
    }

    /// Linear (from ≥ to) and exponential schedules never increase with
    /// the step, never rise above their start, and never fall below
    /// their terminal value/floor.
    #[test]
    fn decaying_schedules_are_monotone_non_increasing(
        from in 0.0f64..1.0,
        to_frac in 0.0f64..1.0,
        steps in 1u64..500,
        decay in 0.5f64..1.0,
        floor_frac in 0.0f64..1.0,
        probe in 0u64..2000,
    ) {
        let to = from * to_frac;
        let linear = Schedule::Linear { from, to, steps };
        let floor = from * floor_frac;
        let exp = Schedule::Exponential { from, decay, floor };
        for s in [&linear, &exp] {
            let (now, next) = (s.value(probe), s.value(probe + 1));
            prop_assert!(next <= now, "{s:?} rose from {now} to {next} at step {probe}");
            prop_assert!(now <= from);
        }
        prop_assert!(linear.value(probe) >= to);
        prop_assert!(exp.value(probe) >= floor);
        prop_assert_eq!(linear.value(steps), to);
    }

    /// Sweeping any single feature across (and beyond) its range walks
    /// its bin index monotonically from 0 to the top bin without ever
    /// skipping a bin, every index stays within the ≤5-bin budget, and
    /// the combined state index stays dense.
    #[test]
    fn discretization_covers_every_bin_without_gaps(
        feature in 0usize..6,
        jitter in 0.0f64..1.0,
    ) {
        let space = StateSpace::paper_default();
        let bins = space.bins()[feature];
        prop_assert!((1..=5).contains(&bins), "Table I allows at most 5 bins");

        // Stride of this feature's bin inside the mixed-radix index.
        let stride: usize = space.bins()[feature + 1..].iter().product();
        let set = |v: f64| {
            let mut f = RouterFeatures::default();
            match feature {
                0 => f.buffer_occupancy = v,
                1 => f.input_utilization = v,
                2 => f.output_utilization = v,
                3 => f.input_nack_rate = v,
                4 => f.output_nack_rate = v,
                5 => f.temperature_c = v,
                _ => unreachable!(),
            }
            f
        };
        // A sweep wide enough to cross every boundary of every feature:
        // linear features top out at 20 (occupancy) and 95 °C, so a
        // linear sweep past 200 crosses all edges; the NACK features bin
        // by log decade, so their sweep is geometric across 1e-6..10.
        let log_feature = feature == 3 || feature == 4;
        let samples = 20_000;
        let mut prev = None;
        let mut seen = vec![false; bins];
        for i in 0..=samples {
            let t = ((i as f64) + jitter) / samples as f64;
            let v = if log_feature {
                10f64.powf(-6.0 + 7.0 * t)
            } else {
                -10.0 + 210.0 * t
            };
            let index = space.discretize(&set(v));
            prop_assert!(index < space.num_states());
            let bin = (index / stride) % bins;
            seen[bin] = true;
            if let Some(p) = prev {
                prop_assert!(bin >= p, "bin regressed on a rising feature");
                prop_assert!(bin - p <= 1, "bin skipped: {p} -> {bin} (boundary gap)");
            }
            prev = Some(bin);
        }
        prop_assert_eq!(prev, Some(bins - 1), "sweep must reach the top bin");
        prop_assert!(seen.iter().all(|&b| b), "every bin must be hit exactly once in order");
    }
}
