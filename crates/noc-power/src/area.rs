//! Router area model (§VI-B of the paper).
//!
//! The paper synthesizes the four router variants with Synopsys Design
//! Compiler at 32 nm and reports:
//!
//! * the proposed RL router adds **2360 µm²** over the CRC baseline;
//! * that is a **5.5 %** overhead vs. the CRC router, **4.8 %** vs. the
//!   ARQ+ECC router, and **4.5 %** vs. the decision-tree router.
//!
//! This module carries an analytic per-component area budget whose sums
//! reproduce those figures exactly; the component split follows standard
//! proportions for a 4-VC 128-bit router (buffers dominate, then
//! crossbar).

use serde::{Deserialize, Serialize};

/// The four router designs compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterVariant {
    /// End-to-end CRC only (baseline).
    Crc,
    /// Static per-hop ARQ+ECC.
    ArqEcc,
    /// ARQ+ECC with decision-tree mode control.
    DecisionTree,
    /// ARQ+ECC with RL mode control (the proposed design).
    ProposedRl,
}

impl RouterVariant {
    /// All variants, in the paper's comparison order.
    pub const ALL: [RouterVariant; 4] = [
        RouterVariant::Crc,
        RouterVariant::ArqEcc,
        RouterVariant::DecisionTree,
        RouterVariant::ProposedRl,
    ];
}

impl std::fmt::Display for RouterVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RouterVariant::Crc => "CRC",
            RouterVariant::ArqEcc => "ARQ+ECC",
            RouterVariant::DecisionTree => "DT",
            RouterVariant::ProposedRl => "RL",
        };
        f.write_str(s)
    }
}

/// Per-component router areas in µm² at 32 nm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Input VC buffers (20 VC FIFOs × 4 flits × 128 b).
    pub buffers: f64,
    /// 5×5 128-bit crossbar.
    pub crossbar: f64,
    /// VA/SA allocators and routing logic.
    pub allocators: f64,
    /// Link drivers/receivers and clocking.
    pub link_interface: f64,
    /// CRC-32 encoder + decoder pair.
    pub crc_codec: f64,
    /// Four link SECDED encoder/decoder pairs.
    pub ecc_codecs: f64,
    /// Output retransmit buffers.
    pub retransmit_buffers: f64,
    /// Decision-tree comparator logic.
    pub dt_logic: f64,
    /// Q-value ALU.
    pub rl_alu: f64,
    /// Q-table SRAM.
    pub rl_q_table: f64,
    /// Fault-tolerant mode controller FSM.
    pub rl_controller: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            buffers: 24_000.0,
            crossbar: 10_500.0,
            allocators: 3_000.0,
            link_interface: 4_500.0,
            crc_codec: 909.0,
            ecc_codecs: 180.0,
            retransmit_buffers: 107.0,
            dt_logic: 124.0,
            rl_alu: 600.0,
            rl_q_table: 1_273.0,
            rl_controller: 200.0,
        }
    }
}

impl AreaModel {
    /// Total area of one router of the given variant, in µm².
    pub fn router_area(&self, variant: RouterVariant) -> f64 {
        let base =
            self.buffers + self.crossbar + self.allocators + self.link_interface + self.crc_codec;
        match variant {
            RouterVariant::Crc => base,
            RouterVariant::ArqEcc => base + self.ecc_codecs + self.retransmit_buffers,
            RouterVariant::DecisionTree => self.router_area(RouterVariant::ArqEcc) + self.dt_logic,
            RouterVariant::ProposedRl => {
                self.router_area(RouterVariant::ArqEcc)
                    + self.rl_alu
                    + self.rl_q_table
                    + self.rl_controller
            }
        }
    }

    /// Absolute area added by the proposed router over `baseline`, µm².
    pub fn rl_overhead_um2(&self, baseline: RouterVariant) -> f64 {
        self.router_area(RouterVariant::ProposedRl) - self.router_area(baseline)
    }

    /// Fractional area overhead of the proposed router vs. `baseline`.
    pub fn rl_overhead_fraction(&self, baseline: RouterVariant) -> f64 {
        self.rl_overhead_um2(baseline) / self.router_area(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rl_adds_2360_um2_over_crc() {
        let m = AreaModel::default();
        assert!(
            (m.rl_overhead_um2(RouterVariant::Crc) - 2360.0).abs() < 1.0,
            "overhead {}",
            m.rl_overhead_um2(RouterVariant::Crc)
        );
    }

    #[test]
    fn overhead_percentages_match_paper() {
        let m = AreaModel::default();
        let vs_crc = m.rl_overhead_fraction(RouterVariant::Crc);
        let vs_arq = m.rl_overhead_fraction(RouterVariant::ArqEcc);
        let vs_dt = m.rl_overhead_fraction(RouterVariant::DecisionTree);
        assert!((vs_crc - 0.055).abs() < 0.001, "vs CRC: {vs_crc}");
        assert!((vs_arq - 0.048).abs() < 0.001, "vs ARQ: {vs_arq}");
        assert!((vs_dt - 0.045).abs() < 0.001, "vs DT: {vs_dt}");
    }

    #[test]
    fn variant_areas_strictly_increase() {
        let m = AreaModel::default();
        let areas: Vec<f64> = RouterVariant::ALL
            .iter()
            .map(|&v| m.router_area(v))
            .collect();
        for w in areas.windows(2) {
            assert!(w[0] < w[1], "areas must increase: {areas:?}");
        }
    }

    #[test]
    fn buffers_dominate_router_area() {
        let m = AreaModel::default();
        let total = m.router_area(RouterVariant::Crc);
        assert!(m.buffers / total > 0.4, "buffers are the largest block");
    }

    #[test]
    fn display_names() {
        assert_eq!(RouterVariant::ProposedRl.to_string(), "RL");
        assert_eq!(RouterVariant::ArqEcc.to_string(), "ARQ+ECC");
    }

    #[test]
    fn self_overhead_is_zero() {
        let m = AreaModel::default();
        assert_eq!(m.rl_overhead_um2(RouterVariant::ProposedRl), 0.0);
    }
}
