//! Technology parameters: 32 nm, 1.0 V, 2.0 GHz.
//!
//! Per-event dynamic energies follow ORION 2.0's component structure for
//! a 5-port, 4-VC, 128-bit-flit router and are calibrated so that one
//! flit-hop through the baseline router (buffer write + read, switch
//! allocation, crossbar, link) costs ≈13.3 pJ — the absolute anchor the
//! paper reports when quoting the RL control logic's 0.16 pJ (1.2 %)
//! per-flit overhead.

use serde::{Deserialize, Serialize};

/// Per-event energies (joules) and per-component leakage (watts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    // --- dynamic energies, joules per event -----------------------------
    /// Writing one 128-bit flit into an input VC buffer.
    pub buffer_write_energy: f64,
    /// Reading one flit out of an input VC buffer.
    pub buffer_read_energy: f64,
    /// One flit through the 5×5 crossbar.
    pub crossbar_energy: f64,
    /// One switch-allocation grant (arbiter switching).
    pub sa_grant_energy: f64,
    /// One virtual-channel allocation.
    pub va_energy: f64,
    /// One flit over a 1 mm inter-router link.
    pub link_energy: f64,
    /// CRC-32 encode of one flit.
    pub crc_encode_energy: f64,
    /// CRC-32 check of one flit.
    pub crc_check_energy: f64,
    /// SECDED encode of one flit (2 × (72,64)).
    pub ecc_encode_energy: f64,
    /// SECDED decode of one flit.
    pub ecc_decode_energy: f64,
    /// One ACK/NACK side-band signal.
    pub ack_energy: f64,
    /// One write into the output retransmit buffer.
    pub retransmit_buffer_energy: f64,
    /// One Q-table lookup (RL action selection).
    pub q_lookup_energy: f64,
    /// One Q-value temporal-difference update (ALU + SRAM write).
    pub q_update_energy: f64,
    /// One decision-tree inference (DT baseline controller).
    pub dt_inference_energy: f64,

    // --- leakage, watts per component ------------------------------------
    /// Baseline router leakage (buffers, crossbar, allocators).
    pub router_leakage: f64,
    /// CRC codec pair leakage.
    pub crc_leakage: f64,
    /// One ECC link's encoder+decoder leakage (gated off in mode 0).
    pub ecc_link_leakage: f64,
    /// Output retransmit buffer leakage (per router).
    pub retransmit_buffer_leakage: f64,
    /// Q-table SRAM + controller leakage (per router).
    pub q_table_leakage: f64,
    /// Decision-tree logic leakage (per router).
    pub dt_leakage: f64,
}

impl PowerParams {
    /// The paper's reported per-flit energy of the baseline router
    /// (≈13.3 pJ), used as a calibration anchor.
    pub const BASELINE_FLIT_ENERGY: f64 = 13.33e-12;

    /// The paper's reported RL control-logic overhead per flit (0.16 pJ,
    /// 1.2 % of the baseline).
    pub const RL_FLIT_OVERHEAD: f64 = 0.16e-12;

    /// Energy of one flit-hop through the baseline router datapath
    /// (write + read + SA + crossbar + link, with VA amortized over a
    /// 4-flit packet).
    pub fn flit_hop_energy(&self) -> f64 {
        self.buffer_write_energy
            + self.buffer_read_energy
            + self.sa_grant_energy
            + self.crossbar_energy
            + self.link_energy
            + self.va_energy / 4.0
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self {
            buffer_write_energy: 1.9e-12,
            buffer_read_energy: 1.7e-12,
            crossbar_energy: 3.6e-12,
            sa_grant_energy: 0.28e-12,
            va_energy: 0.36e-12,
            link_energy: 5.7e-12,
            crc_encode_energy: 0.38e-12,
            crc_check_energy: 0.38e-12,
            ecc_encode_energy: 0.4e-12,
            ecc_decode_energy: 0.5e-12,
            ack_energy: 0.05e-12,
            retransmit_buffer_energy: 0.6e-12,
            q_lookup_energy: 0.5e-12,
            q_update_energy: 1.4e-12,
            dt_inference_energy: 0.9e-12,
            router_leakage: 1.2e-3,
            crc_leakage: 0.02e-3,
            ecc_link_leakage: 0.05e-3,
            retransmit_buffer_leakage: 0.05e-3,
            q_table_leakage: 0.06e-3,
            dt_leakage: 0.02e-3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_hop_energy_matches_paper_anchor() {
        let p = PowerParams::default();
        let e = p.flit_hop_energy();
        let anchor = PowerParams::BASELINE_FLIT_ENERGY;
        assert!(
            (e - anchor).abs() / anchor < 0.02,
            "flit-hop energy {e:.3e} vs anchor {anchor:.3e}"
        );
    }

    #[test]
    fn rl_overhead_is_about_1_2_percent() {
        let ratio = PowerParams::RL_FLIT_OVERHEAD / PowerParams::BASELINE_FLIT_ENERGY;
        assert!((ratio - 0.012).abs() < 0.001, "overhead ratio {ratio}");
    }

    #[test]
    fn all_energies_positive() {
        let p = PowerParams::default();
        for e in [
            p.buffer_write_energy,
            p.buffer_read_energy,
            p.crossbar_energy,
            p.sa_grant_energy,
            p.va_energy,
            p.link_energy,
            p.crc_encode_energy,
            p.crc_check_energy,
            p.ecc_encode_energy,
            p.ecc_decode_energy,
            p.ack_energy,
            p.retransmit_buffer_energy,
            p.q_lookup_energy,
            p.q_update_energy,
            p.dt_inference_energy,
        ] {
            assert!(e > 0.0);
        }
        for l in [
            p.router_leakage,
            p.crc_leakage,
            p.ecc_link_leakage,
            p.retransmit_buffer_leakage,
            p.q_table_leakage,
            p.dt_leakage,
        ] {
            assert!(l > 0.0);
        }
    }

    #[test]
    fn ecc_costs_more_to_decode_than_encode() {
        // Syndrome computation + correction is the larger circuit.
        let p = PowerParams::default();
        assert!(p.ecc_decode_energy > p.ecc_encode_energy);
    }
}
