//! ORION-style power, energy, and area models for on-chip routers at
//! 32 nm.
//!
//! The paper evaluates power with ORION 2.0 inside Booksim and area with
//! Synopsys Design Compiler. This crate reproduces both interfaces:
//!
//! * [`params`] — per-event dynamic energies and per-component leakage at
//!   32 nm / 1.0 V / 2.0 GHz, anchored to the paper's absolute numbers
//!   (≈13.3 pJ per flit-hop in the baseline router; 0.16 pJ = 1.2 % RL
//!   control overhead).
//! * [`energy`] — turns the simulator's
//!   [`EventCounters`](noc_sim::stats::EventCounters) into joules, plus
//!   gateable static power.
//! * [`area`] — the §VI-B area model reproducing the paper's 2360 µm² /
//!   5.5 % / 4.8 % / 4.5 % overhead analysis.
//!
//! # Example
//!
//! ```
//! use noc_power::energy::{EnergyModel, StaticConfig};
//! use noc_sim::stats::EventCounters;
//!
//! let model = EnergyModel::default();
//! let mut counters = EventCounters::default();
//! counters.buffer_writes = 1000;
//! counters.link_traversals[1] = 1000;
//! let joules = model.dynamic_energy(&counters);
//! assert!(joules > 0.0);
//!
//! // Static power with two of four ECC links gated off.
//! let w = model.static_power(&StaticConfig { ecc_links_enabled: 2, ..StaticConfig::rl_router() });
//! assert!(w > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod params;

pub use area::{AreaModel, RouterVariant};
pub use energy::{EnergyBreakdown, EnergyModel, StaticConfig};
pub use params::PowerParams;
