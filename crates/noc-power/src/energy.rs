//! Energy accounting: event counters → joules, plus gateable static
//! power.

use crate::params::PowerParams;
use noc_sim::stats::EventCounters;
use serde::{Deserialize, Serialize};

/// Dynamic energy split by router component, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Input buffer read/write energy.
    pub buffers: f64,
    /// Crossbar traversal energy.
    pub crossbar: f64,
    /// SA + VA arbitration energy.
    pub arbitration: f64,
    /// Link traversal energy.
    pub links: f64,
    /// CRC + SECDED coding energy.
    pub coding: f64,
    /// ARQ energy: acknowledgements, retransmit-buffer writes.
    pub arq: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy.
    pub fn total(&self) -> f64 {
        self.buffers + self.crossbar + self.arbitration + self.links + self.coding + self.arq
    }
}

/// Which leakage-bearing components a router instantiates (and how many
/// of its ECC links are currently powered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticConfig {
    /// Number of ECC link codec pairs currently powered on (0..=4).
    pub ecc_links_enabled: u8,
    /// Router has the output retransmit buffers (any ARQ-capable design).
    pub has_retransmit_buffer: bool,
    /// Router has the Q-table SRAM + RL controller.
    pub has_q_table: bool,
    /// Router has the decision-tree logic.
    pub has_dt_logic: bool,
}

impl StaticConfig {
    /// The static CRC baseline router: no ECC, no ARQ, no learning logic.
    pub fn crc_router() -> Self {
        Self {
            ecc_links_enabled: 0,
            has_retransmit_buffer: false,
            has_q_table: false,
            has_dt_logic: false,
        }
    }

    /// The static ARQ+ECC router: all four link codecs always on.
    pub fn arq_router() -> Self {
        Self {
            ecc_links_enabled: 4,
            has_retransmit_buffer: true,
            has_q_table: false,
            has_dt_logic: false,
        }
    }

    /// The decision-tree router: ECC hardware plus DT logic.
    pub fn dt_router() -> Self {
        Self {
            ecc_links_enabled: 4,
            has_retransmit_buffer: true,
            has_q_table: false,
            has_dt_logic: true,
        }
    }

    /// The proposed RL router with all ECC links currently enabled.
    pub fn rl_router() -> Self {
        Self {
            ecc_links_enabled: 4,
            has_retransmit_buffer: true,
            has_q_table: true,
            has_dt_logic: false,
        }
    }
}

/// Converts simulator event counts into energy, ORION-style.
///
/// # Example
///
/// ```
/// use noc_power::energy::EnergyModel;
/// use noc_sim::stats::EventCounters;
///
/// let model = EnergyModel::default();
/// let mut c = EventCounters::default();
/// c.buffer_writes = 4;
/// c.buffer_reads = 4;
/// c.sa_grants = 4;
/// c.crossbar_traversals = 4;
/// c.link_traversals[1] = 4;
/// c.va_allocations = 1;
/// // One 4-flit packet over one hop ≈ 4 × 13.3 pJ.
/// let e = model.dynamic_energy(&c);
/// assert!((50e-12..60e-12).contains(&e));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    params: PowerParams,
}

impl EnergyModel {
    /// Creates a model from explicit parameters.
    pub fn new(params: PowerParams) -> Self {
        Self { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Dynamic energy (joules) for one router's event counts.
    pub fn dynamic_energy(&self, counters: &EventCounters) -> f64 {
        self.dynamic_breakdown(counters).total()
    }

    /// Component-wise dynamic energy for one router's event counts.
    pub fn dynamic_breakdown(&self, c: &EventCounters) -> EnergyBreakdown {
        let p = &self.params;
        EnergyBreakdown {
            buffers: c.buffer_writes as f64 * p.buffer_write_energy
                + c.buffer_reads as f64 * p.buffer_read_energy,
            crossbar: c.crossbar_traversals as f64 * p.crossbar_energy,
            arbitration: c.sa_grants as f64 * p.sa_grant_energy
                + c.va_allocations as f64 * p.va_energy,
            links: c.total_link_traversals() as f64 * p.link_energy,
            coding: c.crc_encodes as f64 * p.crc_encode_energy
                + c.crc_checks as f64 * p.crc_check_energy
                + c.ecc_encodes as f64 * p.ecc_encode_energy
                + c.ecc_decodes as f64 * p.ecc_decode_energy,
            arq: c.ack_signals as f64 * p.ack_energy
                + c.retransmit_buffer_writes as f64 * p.retransmit_buffer_energy
                + c.retransmit_sends as f64 * p.buffer_read_energy,
        }
    }

    /// Control-policy dynamic energy for one epoch: `lookups` Q-table (or
    /// DT) reads and `updates` TD updates.
    pub fn control_energy(&self, lookups: u64, updates: u64, dt: bool) -> f64 {
        let p = &self.params;
        if dt {
            lookups as f64 * p.dt_inference_energy
        } else {
            lookups as f64 * p.q_lookup_energy + updates as f64 * p.q_update_energy
        }
    }

    /// Static (leakage) power in watts for a router with the given
    /// component configuration.
    pub fn static_power(&self, config: &StaticConfig) -> f64 {
        let p = &self.params;
        let mut w = p.router_leakage + p.crc_leakage;
        w += f64::from(config.ecc_links_enabled.min(4)) * p.ecc_link_leakage;
        if config.has_retransmit_buffer {
            w += p.retransmit_buffer_leakage;
        }
        if config.has_q_table {
            w += p.q_table_leakage;
        }
        if config.has_dt_logic {
            w += p.dt_leakage;
        }
        w
    }

    /// Static energy over `cycles` at clock `frequency_hz`.
    pub fn static_energy(&self, config: &StaticConfig, cycles: u64, frequency_hz: f64) -> f64 {
        self.static_power(config) * cycles as f64 / frequency_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters_one_packet_one_hop() -> EventCounters {
        let mut c = EventCounters {
            buffer_writes: 4,
            buffer_reads: 4,
            sa_grants: 4,
            crossbar_traversals: 4,
            va_allocations: 1,
            ..EventCounters::default()
        };
        c.link_traversals[1] = 4;
        c
    }

    #[test]
    fn empty_counters_cost_nothing() {
        let m = EnergyModel::default();
        assert_eq!(m.dynamic_energy(&EventCounters::default()), 0.0);
    }

    #[test]
    fn one_packet_hop_matches_anchor() {
        let m = EnergyModel::default();
        let e = m.dynamic_energy(&counters_one_packet_one_hop());
        let expect = 4.0 * PowerParams::BASELINE_FLIT_ENERGY;
        assert!(
            (e - expect).abs() / expect < 0.02,
            "energy {e:.3e} vs {expect:.3e}"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::default();
        let mut c = counters_one_packet_one_hop();
        c.ecc_encodes = 4;
        c.ecc_decodes = 4;
        c.ack_signals = 4;
        c.crc_encodes = 4;
        c.crc_checks = 4;
        c.retransmit_buffer_writes = 4;
        c.retransmit_sends = 1;
        let b = m.dynamic_breakdown(&c);
        assert!((b.total() - m.dynamic_energy(&c)).abs() < 1e-18);
        assert!(b.coding > 0.0 && b.arq > 0.0 && b.links > 0.0);
    }

    #[test]
    fn ecc_traffic_costs_extra() {
        let m = EnergyModel::default();
        let plain = counters_one_packet_one_hop();
        let mut ecc = plain.clone();
        ecc.ecc_encodes = 4;
        ecc.ecc_decodes = 4;
        ecc.retransmit_buffer_writes = 4;
        assert!(m.dynamic_energy(&ecc) > m.dynamic_energy(&plain));
    }

    #[test]
    fn static_power_ordering_across_variants() {
        let m = EnergyModel::default();
        let crc = m.static_power(&StaticConfig::crc_router());
        let arq = m.static_power(&StaticConfig::arq_router());
        let dt = m.static_power(&StaticConfig::dt_router());
        let rl = m.static_power(&StaticConfig::rl_router());
        assert!(crc < arq, "ECC hardware leaks");
        assert!(arq < dt, "DT adds logic");
        assert!(arq < rl, "Q-table adds SRAM");
        // Gating ECC links recovers leakage.
        let gated = m.static_power(&StaticConfig {
            ecc_links_enabled: 0,
            ..StaticConfig::rl_router()
        });
        assert!(gated < rl);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let m = EnergyModel::default();
        let cfg = StaticConfig::crc_router();
        let e1 = m.static_energy(&cfg, 1000, 2.0e9);
        let e2 = m.static_energy(&cfg, 2000, 2.0e9);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn control_energy_rl_vs_dt() {
        let m = EnergyModel::default();
        let rl = m.control_energy(10, 10, false);
        let dt = m.control_energy(10, 0, true);
        assert!(rl > 0.0 && dt > 0.0);
        assert!(rl > dt, "RL pays for TD updates; DT is inference-only");
    }

    #[test]
    fn ecc_links_clamped_to_four() {
        let m = EnergyModel::default();
        let four = m.static_power(&StaticConfig {
            ecc_links_enabled: 4,
            ..StaticConfig::arq_router()
        });
        let many = m.static_power(&StaticConfig {
            ecc_links_enabled: 9,
            ..StaticConfig::arq_router()
        });
        assert_eq!(four, many);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    prop_compose! {
        fn arb_counters()(
            a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000,
            d in 0u64..10_000, e in 0u64..10_000,
        ) -> EventCounters {
            EventCounters {
                buffer_writes: a,
                buffer_reads: b,
                crossbar_traversals: c,
                sa_grants: d,
                link_traversals: [e, e / 2, e / 3, e / 4, e / 5, 0, 0],
                ..Default::default()
            }
        }
    }

    proptest! {
        #[test]
        fn energy_is_monotone_in_events(base in arb_counters()) {
            let m = EnergyModel::default();
            let e0 = m.dynamic_energy(&base);
            let mut more = base.clone();
            more.buffer_writes += 1;
            prop_assert!(m.dynamic_energy(&more) > e0);
        }

        #[test]
        fn energy_is_additive(a in arb_counters(), b in arb_counters()) {
            let m = EnergyModel::default();
            let mut sum = a.clone();
            sum.merge(&b);
            let lhs = m.dynamic_energy(&sum);
            let rhs = m.dynamic_energy(&a) + m.dynamic_energy(&b);
            prop_assert!((lhs - rhs).abs() < 1e-15 * lhs.max(1e-30));
        }
    }
}
