//! Offline mini property-testing engine.
//!
//! The build container has no crates.io access, so the real `proptest`
//! cannot be vendored. This shim implements the subset of its API the
//! workspace's tests use:
//!
//! * the [`proptest!`] macro with `arg in strategy` and `arg: Type`
//!   parameters,
//! * [`prop_compose!`] for derived strategies,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`,
//! * range strategies, tuple strategies, `collection::vec`, `any::<T>()`
//!   and `sample::Index`.
//!
//! Semantics differ from the real crate in one deliberate way: there is
//! no shrinking. A failing case panics with the sampled inputs printed,
//! which is enough to reproduce (sampling is deterministic per test name
//! and case index). `PROPTEST_CASES` overrides the per-test case count
//! (default 64).

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategy implementations.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Always yields a clone of one value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A strategy backed by a sampling closure; the engine behind
    /// [`prop_compose!`](crate::prop_compose).
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Wraps a closure as a [`Strategy`].
    pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<T, F> {
        FnStrategy(f)
    }
}

pub mod arbitrary {
    //! Blanket "any value of this type" generation.

    use super::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.gen_bool(0.5)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> super::strategy::Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T` (`proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact size or a range, as in
    /// proptest's `SizeRange` conversions.
    pub trait IntoSizeRange {
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is uniform in
    /// `len` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let len = len.into_size_range();
        assert!(len.start < len.end, "vec length range must be non-empty");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Index sampling (`proptest::sample::Index`).

    use super::arbitrary::Arbitrary;
    use super::test_runner::TestRng;
    use rand::RngCore;

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.rng.next_u64())
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test RNG and case-count configuration.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        /// Underlying generator (public for in-crate strategy impls).
        pub rng: SmallRng,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of the test name
        /// and case index — failures reproduce across runs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                rng: SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }
    }

    /// Number of cases per property (env `PROPTEST_CASES`, default 64).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Declares property tests. Each `fn name(x in strategy, y: Type)` item
/// becomes a `#[test]` that samples its parameters [`test_runner::cases`]
/// times and runs the body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut rng_storage =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let rng = &mut rng_storage;
                    $crate::__proptest_bind!(rng, $($params)*);
                    // `prop_assume!` exits the closure to skip a case.
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> () { $body })();
                }
            }
        )*
    };
}

/// Binds `name in strategy` / `name: Type` parameter lists (internal).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut *$rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut *$rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut *$rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut *$rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Defines a function returning a derived strategy:
/// `fn name(outer_args)(x in s1, y in s2) -> T { expr }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)($($params:tt)*) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $crate::__proptest_bind!(rng, $($params)*);
                $body
            })
        }
    };
}

/// Asserts a property-test condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its sampled inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds; plain-typed args are drawn
        /// via `Arbitrary`.
        #[test]
        fn ranges_and_any(x in 10u32..20, f in -1.0f64..1.0, b: bool, s: u64) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = (b, s);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0usize..4, -1.0f64..1.0), 1..9),
            pick in any::<crate::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            let (i, f) = v[pick.index(v.len())];
            prop_assert!(i < 4 && (-1.0..1.0).contains(&f));
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    prop_compose! {
        fn arb_point()(x in 0i32..100, y in 0i32..100) -> (i32, i32) {
            (x, y)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_samples(p in arb_point()) {
            prop_assert!((0..100).contains(&p.0) && (0..100).contains(&p.1));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        use crate::strategy::Strategy;
        let a = (0u64..1_000_000).sample(&mut crate::test_runner::TestRng::for_case("t", 3));
        let b = (0u64..1_000_000).sample(&mut crate::test_runner::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
