//! Shared fixtures for the rlnoc test suites.
//!
//! Every helper here used to be copy-pasted between the integration
//! tests of `rlnoc-core`, `noc-sim`, and `rlnoc-runner`. The crate is a
//! **dev-dependency only** — nothing in it ships in a production build —
//! and everything in it is deterministic: helpers derive all randomness
//! from caller-supplied seeds via SplitMix64 so test failures replay
//! exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_fault::timing::TimingErrorModel;
use noc_fault::variation::VariationMap;
use noc_sim::config::NocConfig;
use noc_sim::network::Network;
use noc_sim::topology::{Mesh, NodeId, Topo};
use rlnoc_core::campaign::Campaign;
use rlnoc_core::modes::OperationMode;
use rlnoc_core::protocol::FaultTolerantProtocol;
use rlnoc_core::WorkloadProfile;
use std::path::PathBuf;

/// A deterministic SplitMix64 stream.
///
/// The same generator the simulator seeds its subsystems with, exposed
/// so tests can derive arbitrary values from plain `u64` inputs (e.g.
/// proptest-sampled seeds) without an RNG dependency.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Maps a raw `u64` (e.g. a proptest input) onto a node of `mesh`.
pub fn pick_node(mesh: impl Into<Topo>, raw: u64) -> NodeId {
    NodeId((raw % mesh.into().num_nodes() as u64) as u16)
}

/// Minimal hop distance between two nodes: Manhattan on a mesh,
/// wrap-aware on tori, 3D Manhattan on stacked meshes.
pub fn manhattan(mesh: impl Into<Topo>, a: NodeId, b: NodeId) -> u64 {
    u64::from(mesh.into().hop_distance(a, b))
}

/// Deterministic `(src, dst)` traffic pairs derived from `seed`, with
/// `src != dst` guaranteed.
pub fn traffic_pairs(mesh: impl Into<Topo>, seed: u64, n: usize) -> Vec<(NodeId, NodeId)> {
    let mesh = mesh.into();
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let src = pick_node(mesh, rng.next_u64());
            let mut dst = pick_node(mesh, rng.next_u64());
            if src == dst {
                dst = NodeId(((dst.index() + 1) % mesh.num_nodes()) as u16);
            }
            (src, dst)
        })
        .collect()
}

/// Mesh size used by [`hot_network`].
pub const HOT_MESH: (u16, u16) = (4, 4);

/// A very hot 4×4 network: every router at 100 °C and 0.3 flits/cycle
/// utilization, so link error probabilities are high enough that a run
/// of any length exercises the fault machinery of the given mode.
pub fn hot_network(mode: OperationMode, seed: u64) -> Network<FaultTolerantProtocol> {
    let (w, h) = HOT_MESH;
    let mesh = Mesh::new(w, h);
    let mut protocol = FaultTolerantProtocol::new(
        mesh,
        TimingErrorModel::default(),
        VariationMap::uniform(w, h),
        seed,
    );
    protocol.set_all_modes(mode);
    protocol.set_temperatures(&vec![100.0; mesh.num_nodes()]);
    protocol.set_utilizations(&vec![0.3; mesh.num_nodes()]);
    let config = NocConfig::builder().mesh(w, h).build();
    Network::new(config, protocol, seed)
}

/// The smallest campaign that still exercises pre-training, measurement,
/// and a real workload — seconds, not minutes, per runner test.
pub fn tiny_campaign() -> Campaign {
    let mut campaign = Campaign::quick();
    campaign.workloads = vec![WorkloadProfile::blackscholes()];
    campaign.pretrain_cycles = 4_000;
    campaign.measure_cycles = Some(4_000);
    campaign
}

/// A fresh per-process scratch directory under the system temp dir,
/// removed first if a previous run left one behind. `tag` keeps tests
/// within one binary from colliding.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlnoc-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_pairs_are_deterministic_and_valid() {
        let mesh = Mesh::new(4, 4);
        let a = traffic_pairs(mesh, 42, 50);
        let b = traffic_pairs(mesh, 42, 50);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|(s, d)| s != d && d.index() < mesh.num_nodes()));
        assert_ne!(a, traffic_pairs(mesh, 43, 50));
    }

    #[test]
    fn hot_network_is_actually_hot() {
        let net = hot_network(OperationMode::Mode1, 7);
        let p = net.protocol().raw_error_probabilities();
        assert!(p.iter().all(|&p| p > 0.0), "every link must see faults");
    }

    #[test]
    fn temp_dirs_are_distinct_per_tag() {
        assert_ne!(temp_dir("a"), temp_dir("b"));
    }
}
