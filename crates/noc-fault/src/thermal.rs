//! HotSpot-style lumped-RC thermal model.
//!
//! Each router tile is one thermal node with a capacitance `c_th`, a
//! vertical resistance `r_vertical` to ambient (through the heat-sink
//! stack), and lateral resistances `r_lateral` to its mesh neighbors.
//! Per-epoch router power drives the network; temperatures settle toward
//!
//! ```text
//! T_ss ≈ T_amb + P · R_eff
//! ```
//!
//! The defaults place the paper's observed 50–100 °C operating range over
//! the realistic per-router power range (~0.03–0.4 W). The thermal time
//! constant is deliberately shortened relative to physical silicon
//! (microseconds instead of milliseconds) so temperature dynamics are
//! visible within reduced-length simulations — a standard acceleration in
//! architectural studies; see DESIGN.md.

use serde::{Deserialize, Serialize};

/// Thermal network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Ambient (heat-sink) temperature in °C.
    pub ambient_c: f64,
    /// Vertical thermal resistance per tile, °C/W.
    pub r_vertical: f64,
    /// Lateral tile-to-tile thermal resistance, °C/W.
    pub r_lateral: f64,
    /// Tile thermal capacitance, J/°C.
    pub c_th: f64,
    /// Junction-temperature ceiling, °C: thermal throttling clamps tiles
    /// here (real chips trip DTM well before silicon limits).
    pub max_temperature_c: f64,
}

impl Default for ThermalParams {
    fn default() -> Self {
        Self {
            ambient_c: 45.0,
            r_vertical: 150.0,
            r_lateral: 50.0,
            // τ = R·C ≈ 150 · 2e-8 = 3 µs: ~6 control epochs at 2 GHz.
            c_th: 2e-8,
            max_temperature_c: 108.0,
        }
    }
}

/// The per-router thermal state.
///
/// # Example
///
/// ```
/// use noc_fault::thermal::{ThermalModel, ThermalParams};
///
/// let mut model = ThermalModel::new(4, 4, ThermalParams::default());
/// // Heat one corner hard for a long time.
/// let mut powers = [0.02; 16];
/// powers[0] = 0.35;
/// for _ in 0..100 {
///     model.update(&powers, 1e-6);
/// }
/// assert!(model.temperature(0) > model.temperature(15));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    width: u16,
    height: u16,
    params: ThermalParams,
    temperatures: Vec<f64>,
}

impl ThermalModel {
    /// Creates a model for a `width × height` tile grid, initialized at a
    /// light-load steady state just above ambient.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or any parameter is non-positive.
    pub fn new(width: u16, height: u16, params: ThermalParams) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert!(
            params.r_vertical > 0.0 && params.r_lateral > 0.0 && params.c_th > 0.0,
            "thermal parameters must be positive"
        );
        let n = width as usize * height as usize;
        Self {
            width,
            height,
            params,
            // Idle-ish starting point: ~50 °C, the bottom of the paper's
            // observed range.
            temperatures: vec![params.ambient_c + 5.0; n],
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Temperature of tile `node` (row-major), in °C.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn temperature(&self, node: usize) -> f64 {
        self.temperatures[node]
    }

    /// All tile temperatures, row-major.
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Advances the thermal state by `dt` seconds under per-tile powers
    /// (watts). Internally sub-steps to keep explicit integration stable.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` does not match the grid size.
    pub fn update(&mut self, powers: &[f64], dt: f64) {
        assert_eq!(
            powers.len(),
            self.temperatures.len(),
            "power vector size mismatch"
        );
        if dt <= 0.0 {
            return;
        }
        let p = self.params;
        // Stability bound for explicit Euler: dt_sub < C / G_max where
        // G_max = 1/Rv + 4/Rl. Use a 5× margin.
        let g_max = 1.0 / p.r_vertical + 4.0 / p.r_lateral;
        let dt_stable = p.c_th / g_max / 5.0;
        let substeps = (dt / dt_stable).ceil().max(1.0) as usize;
        let h = dt / substeps as f64;
        let (w, hgt) = (self.width as usize, self.height as usize);
        let mut next = self.temperatures.clone();
        for _ in 0..substeps {
            for y in 0..hgt {
                for x in 0..w {
                    let i = y * w + x;
                    let t = self.temperatures[i];
                    let mut flow = powers[i] - (t - p.ambient_c) / p.r_vertical;
                    let mut lateral = |j: usize| {
                        flow += (self.temperatures[j] - t) / p.r_lateral;
                    };
                    if x > 0 {
                        lateral(i - 1);
                    }
                    if x + 1 < w {
                        lateral(i + 1);
                    }
                    if y > 0 {
                        lateral(i - w);
                    }
                    if y + 1 < hgt {
                        lateral(i + w);
                    }
                    next[i] = (t + h / p.c_th * flow).min(p.max_temperature_c);
                }
            }
            std::mem::swap(&mut self.temperatures, &mut next);
        }
    }

    /// The steady-state temperature of an isolated tile burning `power`
    /// watts (ignoring lateral flow) — useful for calibration checks.
    pub fn isolated_steady_state(&self, power: f64) -> f64 {
        self.params.ambient_c + power * self.params.r_vertical
    }

    /// [`ThermalModel::update`] instrumented through `telemetry`: the
    /// solve runs under a `thermal.update` span, and the resulting mean
    /// and maximum tile temperatures land in the `thermal.mean_c` /
    /// `thermal.max_c` gauges. The model itself stays telemetry-free so
    /// its value semantics (`Clone`/`PartialEq`/serde) are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` does not match the grid size.
    pub fn update_with_telemetry(
        &mut self,
        powers: &[f64],
        dt: f64,
        telemetry: &rlnoc_telemetry::Telemetry,
    ) {
        {
            let _span = telemetry.timer("thermal.update").start();
            self.update(powers, dt);
        }
        if telemetry.is_enabled() {
            let n = self.temperatures.len() as f64;
            let sum: f64 = self.temperatures.iter().sum();
            let max = self.temperatures.iter().copied().fold(f64::MIN, f64::max);
            telemetry.gauge("thermal.mean_c").set(sum / n);
            telemetry.gauge("thermal.max_c").set(max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_4x4() -> ThermalModel {
        ThermalModel::new(4, 4, ThermalParams::default())
    }

    /// Run to (near) steady state under constant power.
    fn settle(model: &mut ThermalModel, powers: &[f64]) {
        for _ in 0..2000 {
            model.update(powers, 1e-6);
        }
    }

    #[test]
    fn uniform_power_reaches_uniform_steady_state() {
        let mut m = model_4x4();
        let powers = [0.1; 16];
        settle(&mut m, &powers);
        let expect = m.isolated_steady_state(0.1);
        for &t in m.temperatures() {
            assert!((t - expect).abs() < 0.5, "tile at {t}, expected ≈{expect}");
        }
    }

    #[test]
    fn calibration_covers_paper_range() {
        // ~0.03 W idle → ~50 °C; ~0.37 W hot → ~100 °C.
        let m = model_4x4();
        assert!((m.isolated_steady_state(0.033) - 50.0).abs() < 1.0);
        assert!((m.isolated_steady_state(0.366) - 100.0).abs() < 1.0);
    }

    #[test]
    fn hot_tile_heats_its_neighbors() {
        let mut m = model_4x4();
        let mut powers = [0.02; 16];
        powers[5] = 0.4; // interior tile (1,1)
        settle(&mut m, &powers);
        let hot = m.temperature(5);
        let neighbor = m.temperature(6);
        let far = m.temperature(15);
        assert!(hot > neighbor, "source hotter than neighbor");
        assert!(neighbor > far, "lateral conduction warms neighbors");
    }

    #[test]
    fn temperature_decays_without_power() {
        let mut m = model_4x4();
        settle(&mut m, &[0.3; 16]);
        let hot = m.temperature(0);
        settle(&mut m, &[0.0; 16]);
        let cooled = m.temperature(0);
        assert!(cooled < hot);
        assert!((cooled - m.params().ambient_c).abs() < 1.0);
    }

    #[test]
    fn update_is_stable_for_large_dt() {
        let mut m = model_4x4();
        // One huge step: sub-stepping must keep it bounded.
        m.update(&[0.4; 16], 1.0);
        for &t in m.temperatures() {
            assert!(t.is_finite());
            assert!((0.0..200.0).contains(&t), "diverged to {t}");
        }
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut m = model_4x4();
        let before = m.temperatures().to_vec();
        m.update(&[0.5; 16], 0.0);
        assert_eq!(m.temperatures(), &before[..]);
    }

    #[test]
    fn monotone_in_power() {
        let mut lo = model_4x4();
        let mut hi = model_4x4();
        settle(&mut lo, &[0.05; 16]);
        settle(&mut hi, &[0.2; 16]);
        assert!(hi.temperature(0) > lo.temperature(0));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_power_length_panics() {
        let mut m = model_4x4();
        m.update(&[0.1; 4], 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacitance_panics() {
        let _ = ThermalModel::new(
            2,
            2,
            ThermalParams {
                c_th: 0.0,
                ..ThermalParams::default()
            },
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Temperatures stay within [ambient, ambient + Pmax·Rv] for any
        /// bounded power history.
        #[test]
        fn temperatures_bounded(powers in proptest::collection::vec(0.0f64..0.5, 16),
                                steps in 1usize..50) {
            let mut m = ThermalModel::new(4, 4, ThermalParams::default());
            for _ in 0..steps {
                m.update(&powers, 2e-6);
            }
            let upper = m.params().ambient_c + 0.5 * m.params().r_vertical + 1.0;
            for &t in m.temperatures() {
                prop_assert!(t >= m.params().ambient_c - 1.0);
                prop_assert!(t <= upper, "temperature {t} exceeded bound {upper}");
            }
        }
    }
}
