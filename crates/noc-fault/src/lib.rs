//! Fault substrates for NoC simulation.
//!
//! The paper derives per-link timing-error probabilities at runtime by
//! chaining three models, all rebuilt here:
//!
//! * [`variation`] — a VARIUS-style process-variation map giving each
//!   router a static susceptibility factor (systematic, spatially
//!   correlated, plus random die-to-die components).
//! * [`thermal`] — a HotSpot-style lumped-RC thermal network that turns
//!   per-router power into per-router temperature with lateral coupling.
//! * [`timing`] — the timing-error model proper: per-flit error
//!   probability as a function of temperature, link utilization, the
//!   variation factor, and the operation mode's timing slack.
//! * [`injector`] — converts probabilities into sampled bit flips on flit
//!   payloads, deterministically from a seed.
//! * [`hardfault`] — beyond the paper: deterministic schedules of
//!   *permanent* link/router failures with a replayable text format,
//!   feeding the simulator's self-healing fault-adaptive routing.
//!
//! # Example
//!
//! ```
//! use noc_fault::thermal::{ThermalModel, ThermalParams};
//! use noc_fault::timing::TimingErrorModel;
//! use noc_fault::variation::VariationMap;
//!
//! let variation = VariationMap::generate(8, 8, 0.10, 0.05, 42);
//! let mut thermal = ThermalModel::new(8, 8, ThermalParams::default());
//! let timing = TimingErrorModel::default();
//!
//! // One epoch: routers burned 0.2 W each for 0.5 µs.
//! thermal.update(&[0.2; 64], 0.5e-6);
//! let t = thermal.temperature(0);
//! let p = timing.flit_error_probability(t, 0.1, variation.factor(0), false);
//! assert!(p > 0.0 && p < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hardfault;
pub mod injector;
pub mod thermal;
pub mod timing;
pub mod variation;

pub use hardfault::{HardFault, HardFaultEntry, HardFaultSchedule};
pub use injector::FaultInjector;
/// The topology zoo hard-fault schedules are defined over, re-exported
/// so schedule builders need no separate topology dependency.
pub use noc_topo as topo;
pub use thermal::{ThermalModel, ThermalParams};
pub use timing::{TimingErrorModel, TimingErrorParams};
pub use variation::VariationMap;
