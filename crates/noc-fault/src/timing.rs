//! The timing-error probability model (VARIUS-equivalent).
//!
//! VARIUS computes, from process parameters and operating conditions, the
//! probability that a pipeline stage misses timing. As consumed by the
//! paper, its output is a *per-flit, per-hop error probability* that
//! increases with temperature and switching activity. We reproduce that
//! interface with an exponential-in-temperature model calibrated to the
//! paper's operating range (50–100 °C, link utilization ≤ 0.3
//! flits/cycle):
//!
//! ```text
//! p = p_ref · exp(k_T (T − T_ref)) · (1 + k_u · u) · v     (· relax if mode 3)
//! ```
//!
//! where `v` is the router's process-variation factor. Operation mode 3
//! adds two cycles of timing slack, which VARIUS-style models map to a
//! collapse of the error probability — represented by the multiplicative
//! `relaxed_factor` (default 1e-6, i.e. "near zero" per the paper).

use serde::{Deserialize, Serialize};

/// Parameters of the timing-error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingErrorParams {
    /// Per-flit error probability at `t_ref` with idle links and nominal
    /// process.
    pub p_ref: f64,
    /// Reference temperature in °C.
    pub t_ref: f64,
    /// Exponential temperature coefficient (1/°C).
    pub k_temp: f64,
    /// Linear utilization coefficient (per flit/cycle).
    pub k_util: f64,
    /// Multiplier applied under mode-3 relaxed timing.
    pub relaxed_factor: f64,
    /// Probability that an erroneous flit has exactly 1, 2, or ≥3 bit
    /// flips (normalized internally).
    pub flip_weights: [f64; 3],
}

impl Default for TimingErrorParams {
    /// Calibration: p rises from `1e-3` at 50 °C to ~5e-2 at 100 °C
    /// (×50), matching the qualitative VARIUS exponential sensitivity the
    /// paper exploits. At a typical 70 °C operating point this yields a
    /// ~0.5 % per-flit-hop error rate — a 5–15 % end-to-end packet
    /// failure rate for unprotected (CRC-only) transfers, rising steeply
    /// in hot regions: the regime in which the paper's
    /// reactive-vs-proactive comparison takes place.
    fn default() -> Self {
        Self {
            p_ref: 1e-3,
            t_ref: 50.0,
            k_temp: 50f64.ln() / 50.0,
            k_util: 3.0,
            relaxed_factor: 1e-6,
            flip_weights: [0.70, 0.25, 0.05],
        }
    }
}

/// The timing-error model.
///
/// # Example
///
/// ```
/// use noc_fault::timing::TimingErrorModel;
///
/// let model = TimingErrorModel::default();
/// let cool = model.flit_error_probability(55.0, 0.05, 1.0, false);
/// let hot = model.flit_error_probability(95.0, 0.05, 1.0, false);
/// assert!(hot > 10.0 * cool, "errors grow steeply with temperature");
/// let relaxed = model.flit_error_probability(95.0, 0.05, 1.0, true);
/// assert!(relaxed < 1e-6, "mode-3 slack all but eliminates errors");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimingErrorModel {
    params: TimingErrorParams,
}

impl TimingErrorModel {
    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `p_ref` is not a probability or the flip weights don't
    /// sum to a positive value.
    pub fn new(params: TimingErrorParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.p_ref),
            "p_ref must be a probability"
        );
        assert!(
            params.flip_weights.iter().sum::<f64>() > 0.0,
            "flip weights must have positive mass"
        );
        Self { params }
    }

    /// The model parameters.
    pub fn params(&self) -> &TimingErrorParams {
        &self.params
    }

    /// Per-flit, per-hop timing-error probability.
    ///
    /// * `temperature_c` — router temperature in °C (from the thermal
    ///   model).
    /// * `utilization` — link utilization in flits/cycle (0..~0.3).
    /// * `variation` — the router's process-variation factor.
    /// * `relaxed` — `true` under operation mode 3's two-cycle slack.
    ///
    /// The result is clamped to `[0, 0.5]`: a link erring more than half
    /// the time is electrically broken, outside this model's domain.
    pub fn flit_error_probability(
        &self,
        temperature_c: f64,
        utilization: f64,
        variation: f64,
        relaxed: bool,
    ) -> f64 {
        let p = &self.params;
        let mut prob = p.p_ref
            * (p.k_temp * (temperature_c - p.t_ref)).exp()
            * (1.0 + p.k_util * utilization.max(0.0))
            * variation.max(0.0);
        if relaxed {
            prob *= p.relaxed_factor;
        }
        prob.clamp(0.0, 0.5)
    }

    /// Given that a flit erred, the number of flipped bits (1, 2, or 3)
    /// for a uniform draw `u ∈ [0,1)`.
    pub fn flips_for_draw(&self, u: f64) -> u8 {
        let w = &self.params.flip_weights;
        let total: f64 = w.iter().sum();
        let u = u.clamp(0.0, 1.0) * total;
        if u < w[0] {
            1
        } else if u < w[0] + w[1] {
            2
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_monotone_in_temperature() {
        let m = TimingErrorModel::default();
        let mut prev = 0.0;
        for t in [50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
            let p = m.flit_error_probability(t, 0.1, 1.0, false);
            assert!(p > prev, "p({t}) = {p} not increasing");
            prev = p;
        }
    }

    #[test]
    fn probability_monotone_in_utilization() {
        let m = TimingErrorModel::default();
        let lo = m.flit_error_probability(70.0, 0.0, 1.0, false);
        let hi = m.flit_error_probability(70.0, 0.3, 1.0, false);
        assert!(hi > lo);
    }

    #[test]
    fn variation_scales_probability() {
        let m = TimingErrorModel::default();
        let base = m.flit_error_probability(70.0, 0.1, 1.0, false);
        let worse = m.flit_error_probability(70.0, 0.1, 1.5, false);
        assert!((worse / base - 1.5).abs() < 1e-9);
    }

    #[test]
    fn calibration_anchors() {
        let m = TimingErrorModel::default();
        let p50 = m.flit_error_probability(50.0, 0.0, 1.0, false);
        let p100 = m.flit_error_probability(100.0, 0.0, 1.0, false);
        assert!((p50 - 1e-3).abs() < 1e-9);
        assert!((p100 / p50 - 50.0).abs() < 1e-6, "×50 from 50→100 °C");
    }

    #[test]
    fn relaxed_mode_collapses_probability() {
        let m = TimingErrorModel::default();
        let normal = m.flit_error_probability(100.0, 0.3, 2.0, false);
        let relaxed = m.flit_error_probability(100.0, 0.3, 2.0, true);
        assert!(relaxed < normal * 1e-5);
    }

    #[test]
    fn probability_clamped_to_half() {
        let m = TimingErrorModel::default();
        let p = m.flit_error_probability(500.0, 1.0, 100.0, false);
        assert_eq!(p, 0.5);
    }

    #[test]
    fn negative_inputs_are_safe() {
        let m = TimingErrorModel::default();
        let p = m.flit_error_probability(20.0, -1.0, -1.0, false);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn flips_follow_weights() {
        let m = TimingErrorModel::default();
        assert_eq!(m.flips_for_draw(0.0), 1);
        assert_eq!(m.flips_for_draw(0.5), 1);
        assert_eq!(m.flips_for_draw(0.9), 2);
        assert_eq!(m.flips_for_draw(0.99), 3);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_p_ref_panics() {
        let _ = TimingErrorModel::new(TimingErrorParams {
            p_ref: 2.0,
            ..TimingErrorParams::default()
        });
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn probability_always_valid(t in -50.0f64..300.0, u in 0.0f64..2.0,
                                    v in 0.0f64..10.0, relaxed: bool) {
            let m = TimingErrorModel::default();
            let p = m.flit_error_probability(t, u, v, relaxed);
            prop_assert!((0.0..=0.5).contains(&p));
            prop_assert!(p.is_finite());
        }

        #[test]
        fn flips_always_one_to_three(u in 0.0f64..1.0) {
            let m = TimingErrorModel::default();
            let f = m.flips_for_draw(u);
            prop_assert!((1..=3).contains(&f));
        }
    }
}
