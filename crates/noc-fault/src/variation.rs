//! VARIUS-style process-variation map.
//!
//! Process variation makes some routers intrinsically more susceptible to
//! timing errors than others. Following VARIUS, susceptibility has a
//! *systematic* component — spatially correlated across the die, modeled
//! here as a smooth low-frequency surface interpolated from random corner
//! anchors — and a *random* per-router component. Both are multiplicative
//! log-normal factors around 1.0.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-router timing-error susceptibility multipliers.
///
/// # Example
///
/// ```
/// use noc_fault::variation::VariationMap;
///
/// let map = VariationMap::generate(8, 8, 0.1, 0.05, 1);
/// let mean: f64 = (0..64).map(|i| map.factor(i)).sum::<f64>() / 64.0;
/// assert!((0.8..1.3).contains(&mean));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationMap {
    width: u16,
    height: u16,
    factors: Vec<f64>,
}

impl VariationMap {
    /// Generates a map for a `width × height` mesh.
    ///
    /// `sigma_systematic` and `sigma_random` are the log-domain standard
    /// deviations of the two components (VARIUS uses comparable
    /// magnitudes, ~0.05–0.15 of nominal).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or a sigma is negative.
    pub fn generate(
        width: u16,
        height: u16,
        sigma_systematic: f64,
        sigma_random: f64,
        seed: u64,
    ) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(
            sigma_systematic >= 0.0 && sigma_random >= 0.0,
            "sigmas must be non-negative"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        // Systematic surface: bilinear interpolation between four random
        // corner anchors (a low-frequency spatial process).
        let mut corner = || -> f64 { gaussian(&mut rng) * sigma_systematic };
        let (c00, c10, c01, c11) = (corner(), corner(), corner(), corner());
        let mut factors = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                let fx = if width > 1 {
                    f64::from(x) / f64::from(width - 1)
                } else {
                    0.0
                };
                let fy = if height > 1 {
                    f64::from(y) / f64::from(height - 1)
                } else {
                    0.0
                };
                let systematic = c00 * (1.0 - fx) * (1.0 - fy)
                    + c10 * fx * (1.0 - fy)
                    + c01 * (1.0 - fx) * fy
                    + c11 * fx * fy;
                let random = gaussian(&mut rng) * sigma_random;
                factors.push((systematic + random).exp());
            }
        }
        Self {
            width,
            height,
            factors,
        }
    }

    /// A map with no variation (factor 1.0 everywhere).
    pub fn uniform(width: u16, height: u16) -> Self {
        Self {
            width,
            height,
            factors: vec![1.0; width as usize * height as usize],
        }
    }

    /// The susceptibility multiplier of router `node` (row-major index).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn factor(&self, node: usize) -> f64 {
        self.factors[node]
    }

    /// All factors in row-major order.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Mesh width used at generation.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height used at generation.
    pub fn height(&self) -> u16 {
        self.height
    }
}

/// Standard normal sample via Box–Muller (avoids a distribution-crate
/// dependency).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_positive() {
        let map = VariationMap::generate(8, 8, 0.15, 0.1, 7);
        assert!(map.factors().iter().all(|&f| f > 0.0));
        assert_eq!(map.factors().len(), 64);
    }

    #[test]
    fn uniform_map_is_all_ones() {
        let map = VariationMap::uniform(4, 4);
        assert!(map.factors().iter().all(|&f| f == 1.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = VariationMap::generate(8, 8, 0.1, 0.05, 3);
        let b = VariationMap::generate(8, 8, 0.1, 0.05, 3);
        assert_eq!(a, b);
        let c = VariationMap::generate(8, 8, 0.1, 0.05, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_sigma_gives_unity() {
        let map = VariationMap::generate(4, 4, 0.0, 0.0, 9);
        for &f in map.factors() {
            assert!((f - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn systematic_component_is_spatially_smooth() {
        // With only the systematic component, adjacent routers must differ
        // far less than opposite corners do on average.
        let map = VariationMap::generate(8, 8, 0.5, 0.0, 11);
        let f = |x: usize, y: usize| map.factor(y * 8 + x).ln();
        let adjacent = (f(0, 0) - f(1, 0)).abs();
        let corner_span = (f(0, 0) - f(7, 7)).abs().max((f(7, 0) - f(0, 7)).abs());
        assert!(
            adjacent <= corner_span + 1e-9,
            "adjacent {adjacent} vs corner {corner_span}"
        );
    }

    #[test]
    fn mean_factor_near_one() {
        let map = VariationMap::generate(16, 16, 0.1, 0.05, 21);
        let mean: f64 = map.factors().iter().sum::<f64>() / 256.0;
        assert!((0.8..1.3).contains(&mean), "mean factor {mean}");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_panic() {
        let _ = VariationMap::generate(0, 8, 0.1, 0.1, 0);
    }

    #[test]
    fn single_node_mesh_works() {
        let map = VariationMap::generate(1, 1, 0.1, 0.1, 0);
        assert!(map.factor(0) > 0.0);
        assert_eq!(map.width(), 1);
        assert_eq!(map.height(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_seed_yields_positive_factors(seed: u64, w in 1u16..12, h in 1u16..12) {
            let map = VariationMap::generate(w, h, 0.2, 0.1, seed);
            prop_assert_eq!(map.factors().len(), w as usize * h as usize);
            prop_assert!(map.factors().iter().all(|&f| f.is_finite() && f > 0.0));
        }
    }
}
