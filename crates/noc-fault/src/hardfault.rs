//! Deterministic permanent-fault schedules (`rlnoc-hardfault v1`).
//!
//! Transient timing errors (the [`timing`](crate::timing) model) corrupt
//! individual flits; *hard* faults remove topology. A
//! [`HardFaultSchedule`] lists links and routers that fail permanently
//! at configured cycles, either as an explicit list or drawn seedably at
//! random under a connectivity filter (the final live graph stays one
//! component, so degradation sweeps measure rerouting pressure rather
//! than partition loss).
//!
//! The schedule is a plain description — `(cycle, node, direction)`
//! triples over a [`Topo`] from the topology zoo — so this crate stays
//! free of any simulator dependency; the simulation layer translates
//! entries into its own event type. Directions use the workspace-wide
//! [`Direction`] compass (N/E/S/W on 2D members, plus U/D on stacked 3D
//! meshes) over row-major node ids.
//!
//! ## Schedule-file format (`rlnoc-hardfault v1`)
//!
//! Plain text, CRC-32 trailer over everything above it (the same
//! corruption armor as `rlnoc-case` files and runner checkpoints):
//!
//! ```text
//! rlnoc-hardfault v1
//! mesh=4x4
//! events=3
//! 20 link 5 E
//! 30 router 10
//! 450 link 0 S
//! crc=9c1a55e2
//! ```
//!
//! The `mesh=` line carries the [`Topo::encode`] string (`4x4`,
//! `torus:8x8`, `ftorus:16x16`, `3d:4x4x2`), so plain-mesh files are
//! byte-identical to the pre-zoo format. Event lines are
//! `<cycle> link <node> <N|E|S|W|U|D>` or `<cycle> router <node>`,
//! sorted by cycle. Parsing is strict — exact field order, a lowercase
//! 8-digit CRC, and a trailing newline — so any truncation or
//! single-bit flip is rejected.

use noc_coding::crc::Crc32;
use noc_topo::{Direction, NodeId, Topo, MAX_PORTS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const MAGIC: &str = "rlnoc-hardfault v1";

/// The schedule-file letter of a compass direction.
fn dir_letter(dir: Direction) -> char {
    match dir {
        Direction::North => 'N',
        Direction::East => 'E',
        Direction::South => 'S',
        Direction::West => 'W',
        Direction::Up => 'U',
        Direction::Down => 'D',
        Direction::Local => '?',
    }
}

/// The compass direction of a schedule-file letter.
fn letter_dir(s: &str) -> Option<Direction> {
    Some(match s {
        "N" => Direction::North,
        "E" => Direction::East,
        "S" => Direction::South,
        "W" => Direction::West,
        "U" => Direction::Up,
        "D" => Direction::Down,
        _ => return None,
    })
}

/// One permanent failure: a single link channel pair or a whole router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HardFault {
    /// The bidirectional link leaving `node` in compass direction
    /// `dir`. Both channel directions die.
    Link {
        /// Row-major node id of one endpoint.
        node: u16,
        /// Compass direction toward the other endpoint.
        dir: Direction,
    },
    /// The whole router: the node and every link touching it.
    Router {
        /// Row-major node id.
        node: u16,
    },
}

/// A [`HardFault`] stamped with the cycle at which it takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HardFaultEntry {
    /// Simulation cycle at which the fault becomes permanent.
    pub cycle: u64,
    /// What fails.
    pub fault: HardFault,
}

/// A deterministic schedule of permanent link/router failures on a
/// topology-zoo member, sorted by cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardFaultSchedule {
    /// The topology the node ids and directions refer to.
    pub topo: Topo,
    /// Failures in non-decreasing cycle order.
    pub entries: Vec<HardFaultEntry>,
}

/// A parse/validation failure for a schedule file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError(pub String);

impl std::fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid hard-fault schedule: {}", self.0)
    }
}

impl std::error::Error for ParseScheduleError {}

/// Total number of bidirectional links in a `w × h` mesh.
pub fn mesh_links(w: u16, h: u16) -> u64 {
    let (w, h) = (u64::from(w), u64::from(h));
    (w - 1) * h + w * (h - 1)
}

/// Total number of bidirectional links in any zoo member, counted the
/// same way [`HardFaultSchedule::final_dead_links`] counts casualties:
/// one per `(node, dir)` pair with `dir` in the canonical half-compass.
pub fn topo_links(topo: impl Into<Topo>) -> u64 {
    let topo = topo.into();
    let mut links = 0u64;
    for node in topo.nodes() {
        for &dir in topo.compass() {
            if matches!(dir, Direction::East | Direction::South | Direction::Down)
                && topo.neighbor(node, dir).is_some()
            {
                links += 1;
            }
        }
    }
    links
}

impl HardFaultSchedule {
    /// An empty schedule: the network never loses anything. Translates
    /// to the simulator's no-fault fast path, bit-identical to a run
    /// with no schedule at all.
    pub fn none(topo: impl Into<Topo>) -> Self {
        Self {
            topo: topo.into(),
            entries: Vec::new(),
        }
    }

    /// An explicit schedule. Entries are sorted by cycle (stable, so
    /// same-cycle entries keep their given order).
    ///
    /// # Panics
    ///
    /// Panics if any entry fails [`HardFaultSchedule::validate`] — an
    /// explicit list is programmer input, not untrusted data.
    pub fn explicit(topo: impl Into<Topo>, mut entries: Vec<HardFaultEntry>) -> Self {
        entries.sort_by_key(|e| e.cycle);
        let s = Self {
            topo: topo.into(),
            entries,
        };
        if let Err(e) = s.validate() {
            panic!("{e}");
        }
        s
    }

    /// Draws a random schedule: `link_faults` link failures and
    /// `router_faults` router failures at cycles uniform in `cycles`
    /// (inclusive), deterministically from `seed`, under the
    /// connectivity filter — after *all* entries apply, the surviving
    /// routers still form a single connected component. Candidates that
    /// would partition the network are redrawn; if the quota cannot be
    /// met (small networks saturate quickly), the schedule carries as
    /// many faults as could be placed.
    ///
    /// On plain 2D meshes the draw sequence is unchanged from the
    /// pre-zoo generator, so every historical `(mesh, seed)` pair
    /// reproduces its original schedule byte for byte.
    pub fn random(
        topo: impl Into<Topo>,
        link_faults: usize,
        router_faults: usize,
        cycles: (u64, u64),
        seed: u64,
    ) -> Self {
        let topo = topo.into();
        assert!(
            topo.width() >= 2 && topo.height() >= 2,
            "topology must be at least 2x2"
        );
        assert!(cycles.0 <= cycles.1, "cycle window must be ordered");
        let n = topo.num_nodes();
        let compass = topo.compass();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut node_dead = vec![false; n];
        let mut link_dead = vec![[false; MAX_PORTS]; n];
        let mut faults: Vec<HardFault> = Vec::new();
        // Routers first: each removal constrains links far more than the
        // reverse, so placing the big cuts early wastes fewer redraws.
        let quotas = [
            (router_faults, true /* router */),
            (link_faults, false /* link */),
        ];
        for &(quota, is_router) in &quotas {
            let mut placed = 0;
            let mut attempts = 0usize;
            while placed < quota && attempts < 64 * quota.max(1) {
                attempts += 1;
                let node = rng.gen_range(0u16..n as u16);
                let candidate = if is_router {
                    // Skip routers touching any prior casualty so the
                    // reject path can roll back with a plain revert
                    // (resurrecting a link no earlier fault had killed).
                    if node_dead[usize::from(node)]
                        || link_dead[usize::from(node)].iter().any(|&d| d)
                    {
                        continue;
                    }
                    HardFault::Router { node }
                } else {
                    let dir = compass[usize::from(rng.gen_range(0u8..compass.len() as u8))];
                    let Some(peer) = topo.neighbor(NodeId(node), dir) else {
                        continue; // mesh edge: no link to kill
                    };
                    if link_dead[usize::from(node)][dir.index()]
                        || node_dead[usize::from(node)]
                        || node_dead[peer.index()]
                    {
                        continue; // already gone
                    }
                    HardFault::Link { node, dir }
                };
                // Tentatively apply, test connectivity, roll back on cut.
                apply(&candidate, &mut node_dead, &mut link_dead, topo);
                if connected(&node_dead, &link_dead, topo) {
                    faults.push(candidate);
                    placed += 1;
                } else {
                    unapply(&candidate, &mut node_dead, &mut link_dead, topo);
                }
            }
        }
        let mut entries: Vec<HardFaultEntry> = faults
            .into_iter()
            .map(|fault| HardFaultEntry {
                cycle: rng.gen_range(cycles.0..cycles.1 + 1),
                fault,
            })
            .collect();
        entries.sort_by_key(|e| e.cycle);
        Self { topo, entries }
    }

    /// Checks every entry against the topology: nodes in range,
    /// direction on the topology's compass, link entries naming links
    /// that exist, and cycles non-decreasing.
    pub fn validate(&self) -> Result<(), ParseScheduleError> {
        if self.topo.width() < 2 || self.topo.height() < 2 {
            return Err(ParseScheduleError("topology dimensions must be ≥ 2".into()));
        }
        let n = self.topo.num_nodes();
        if n > usize::from(u16::MAX) {
            return Err(ParseScheduleError(
                "topology larger than u16 node ids".into(),
            ));
        }
        let mut prev_cycle = 0u64;
        for e in &self.entries {
            if e.cycle < prev_cycle {
                return Err(ParseScheduleError("entries must be sorted by cycle".into()));
            }
            prev_cycle = e.cycle;
            let node = match e.fault {
                HardFault::Link { node, .. } | HardFault::Router { node } => node,
            };
            if usize::from(node) >= n {
                return Err(ParseScheduleError(format!(
                    "node {node} outside {} topology",
                    self.topo.encode()
                )));
            }
            if let HardFault::Link { node, dir } = e.fault {
                if !self.topo.compass().contains(&dir) {
                    return Err(ParseScheduleError(format!(
                        "direction {} not on the {} compass",
                        dir_letter(dir),
                        self.topo.encode()
                    )));
                }
                if self.topo.neighbor(NodeId(node), dir).is_none() {
                    return Err(ParseScheduleError(format!(
                        "node {node} has no {} link (mesh edge)",
                        dir_letter(dir)
                    )));
                }
            }
        }
        Ok(())
    }

    /// Whether the live graph is still one connected component after
    /// every entry has applied (vacuously `true` when everything died).
    pub fn leaves_connected(&self) -> bool {
        let n = self.topo.num_nodes();
        let mut node_dead = vec![false; n];
        let mut link_dead = vec![[false; MAX_PORTS]; n];
        for e in &self.entries {
            apply(&e.fault, &mut node_dead, &mut link_dead, self.topo);
        }
        connected(&node_dead, &link_dead, self.topo)
    }

    /// Number of distinct bidirectional links dead once every entry has
    /// applied (router deaths count their incident links).
    pub fn final_dead_links(&self) -> u64 {
        let n = self.topo.num_nodes();
        let mut node_dead = vec![false; n];
        let mut link_dead = vec![[false; MAX_PORTS]; n];
        for e in &self.entries {
            apply(&e.fault, &mut node_dead, &mut link_dead, self.topo);
        }
        let mut dead = 0u64;
        for node in self.topo.nodes() {
            // Count each link once via its canonical-direction endpoint
            // (east/south on 2D, plus down between 3D layers).
            for &dir in self.topo.compass() {
                if matches!(dir, Direction::East | Direction::South | Direction::Down)
                    && self.topo.neighbor(node, dir).is_some()
                    && link_dead[node.index()][dir.index()]
                {
                    dead += 1;
                }
            }
        }
        dead
    }

    /// Serializes the schedule to the `rlnoc-hardfault v1` text format.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(MAGIC);
        body.push('\n');
        body.push_str(&format!("mesh={}\n", self.topo.encode()));
        body.push_str(&format!("events={}\n", self.entries.len()));
        for e in &self.entries {
            match e.fault {
                HardFault::Link { node, dir } => {
                    body.push_str(&format!("{} link {} {}\n", e.cycle, node, dir_letter(dir)));
                }
                HardFault::Router { node } => {
                    body.push_str(&format!("{} router {}\n", e.cycle, node));
                }
            }
        }
        let crc = Crc32::new().checksum(body.as_bytes());
        body.push_str(&format!("crc={crc:08x}\n"));
        body
    }

    /// Parses and validates an `rlnoc-hardfault v1` file, including its
    /// CRC-32 trailer. Strict by construction: exact field order, an
    /// exactly-8-digit lowercase CRC, and a final newline, so every
    /// truncation and every single-bit flip fails to parse.
    pub fn from_text(text: &str) -> Result<Self, ParseScheduleError> {
        if !text.ends_with('\n') {
            return Err(ParseScheduleError("file must end in a newline".into()));
        }
        let trailer_at = text
            .rfind("crc=")
            .ok_or_else(|| ParseScheduleError("missing crc trailer".into()))?;
        let (body, trailer) = text.split_at(trailer_at);
        let hex = trailer
            .strip_prefix("crc=")
            .and_then(|rest| rest.strip_suffix('\n'))
            .ok_or_else(|| ParseScheduleError("malformed crc trailer".into()))?;
        if hex.len() != 8
            || !hex
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return Err(ParseScheduleError(
                "crc must be exactly 8 lowercase hex digits".into(),
            ));
        }
        let stated = u32::from_str_radix(hex, 16).expect("validated hex");
        let actual = Crc32::new().checksum(body.as_bytes());
        if stated != actual {
            return Err(ParseScheduleError(format!(
                "crc mismatch: file says {stated:08x}, content is {actual:08x}"
            )));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MAGIC) {
            return Err(ParseScheduleError(format!("bad magic, want `{MAGIC}`")));
        }
        let mesh = lines
            .next()
            .and_then(|l| l.strip_prefix("mesh="))
            .ok_or_else(|| ParseScheduleError("expected `mesh=<topology>`".into()))?;
        let topo = Topo::parse(mesh).map_err(ParseScheduleError)?;
        let count: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("events="))
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| ParseScheduleError("expected `events=N`".into()))?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| ParseScheduleError("fewer event lines than `events=`".into()))?;
            let mut parts = line.split(' ');
            let cycle: u64 = parts
                .next()
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| ParseScheduleError(format!("bad event cycle in `{line}`")))?;
            let fault = match parts.next() {
                Some("link") => {
                    let node: u16 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| ParseScheduleError(format!("bad link node in `{line}`")))?;
                    let dir = parts.next().and_then(letter_dir).ok_or_else(|| {
                        ParseScheduleError(format!("bad link direction in `{line}`"))
                    })?;
                    HardFault::Link { node, dir }
                }
                Some("router") => {
                    let node: u16 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                        ParseScheduleError(format!("bad router node in `{line}`"))
                    })?;
                    HardFault::Router { node }
                }
                _ => {
                    return Err(ParseScheduleError(format!(
                        "unknown event kind in `{line}`"
                    )))
                }
            };
            if parts.next().is_some() {
                return Err(ParseScheduleError(format!("trailing junk in `{line}`")));
            }
            entries.push(HardFaultEntry { cycle, fault });
        }
        if lines.next().is_some() {
            return Err(ParseScheduleError("more event lines than `events=`".into()));
        }
        let schedule = Self { topo, entries };
        schedule.validate()?;
        Ok(schedule)
    }
}

/// Marks the fault's casualties in the dead maps (links symmetric).
fn apply(
    fault: &HardFault,
    node_dead: &mut [bool],
    link_dead: &mut [[bool; MAX_PORTS]],
    topo: Topo,
) {
    match *fault {
        HardFault::Link { node, dir } => {
            link_dead[usize::from(node)][dir.index()] = true;
            if let Some(peer) = topo.neighbor(NodeId(node), dir) {
                link_dead[peer.index()][dir.opposite().index()] = true;
            }
        }
        HardFault::Router { node } => {
            node_dead[usize::from(node)] = true;
            for &dir in topo.compass() {
                if let Some(peer) = topo.neighbor(NodeId(node), dir) {
                    link_dead[usize::from(node)][dir.index()] = true;
                    link_dead[peer.index()][dir.opposite().index()] = true;
                }
            }
        }
    }
}

/// Reverts [`apply`] for a rejected candidate. Precondition: no earlier
/// accepted fault touched any of the candidate's casualties — the
/// generator enforces this by skipping candidates adjacent to prior
/// damage, so a plain revert never resurrects someone else's kill.
fn unapply(
    fault: &HardFault,
    node_dead: &mut [bool],
    link_dead: &mut [[bool; MAX_PORTS]],
    topo: Topo,
) {
    match *fault {
        HardFault::Link { node, dir } => {
            link_dead[usize::from(node)][dir.index()] = false;
            if let Some(peer) = topo.neighbor(NodeId(node), dir) {
                link_dead[peer.index()][dir.opposite().index()] = false;
            }
        }
        HardFault::Router { node } => {
            node_dead[usize::from(node)] = false;
            for &dir in topo.compass() {
                if let Some(peer) = topo.neighbor(NodeId(node), dir) {
                    link_dead[usize::from(node)][dir.index()] = false;
                    link_dead[peer.index()][dir.opposite().index()] = false;
                }
            }
        }
    }
}

/// BFS over the live subgraph: `true` when every live node is reachable
/// from the first live node (vacuously `true` with no live nodes).
fn connected(node_dead: &[bool], link_dead: &[[bool; MAX_PORTS]], topo: Topo) -> bool {
    let n = node_dead.len();
    let Some(start) = (0..n).find(|&i| !node_dead[i]) else {
        return true;
    };
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([start as u16]);
    seen[start] = true;
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        for &dir in topo.compass() {
            if link_dead[usize::from(u)][dir.index()] {
                continue;
            }
            let Some(v) = topo.neighbor(NodeId(u), dir) else {
                continue;
            };
            if node_dead[v.index()] || seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            reached += 1;
            queue.push_back(v.0);
        }
    }
    reached == node_dead.iter().filter(|&&d| !d).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topo::{FoldedTorus, Mesh, Mesh3d, Torus};

    #[test]
    fn explicit_schedule_sorts_and_validates() {
        let s = HardFaultSchedule::explicit(
            Mesh::new(4, 4),
            vec![
                HardFaultEntry {
                    cycle: 30,
                    fault: HardFault::Router { node: 10 },
                },
                HardFaultEntry {
                    cycle: 20,
                    fault: HardFault::Link {
                        node: 5,
                        dir: Direction::East,
                    },
                },
            ],
        );
        assert_eq!(s.entries[0].cycle, 20);
        assert_eq!(s.entries[1].cycle, 30);
        s.validate().expect("explicit schedule is valid");
    }

    #[test]
    #[should_panic(expected = "mesh edge")]
    fn edge_link_is_rejected() {
        // Node 0 sits in the north-west corner: no north link exists.
        let _ = HardFaultSchedule::explicit(
            Mesh::new(4, 4),
            vec![HardFaultEntry {
                cycle: 1,
                fault: HardFault::Link {
                    node: 0,
                    dir: Direction::North,
                },
            }],
        );
    }

    #[test]
    #[should_panic(expected = "compass")]
    fn vertical_link_on_flat_mesh_is_rejected() {
        let _ = HardFaultSchedule::explicit(
            Mesh::new(4, 4),
            vec![HardFaultEntry {
                cycle: 1,
                fault: HardFault::Link {
                    node: 5,
                    dir: Direction::Up,
                },
            }],
        );
    }

    #[test]
    fn random_schedules_are_deterministic_and_connected() {
        for seed in 0..16 {
            let a = HardFaultSchedule::random(Mesh::new(5, 5), 6, 1, (10, 500), seed);
            let b = HardFaultSchedule::random(Mesh::new(5, 5), 6, 1, (10, 500), seed);
            assert_eq!(a, b, "same seed must yield the same schedule");
            a.validate().expect("random schedules are valid");
            assert!(a.leaves_connected(), "connectivity filter must hold");
            assert!(!a.entries.is_empty());
            assert!(a.entries.windows(2).all(|p| p[0].cycle <= p[1].cycle));
        }
        let other = HardFaultSchedule::random(Mesh::new(5, 5), 6, 1, (10, 500), 999);
        assert_ne!(
            other,
            HardFaultSchedule::random(Mesh::new(5, 5), 6, 1, (10, 500), 0),
            "different seeds must decorrelate"
        );
    }

    #[test]
    fn random_schedules_cover_the_zoo() {
        let topos: [Topo; 4] = [
            Mesh::new(6, 6).into(),
            Torus::new(6, 6).into(),
            FoldedTorus::new(6, 6).into(),
            Mesh3d::new(4, 4, 3).into(),
        ];
        for topo in topos {
            for seed in 0..8 {
                let s = HardFaultSchedule::random(topo, 5, 1, (10, 500), seed);
                assert_eq!(s.topo, topo);
                s.validate().expect("random schedules are valid");
                assert!(s.leaves_connected(), "connectivity filter on {topo:?}");
                assert!(!s.entries.is_empty());
            }
        }
    }

    #[test]
    fn random_on_3d_mesh_kills_vertical_links() {
        // With enough draws some vertical (U/D) link must die on a
        // stacked mesh; this pins that the generator samples the full
        // 3D compass rather than just the in-layer directions.
        let mut saw_vertical = false;
        for seed in 0..32 {
            let s = HardFaultSchedule::random(Mesh3d::new(4, 4, 3), 8, 0, (1, 100), seed);
            saw_vertical |= s.entries.iter().any(|e| {
                matches!(
                    e.fault,
                    HardFault::Link {
                        dir: Direction::Up | Direction::Down,
                        ..
                    }
                )
            });
        }
        assert!(saw_vertical, "3D schedules never touched a vertical link");
    }

    #[test]
    fn random_saturates_gracefully_on_tiny_meshes() {
        // A 2x2 mesh has 4 links and loses connectivity fast; asking for
        // far more faults than fit must terminate with fewer entries.
        let s = HardFaultSchedule::random(Mesh::new(2, 2), 50, 2, (0, 10), 7);
        s.validate().expect("saturated schedule still valid");
        assert!(s.leaves_connected());
        assert!(s.entries.len() < 52);
    }

    #[test]
    fn text_round_trip_is_exact() {
        let topos: [Topo; 4] = [
            Mesh::new(4, 4).into(),
            Torus::new(4, 4).into(),
            FoldedTorus::new(4, 4).into(),
            Mesh3d::new(3, 3, 2).into(),
        ];
        for topo in topos {
            for seed in 0..8 {
                let s = HardFaultSchedule::random(topo, 4, 1, (0, 1000), seed);
                let text = s.to_text();
                let back = HardFaultSchedule::from_text(&text).expect("round trip");
                assert_eq!(s, back);
            }
        }
        let empty = HardFaultSchedule::none(Mesh::new(3, 3));
        assert_eq!(
            HardFaultSchedule::from_text(&empty.to_text()).expect("empty round trip"),
            empty,
        );
    }

    #[test]
    fn plain_mesh_header_matches_the_pre_zoo_format() {
        // Byte-level compatibility pin: a 2D-mesh schedule still writes
        // `mesh=WxH` with no topology prefix.
        let text = HardFaultSchedule::none(Mesh::new(4, 4)).to_text();
        assert!(text.contains("\nmesh=4x4\n"), "got: {text}");
        let torus = HardFaultSchedule::none(Torus::new(4, 4)).to_text();
        assert!(torus.contains("\nmesh=torus:4x4\n"), "got: {torus}");
    }

    #[test]
    fn truncation_at_every_byte_offset_is_rejected() {
        let text = HardFaultSchedule::random(Mesh::new(4, 4), 3, 1, (5, 50), 11).to_text();
        for cut in 0..text.len() {
            assert!(
                HardFaultSchedule::from_text(&text[..cut]).is_err(),
                "truncation to {cut}/{} bytes must not parse",
                text.len(),
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let text = HardFaultSchedule::random(Mesh3d::new(3, 3, 2), 3, 1, (5, 50), 13).to_text();
        let clean = text.as_bytes();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.to_vec();
                corrupt[byte] ^= 1 << bit;
                let Ok(corrupt) = String::from_utf8(corrupt) else {
                    continue; // not even text any more
                };
                assert!(
                    HardFaultSchedule::from_text(&corrupt).is_err(),
                    "flipping bit {bit} of byte {byte} must not parse",
                );
            }
        }
    }

    #[test]
    fn mesh_links_counts_the_grid() {
        assert_eq!(mesh_links(2, 2), 4);
        assert_eq!(mesh_links(4, 4), 24);
        assert_eq!(mesh_links(8, 8), 112);
        assert_eq!(mesh_links(3, 2), 7);
    }

    #[test]
    fn topo_links_counts_every_zoo_member() {
        // Mesh agrees with the closed form; torus adds the wrap links
        // (2·w·h total for a full torus); 3D adds w·h·(d−1) verticals.
        assert_eq!(topo_links(Mesh::new(4, 4)), mesh_links(4, 4));
        assert_eq!(topo_links(Torus::new(4, 4)), 32);
        assert_eq!(topo_links(FoldedTorus::new(4, 4)), 32);
        assert_eq!(topo_links(Mesh3d::new(4, 4, 2)), 2 * 24 + 16);
    }

    #[test]
    fn final_dead_links_counts_each_link_once() {
        let s = HardFaultSchedule::explicit(
            Mesh::new(4, 4),
            vec![
                HardFaultEntry {
                    cycle: 1,
                    fault: HardFault::Link {
                        node: 5,
                        dir: Direction::East,
                    },
                },
                HardFaultEntry {
                    cycle: 2,
                    // Router 5 dies later: its East link is already dead,
                    // the remaining three are fresh casualties.
                    fault: HardFault::Router { node: 5 },
                },
            ],
        );
        assert_eq!(s.final_dead_links(), 4);
    }

    #[test]
    fn final_dead_links_counts_torus_wrap_links() {
        // Node 0's West link on a 4-wide torus is the wrap link to
        // node 3; killing it must register exactly one dead link.
        let s = HardFaultSchedule::explicit(
            Torus::new(4, 4),
            vec![HardFaultEntry {
                cycle: 1,
                fault: HardFault::Link {
                    node: 0,
                    dir: Direction::West,
                },
            }],
        );
        assert_eq!(s.final_dead_links(), 1);
    }
}
