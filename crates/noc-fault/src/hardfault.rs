//! Deterministic permanent-fault schedules (`rlnoc-hardfault v1`).
//!
//! Transient timing errors (the [`timing`](crate::timing) model) corrupt
//! individual flits; *hard* faults remove topology. A
//! [`HardFaultSchedule`] lists links and routers that fail permanently
//! at configured cycles, either as an explicit list or drawn seedably at
//! random under a connectivity filter (the final live graph stays one
//! component, so degradation sweeps measure rerouting pressure rather
//! than partition loss).
//!
//! The schedule is a plain description — `(cycle, node, direction)`
//! triples over a `width × height` grid — so this crate stays free of
//! any simulator dependency; the simulation layer translates entries
//! into its own event type. Directions use the workspace-wide compass
//! indices (0 = N, 1 = E, 2 = S, 3 = W) over row-major node ids
//! (`id = y * width + x`, north = decreasing `y`).
//!
//! ## Schedule-file format (`rlnoc-hardfault v1`)
//!
//! Plain text, CRC-32 trailer over everything above it (the same
//! corruption armor as `rlnoc-case` files and runner checkpoints):
//!
//! ```text
//! rlnoc-hardfault v1
//! mesh=4x4
//! events=3
//! 20 link 5 E
//! 30 router 10
//! 450 link 0 S
//! crc=9c1a55e2
//! ```
//!
//! Event lines are `<cycle> link <node> <N|E|S|W>` or
//! `<cycle> router <node>`, sorted by cycle. Parsing is strict — exact
//! field order, a lowercase 8-digit CRC, and a trailing newline — so
//! any truncation or single-bit flip is rejected.

use noc_coding::crc::Crc32;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Compass direction count (the `Local` port cannot hard-fail).
pub const NUM_DIRS: u8 = 4;

const DIR_LETTERS: [char; 4] = ['N', 'E', 'S', 'W'];
const MAGIC: &str = "rlnoc-hardfault v1";

/// One permanent failure: a single link channel pair or a whole router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HardFault {
    /// The bidirectional link leaving `node` in compass direction
    /// `dir` (0 = N, 1 = E, 2 = S, 3 = W). Both channel directions die.
    Link {
        /// Row-major node id of one endpoint.
        node: u16,
        /// Compass direction index toward the other endpoint.
        dir: u8,
    },
    /// The whole router: the node and every link touching it.
    Router {
        /// Row-major node id.
        node: u16,
    },
}

/// A [`HardFault`] stamped with the cycle at which it takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HardFaultEntry {
    /// Simulation cycle at which the fault becomes permanent.
    pub cycle: u64,
    /// What fails.
    pub fault: HardFault,
}

/// A deterministic schedule of permanent link/router failures on a
/// `mesh_w × mesh_h` grid, sorted by cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardFaultSchedule {
    /// Mesh width the node ids refer to.
    pub mesh_w: u16,
    /// Mesh height the node ids refer to.
    pub mesh_h: u16,
    /// Failures in non-decreasing cycle order.
    pub entries: Vec<HardFaultEntry>,
}

/// A parse/validation failure for a schedule file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError(pub String);

impl std::fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid hard-fault schedule: {}", self.0)
    }
}

impl std::error::Error for ParseScheduleError {}

/// Total number of bidirectional links in a `w × h` mesh.
pub fn mesh_links(w: u16, h: u16) -> u64 {
    let (w, h) = (u64::from(w), u64::from(h));
    (w - 1) * h + w * (h - 1)
}

/// `(x, y)` of a row-major node id.
fn coords(node: u16, w: u16) -> (u16, u16) {
    (node % w, node / w)
}

/// The neighbor of `node` in compass direction `dir`, if it exists.
fn neighbor(node: u16, dir: u8, w: u16, h: u16) -> Option<u16> {
    let (x, y) = coords(node, w);
    let (nx, ny) = match dir {
        0 => (x, y.checked_sub(1)?),             // north
        1 => ((x + 1 < w).then_some(x + 1)?, y), // east
        2 => (x, (y + 1 < h).then_some(y + 1)?), // south
        3 => (x.checked_sub(1)?, y),             // west
        _ => return None,
    };
    Some(ny * w + nx)
}

impl HardFaultSchedule {
    /// An empty schedule: the mesh never loses anything. Translates to
    /// the simulator's no-fault fast path, bit-identical to a run with
    /// no schedule at all.
    pub fn none(mesh_w: u16, mesh_h: u16) -> Self {
        Self {
            mesh_w,
            mesh_h,
            entries: Vec::new(),
        }
    }

    /// An explicit schedule. Entries are sorted by cycle (stable, so
    /// same-cycle entries keep their given order).
    ///
    /// # Panics
    ///
    /// Panics if any entry fails [`HardFaultSchedule::validate`] — an
    /// explicit list is programmer input, not untrusted data.
    pub fn explicit(mesh_w: u16, mesh_h: u16, mut entries: Vec<HardFaultEntry>) -> Self {
        entries.sort_by_key(|e| e.cycle);
        let s = Self {
            mesh_w,
            mesh_h,
            entries,
        };
        if let Err(e) = s.validate() {
            panic!("{e}");
        }
        s
    }

    /// Draws a random schedule: `link_faults` link failures and
    /// `router_faults` router failures at cycles uniform in `cycles`
    /// (inclusive), deterministically from `seed`, under the
    /// connectivity filter — after *all* entries apply, the surviving
    /// routers still form a single connected component. Candidates that
    /// would partition the mesh are redrawn; if the quota cannot be met
    /// (small meshes saturate quickly), the schedule carries as many
    /// faults as could be placed.
    pub fn random(
        mesh_w: u16,
        mesh_h: u16,
        link_faults: usize,
        router_faults: usize,
        cycles: (u64, u64),
        seed: u64,
    ) -> Self {
        assert!(mesh_w >= 2 && mesh_h >= 2, "mesh must be at least 2x2");
        assert!(cycles.0 <= cycles.1, "cycle window must be ordered");
        let n = usize::from(mesh_w) * usize::from(mesh_h);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut node_dead = vec![false; n];
        let mut link_dead = vec![[false; 4]; n];
        let mut faults: Vec<HardFault> = Vec::new();
        // Routers first: each removal constrains links far more than the
        // reverse, so placing the big cuts early wastes fewer redraws.
        let quotas = [
            (router_faults, true /* router */),
            (link_faults, false /* link */),
        ];
        for &(quota, is_router) in &quotas {
            let mut placed = 0;
            let mut attempts = 0usize;
            while placed < quota && attempts < 64 * quota.max(1) {
                attempts += 1;
                let node = rng.gen_range(0u16..n as u16);
                let candidate = if is_router {
                    // Skip routers touching any prior casualty so the
                    // reject path can roll back with a plain revert
                    // (resurrecting a link no earlier fault had killed).
                    if node_dead[usize::from(node)]
                        || link_dead[usize::from(node)].iter().any(|&d| d)
                    {
                        continue;
                    }
                    HardFault::Router { node }
                } else {
                    let dir = rng.gen_range(0u8..NUM_DIRS);
                    let Some(peer) = neighbor(node, dir, mesh_w, mesh_h) else {
                        continue; // mesh edge: no link to kill
                    };
                    if link_dead[usize::from(node)][usize::from(dir)]
                        || node_dead[usize::from(node)]
                        || node_dead[usize::from(peer)]
                    {
                        continue; // already gone
                    }
                    HardFault::Link { node, dir }
                };
                // Tentatively apply, test connectivity, roll back on cut.
                apply(&candidate, &mut node_dead, &mut link_dead, mesh_w, mesh_h);
                if connected(&node_dead, &link_dead, mesh_w, mesh_h) {
                    faults.push(candidate);
                    placed += 1;
                } else {
                    unapply(&candidate, &mut node_dead, &mut link_dead, mesh_w, mesh_h);
                }
            }
        }
        let mut entries: Vec<HardFaultEntry> = faults
            .into_iter()
            .map(|fault| HardFaultEntry {
                cycle: rng.gen_range(cycles.0..cycles.1 + 1),
                fault,
            })
            .collect();
        entries.sort_by_key(|e| e.cycle);
        Self {
            mesh_w,
            mesh_h,
            entries,
        }
    }

    /// Checks every entry against the mesh: nodes in range, direction a
    /// real compass index, link entries naming links that exist, and
    /// cycles non-decreasing.
    pub fn validate(&self) -> Result<(), ParseScheduleError> {
        if self.mesh_w < 2 || self.mesh_h < 2 {
            return Err(ParseScheduleError("mesh dimensions must be ≥ 2".into()));
        }
        let n = u32::from(self.mesh_w) * u32::from(self.mesh_h);
        if n > u32::from(u16::MAX) {
            return Err(ParseScheduleError("mesh larger than u16 node ids".into()));
        }
        let mut prev_cycle = 0u64;
        for e in &self.entries {
            if e.cycle < prev_cycle {
                return Err(ParseScheduleError("entries must be sorted by cycle".into()));
            }
            prev_cycle = e.cycle;
            let node = match e.fault {
                HardFault::Link { node, .. } | HardFault::Router { node } => node,
            };
            if u32::from(node) >= n {
                return Err(ParseScheduleError(format!(
                    "node {node} outside {}x{} mesh",
                    self.mesh_w, self.mesh_h
                )));
            }
            if let HardFault::Link { node, dir } = e.fault {
                if dir >= NUM_DIRS {
                    return Err(ParseScheduleError(format!("bad direction index {dir}")));
                }
                if neighbor(node, dir, self.mesh_w, self.mesh_h).is_none() {
                    return Err(ParseScheduleError(format!(
                        "node {node} has no {} link (mesh edge)",
                        DIR_LETTERS[usize::from(dir)]
                    )));
                }
            }
        }
        Ok(())
    }

    /// Whether the live graph is still one connected component after
    /// every entry has applied (vacuously `true` when everything died).
    pub fn leaves_connected(&self) -> bool {
        let n = usize::from(self.mesh_w) * usize::from(self.mesh_h);
        let mut node_dead = vec![false; n];
        let mut link_dead = vec![[false; 4]; n];
        for e in &self.entries {
            apply(
                &e.fault,
                &mut node_dead,
                &mut link_dead,
                self.mesh_w,
                self.mesh_h,
            );
        }
        connected(&node_dead, &link_dead, self.mesh_w, self.mesh_h)
    }

    /// Number of distinct bidirectional links dead once every entry has
    /// applied (router deaths count their incident links).
    pub fn final_dead_links(&self) -> u64 {
        let n = usize::from(self.mesh_w) * usize::from(self.mesh_h);
        let mut node_dead = vec![false; n];
        let mut link_dead = vec![[false; 4]; n];
        for e in &self.entries {
            apply(
                &e.fault,
                &mut node_dead,
                &mut link_dead,
                self.mesh_w,
                self.mesh_h,
            );
        }
        let mut dead = 0u64;
        for node in 0..n as u16 {
            // Count each link once via its east/south endpoint.
            for dir in [1u8, 2] {
                if neighbor(node, dir, self.mesh_w, self.mesh_h).is_some()
                    && link_dead[usize::from(node)][usize::from(dir)]
                {
                    dead += 1;
                }
            }
        }
        dead
    }

    /// Serializes the schedule to the `rlnoc-hardfault v1` text format.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(MAGIC);
        body.push('\n');
        body.push_str(&format!("mesh={}x{}\n", self.mesh_w, self.mesh_h));
        body.push_str(&format!("events={}\n", self.entries.len()));
        for e in &self.entries {
            match e.fault {
                HardFault::Link { node, dir } => {
                    body.push_str(&format!(
                        "{} link {} {}\n",
                        e.cycle,
                        node,
                        DIR_LETTERS[usize::from(dir)]
                    ));
                }
                HardFault::Router { node } => {
                    body.push_str(&format!("{} router {}\n", e.cycle, node));
                }
            }
        }
        let crc = Crc32::new().checksum(body.as_bytes());
        body.push_str(&format!("crc={crc:08x}\n"));
        body
    }

    /// Parses and validates an `rlnoc-hardfault v1` file, including its
    /// CRC-32 trailer. Strict by construction: exact field order, an
    /// exactly-8-digit lowercase CRC, and a final newline, so every
    /// truncation and every single-bit flip fails to parse.
    pub fn from_text(text: &str) -> Result<Self, ParseScheduleError> {
        if !text.ends_with('\n') {
            return Err(ParseScheduleError("file must end in a newline".into()));
        }
        let trailer_at = text
            .rfind("crc=")
            .ok_or_else(|| ParseScheduleError("missing crc trailer".into()))?;
        let (body, trailer) = text.split_at(trailer_at);
        let hex = trailer
            .strip_prefix("crc=")
            .and_then(|rest| rest.strip_suffix('\n'))
            .ok_or_else(|| ParseScheduleError("malformed crc trailer".into()))?;
        if hex.len() != 8
            || !hex
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return Err(ParseScheduleError(
                "crc must be exactly 8 lowercase hex digits".into(),
            ));
        }
        let stated = u32::from_str_radix(hex, 16).expect("validated hex");
        let actual = Crc32::new().checksum(body.as_bytes());
        if stated != actual {
            return Err(ParseScheduleError(format!(
                "crc mismatch: file says {stated:08x}, content is {actual:08x}"
            )));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MAGIC) {
            return Err(ParseScheduleError(format!("bad magic, want `{MAGIC}`")));
        }
        let mesh = lines
            .next()
            .and_then(|l| l.strip_prefix("mesh="))
            .ok_or_else(|| ParseScheduleError("expected `mesh=WxH`".into()))?;
        let (w, h) = mesh
            .split_once('x')
            .ok_or_else(|| ParseScheduleError("mesh must be WxH".into()))?;
        let mesh_w: u16 = w
            .parse()
            .map_err(|_| ParseScheduleError("bad mesh width".into()))?;
        let mesh_h: u16 = h
            .parse()
            .map_err(|_| ParseScheduleError("bad mesh height".into()))?;
        let count: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("events="))
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| ParseScheduleError("expected `events=N`".into()))?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| ParseScheduleError("fewer event lines than `events=`".into()))?;
            let mut parts = line.split(' ');
            let cycle: u64 = parts
                .next()
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| ParseScheduleError(format!("bad event cycle in `{line}`")))?;
            let fault = match parts.next() {
                Some("link") => {
                    let node: u16 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| ParseScheduleError(format!("bad link node in `{line}`")))?;
                    let dir = match parts.next() {
                        Some("N") => 0,
                        Some("E") => 1,
                        Some("S") => 2,
                        Some("W") => 3,
                        _ => {
                            return Err(ParseScheduleError(format!(
                                "bad link direction in `{line}`"
                            )));
                        }
                    };
                    HardFault::Link { node, dir }
                }
                Some("router") => {
                    let node: u16 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                        ParseScheduleError(format!("bad router node in `{line}`"))
                    })?;
                    HardFault::Router { node }
                }
                _ => {
                    return Err(ParseScheduleError(format!(
                        "unknown event kind in `{line}`"
                    )))
                }
            };
            if parts.next().is_some() {
                return Err(ParseScheduleError(format!("trailing junk in `{line}`")));
            }
            entries.push(HardFaultEntry { cycle, fault });
        }
        if lines.next().is_some() {
            return Err(ParseScheduleError("more event lines than `events=`".into()));
        }
        let schedule = Self {
            mesh_w,
            mesh_h,
            entries,
        };
        schedule.validate()?;
        Ok(schedule)
    }
}

/// Marks the fault's casualties in the dead maps (links symmetric).
fn apply(fault: &HardFault, node_dead: &mut [bool], link_dead: &mut [[bool; 4]], w: u16, h: u16) {
    match *fault {
        HardFault::Link { node, dir } => {
            link_dead[usize::from(node)][usize::from(dir)] = true;
            if let Some(peer) = neighbor(node, dir, w, h) {
                link_dead[usize::from(peer)][usize::from(dir ^ 2)] = true;
            }
        }
        HardFault::Router { node } => {
            node_dead[usize::from(node)] = true;
            for dir in 0..NUM_DIRS {
                if let Some(peer) = neighbor(node, dir, w, h) {
                    link_dead[usize::from(node)][usize::from(dir)] = true;
                    link_dead[usize::from(peer)][usize::from(dir ^ 2)] = true;
                }
            }
        }
    }
}

/// Reverts [`apply`] for a rejected candidate. Precondition: no earlier
/// accepted fault touched any of the candidate's casualties — the
/// generator enforces this by skipping candidates adjacent to prior
/// damage, so a plain revert never resurrects someone else's kill.
fn unapply(fault: &HardFault, node_dead: &mut [bool], link_dead: &mut [[bool; 4]], w: u16, h: u16) {
    match *fault {
        HardFault::Link { node, dir } => {
            link_dead[usize::from(node)][usize::from(dir)] = false;
            if let Some(peer) = neighbor(node, dir, w, h) {
                link_dead[usize::from(peer)][usize::from(dir ^ 2)] = false;
            }
        }
        HardFault::Router { node } => {
            node_dead[usize::from(node)] = false;
            for dir in 0..NUM_DIRS {
                if let Some(peer) = neighbor(node, dir, w, h) {
                    link_dead[usize::from(node)][usize::from(dir)] = false;
                    link_dead[usize::from(peer)][usize::from(dir ^ 2)] = false;
                }
            }
        }
    }
}

/// BFS over the live sub-grid: `true` when every live node is reachable
/// from the first live node (vacuously `true` with no live nodes).
fn connected(node_dead: &[bool], link_dead: &[[bool; 4]], w: u16, h: u16) -> bool {
    let n = node_dead.len();
    let Some(start) = (0..n).find(|&i| !node_dead[i]) else {
        return true;
    };
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([start as u16]);
    seen[start] = true;
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        for dir in 0..NUM_DIRS {
            if link_dead[usize::from(u)][usize::from(dir)] {
                continue;
            }
            let Some(v) = neighbor(u, dir, w, h) else {
                continue;
            };
            if node_dead[usize::from(v)] || seen[usize::from(v)] {
                continue;
            }
            seen[usize::from(v)] = true;
            reached += 1;
            queue.push_back(v);
        }
    }
    reached == node_dead.iter().filter(|&&d| !d).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_sorts_and_validates() {
        let s = HardFaultSchedule::explicit(
            4,
            4,
            vec![
                HardFaultEntry {
                    cycle: 30,
                    fault: HardFault::Router { node: 10 },
                },
                HardFaultEntry {
                    cycle: 20,
                    fault: HardFault::Link { node: 5, dir: 1 },
                },
            ],
        );
        assert_eq!(s.entries[0].cycle, 20);
        assert_eq!(s.entries[1].cycle, 30);
        s.validate().expect("explicit schedule is valid");
    }

    #[test]
    #[should_panic(expected = "mesh edge")]
    fn edge_link_is_rejected() {
        // Node 0 sits in the north-west corner: no north link exists.
        let _ = HardFaultSchedule::explicit(
            4,
            4,
            vec![HardFaultEntry {
                cycle: 1,
                fault: HardFault::Link { node: 0, dir: 0 },
            }],
        );
    }

    #[test]
    fn random_schedules_are_deterministic_and_connected() {
        for seed in 0..16 {
            let a = HardFaultSchedule::random(5, 5, 6, 1, (10, 500), seed);
            let b = HardFaultSchedule::random(5, 5, 6, 1, (10, 500), seed);
            assert_eq!(a, b, "same seed must yield the same schedule");
            a.validate().expect("random schedules are valid");
            assert!(a.leaves_connected(), "connectivity filter must hold");
            assert!(!a.entries.is_empty());
            assert!(a.entries.windows(2).all(|p| p[0].cycle <= p[1].cycle));
        }
        let other = HardFaultSchedule::random(5, 5, 6, 1, (10, 500), 999);
        assert_ne!(
            other,
            HardFaultSchedule::random(5, 5, 6, 1, (10, 500), 0),
            "different seeds must decorrelate"
        );
    }

    #[test]
    fn random_saturates_gracefully_on_tiny_meshes() {
        // A 2x2 mesh has 4 links and loses connectivity fast; asking for
        // far more faults than fit must terminate with fewer entries.
        let s = HardFaultSchedule::random(2, 2, 50, 2, (0, 10), 7);
        s.validate().expect("saturated schedule still valid");
        assert!(s.leaves_connected());
        assert!(s.entries.len() < 52);
    }

    #[test]
    fn text_round_trip_is_exact() {
        for seed in 0..8 {
            let s = HardFaultSchedule::random(4, 4, 4, 1, (0, 1000), seed);
            let text = s.to_text();
            let back = HardFaultSchedule::from_text(&text).expect("round trip");
            assert_eq!(s, back);
        }
        let empty = HardFaultSchedule::none(3, 3);
        assert_eq!(
            HardFaultSchedule::from_text(&empty.to_text()).expect("empty round trip"),
            empty,
        );
    }

    #[test]
    fn truncation_at_every_byte_offset_is_rejected() {
        let text = HardFaultSchedule::random(4, 4, 3, 1, (5, 50), 11).to_text();
        for cut in 0..text.len() {
            assert!(
                HardFaultSchedule::from_text(&text[..cut]).is_err(),
                "truncation to {cut}/{} bytes must not parse",
                text.len(),
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let text = HardFaultSchedule::random(4, 4, 3, 1, (5, 50), 13).to_text();
        let clean = text.as_bytes();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.to_vec();
                corrupt[byte] ^= 1 << bit;
                let Ok(corrupt) = String::from_utf8(corrupt) else {
                    continue; // not even text any more
                };
                assert!(
                    HardFaultSchedule::from_text(&corrupt).is_err(),
                    "flipping bit {bit} of byte {byte} must not parse",
                );
            }
        }
    }

    #[test]
    fn mesh_links_counts_the_grid() {
        assert_eq!(mesh_links(2, 2), 4);
        assert_eq!(mesh_links(4, 4), 24);
        assert_eq!(mesh_links(8, 8), 112);
        assert_eq!(mesh_links(3, 2), 7);
    }

    #[test]
    fn final_dead_links_counts_each_link_once() {
        let s = HardFaultSchedule::explicit(
            4,
            4,
            vec![
                HardFaultEntry {
                    cycle: 1,
                    fault: HardFault::Link { node: 5, dir: 1 },
                },
                HardFaultEntry {
                    cycle: 2,
                    // Router 5 dies later: its East link is already dead,
                    // the remaining three are fresh casualties.
                    fault: HardFault::Router { node: 5 },
                },
            ],
        );
        assert_eq!(s.final_dead_links(), 4);
    }
}
