//! Deterministic fault sampling and bit-flip injection.
//!
//! [`FaultInjector`] owns the random stream that converts per-flit error
//! probabilities (from [`TimingErrorModel`](crate::timing::TimingErrorModel))
//! into concrete flipped bit positions. Keeping the stream in one place
//! makes entire experiments reproducible from a single seed.

use crate::timing::TimingErrorModel;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Maximum bit flips a single fault event can produce (the flip-weight
/// distribution is over 1, 2, or 3 flips).
pub const MAX_FLIPS: usize = 3;

/// A per-flit error probability precompiled into the integer domain of
/// the RNG, so the hot-path Bernoulli draw is one `u64` compare instead
/// of an int→float conversion, multiply, and float compare per flit.
///
/// `rand`'s `gen_bool(p)` accepts a draw when `(bits >> 11) · 2⁻⁵³ < p`.
/// Both sides scale exactly by 2⁵³ (power-of-two scaling of an integer
/// below 2⁵³ is exact in f64), so the accept set is *identical* to
/// comparing the integer `bits >> 11` against `ceil(p · 2⁵³)` — the
/// cached [`FaultTolerantProtocol`] recomputes this once per control
/// epoch and replays the exact same accept/reject decisions per draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorThreshold(u64);

impl ErrorThreshold {
    /// Compiles probability `p` (clamped to `[0, 1]`) into its exact
    /// integer acceptance threshold.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    pub fn from_probability(p: f64) -> Self {
        assert!(!p.is_nan(), "error probability is NaN");
        let p = p.clamp(0.0, 1.0);
        Self((p * (1u64 << 53) as f64).ceil() as u64)
    }

    /// `true` when no draw can ever be accepted (p == 0).
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Samples fault events and flips payload bits.
///
/// # Example
///
/// ```
/// use noc_fault::injector::FaultInjector;
/// use noc_fault::timing::TimingErrorModel;
///
/// let model = TimingErrorModel::default();
/// let mut injector = FaultInjector::new(7);
/// let mut errors = 0;
/// for _ in 0..10_000 {
///     if injector.sample_flips(&model, 0.01) > 0 {
///         errors += 1;
///     }
/// }
/// // ~1% of transfers err.
/// assert!((50..200).contains(&errors));
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SmallRng,
    faults_injected: u64,
    bits_flipped: u64,
}

impl FaultInjector {
    /// Creates an injector with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            faults_injected: 0,
            bits_flipped: 0,
        }
    }

    /// Draws whether a transfer errs (probability `p_error`) and, if so,
    /// how many bits flip (per the model's flip-weight distribution).
    /// Returns 0 for a clean transfer.
    pub fn sample_flips(&mut self, model: &TimingErrorModel, p_error: f64) -> u8 {
        self.sample_flips_at(model, ErrorThreshold::from_probability(p_error))
    }

    /// Like [`sample_flips`](Self::sample_flips) but with the
    /// probability precompiled into an [`ErrorThreshold`] — the hot
    /// path when the caller caches thresholds per control epoch.
    ///
    /// RNG draw order is identical to `sample_flips`: a zero threshold
    /// consumes no draw (as `p == 0.0` did), any other threshold
    /// consumes exactly one `u64`, and the accept set per draw is
    /// bit-for-bit the same as `gen_bool`'s.
    pub fn sample_flips_at(&mut self, model: &TimingErrorModel, threshold: ErrorThreshold) -> u8 {
        if threshold.0 == 0 || (self.rng.next_u64() >> 11) >= threshold.0 {
            return 0;
        }
        let flips = model.flips_for_draw(self.rng.gen_range(0.0..1.0));
        self.faults_injected += 1;
        self.bits_flipped += u64::from(flips);
        flips
    }

    /// Batched per-lane error draws: lane `i` of `out` receives exactly
    /// `lanes[i].sample_flips_at(model, thresholds[i])`.
    ///
    /// The common all-clean case reduces to one threshold compare of
    /// each lane's RNG word with no cross-lane data dependencies, so
    /// the generator advances and integer compares of different lanes
    /// overlap instead of serializing behind each lane's accept branch;
    /// only accepted lanes take the second pass for their flip-weight
    /// draw. Per-lane draw order is identical to the scalar path (each
    /// lane owns its stream: a zero threshold consumes no word, an
    /// accepted Bernoulli word is followed immediately by that lane's
    /// weight draw), so replicate-lane reports are byte-unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `lanes`, `thresholds`, and `out` differ in length.
    pub fn sample_flips_batch(
        lanes: &mut [FaultInjector],
        model: &TimingErrorModel,
        thresholds: &[ErrorThreshold],
        out: &mut [u8],
    ) {
        assert_eq!(lanes.len(), thresholds.len(), "one threshold per lane");
        assert_eq!(lanes.len(), out.len(), "one outcome slot per lane");
        for ((lane, &threshold), o) in lanes.iter_mut().zip(thresholds).zip(out.iter_mut()) {
            *o = u8::from(threshold.0 != 0 && (lane.rng.next_u64() >> 11) < threshold.0);
        }
        for (lane, o) in lanes.iter_mut().zip(out.iter_mut()) {
            if *o != 0 {
                let flips = model.flips_for_draw(lane.rng.gen_range(0.0..1.0));
                lane.faults_injected += 1;
                lane.bits_flipped += u64::from(flips);
                *o = flips;
            }
        }
    }

    /// Chooses `count` *distinct* bit positions in `[0, width)`.
    ///
    /// # Panics
    ///
    /// Panics if `count as u32 > width`.
    pub fn pick_bits(&mut self, count: u8, width: u32) -> Vec<u32> {
        assert!(u32::from(count) <= width, "more flips than bits");
        let mut bits = Vec::with_capacity(count as usize);
        while bits.len() < count as usize {
            let bit = self.rng.gen_range(0..width);
            if !bits.contains(&bit) {
                bits.push(bit);
            }
        }
        bits
    }

    /// Allocation-free variant of [`pick_bits`](Self::pick_bits) for the
    /// per-flit fault path: returns the chosen positions in a fixed
    /// array plus the count. Uses the same rejection-sampling loop, so
    /// for a given RNG state it draws exactly the same values and
    /// produces the same positions as `pick_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `count > MAX_FLIPS` or `count as u32 > width`.
    pub fn pick_bits_fixed(&mut self, count: u8, width: u32) -> ([u32; MAX_FLIPS], usize) {
        assert!(usize::from(count) <= MAX_FLIPS, "more than MAX_FLIPS flips");
        assert!(u32::from(count) <= width, "more flips than bits");
        let mut bits = [0u32; MAX_FLIPS];
        let mut n = 0usize;
        while n < count as usize {
            let bit = self.rng.gen_range(0..width);
            if !bits[..n].contains(&bit) {
                bits[n] = bit;
                n += 1;
            }
        }
        (bits, n)
    }

    /// Total error events injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Total bits flipped so far.
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_errs() {
        let model = TimingErrorModel::default();
        let mut inj = FaultInjector::new(1);
        for _ in 0..1000 {
            assert_eq!(inj.sample_flips(&model, 0.0), 0);
        }
        assert_eq!(inj.faults_injected(), 0);
        assert_eq!(inj.bits_flipped(), 0);
    }

    #[test]
    fn unit_probability_always_errs() {
        let model = TimingErrorModel::default();
        let mut inj = FaultInjector::new(2);
        for _ in 0..100 {
            assert!(inj.sample_flips(&model, 1.0) >= 1);
        }
        assert_eq!(inj.faults_injected(), 100);
    }

    #[test]
    fn error_rate_statistics() {
        let model = TimingErrorModel::default();
        let mut inj = FaultInjector::new(3);
        let trials = 100_000;
        let mut errors = 0u64;
        for _ in 0..trials {
            if inj.sample_flips(&model, 0.05) > 0 {
                errors += 1;
            }
        }
        let rate = errors as f64 / trials as f64;
        assert!((0.045..0.055).contains(&rate), "rate {rate}");
    }

    #[test]
    fn single_flips_dominate() {
        let model = TimingErrorModel::default();
        let mut inj = FaultInjector::new(4);
        let mut counts = [0u64; 4];
        for _ in 0..10_000 {
            counts[inj.sample_flips(&model, 1.0) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
    }

    #[test]
    fn picked_bits_are_distinct_and_in_range() {
        let mut inj = FaultInjector::new(5);
        for _ in 0..100 {
            let bits = inj.pick_bits(3, 72);
            assert_eq!(bits.len(), 3);
            assert!(bits.iter().all(|&b| b < 72));
            let mut sorted = bits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let model = TimingErrorModel::default();
        let run = |seed| {
            let mut inj = FaultInjector::new(seed);
            (0..100)
                .map(|_| inj.sample_flips(&model, 0.3))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "more flips than bits")]
    fn too_many_flips_panics() {
        let mut inj = FaultInjector::new(0);
        let _ = inj.pick_bits(5, 4);
    }

    /// The integer-threshold fast path must replay `sample_flips`
    /// exactly: same accepts, same flip counts, same stream position.
    #[test]
    fn threshold_path_replays_float_path_exactly() {
        let model = TimingErrorModel::default();
        for p in [0.0, 1e-12, 1e-6, 1e-3, 0.04999, 0.3, 0.5, 0.999, 1.0] {
            let mut a = FaultInjector::new(77);
            let mut b = FaultInjector::new(77);
            let thr = ErrorThreshold::from_probability(p);
            assert_eq!(thr.is_zero(), p == 0.0);
            for i in 0..5_000 {
                assert_eq!(
                    a.sample_flips(&model, p),
                    b.sample_flips_at(&model, thr),
                    "p={p} draw {i} diverged"
                );
            }
            assert_eq!(a.faults_injected(), b.faults_injected());
            assert_eq!(a.bits_flipped(), b.bits_flipped());
            // Streams are still in lockstep after the sweep.
            assert_eq!(a.pick_bits(3, 128), b.pick_bits(3, 128));
        }
    }

    /// The allocation-free pick must draw the identical positions.
    #[test]
    fn pick_bits_fixed_matches_pick_bits() {
        for seed in 0..20u64 {
            let mut a = FaultInjector::new(seed);
            let mut b = FaultInjector::new(seed);
            for count in [1u8, 2, 3, 1, 3, 2] {
                let vec = a.pick_bits(count, 72);
                let (arr, n) = b.pick_bits_fixed(count, 72);
                assert_eq!(vec.as_slice(), &arr[..n]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "MAX_FLIPS")]
    fn pick_bits_fixed_caps_count() {
        let mut inj = FaultInjector::new(0);
        let _ = inj.pick_bits_fixed(4, 128);
    }

    /// The batched kernel must replay each lane's scalar stream draw
    /// for draw — accepts, flip counts, stats, and stream position —
    /// including lanes with zero thresholds interleaved among live ones.
    #[test]
    fn batch_draws_match_per_lane_scalar_draws_exactly() {
        let model = TimingErrorModel::default();
        let probabilities = [0.0, 1e-6, 0.05, 0.3, 0.0, 0.999, 0.5, 1.0];
        let thresholds: Vec<ErrorThreshold> = probabilities
            .iter()
            .map(|&p| ErrorThreshold::from_probability(p))
            .collect();
        let mut scalar: Vec<FaultInjector> = (0..8).map(|i| FaultInjector::new(100 + i)).collect();
        let mut batched = scalar.clone();
        let mut out = [0u8; 8];
        for round in 0..2_000 {
            FaultInjector::sample_flips_batch(&mut batched, &model, &thresholds, &mut out);
            for (i, (inj, &thr)) in scalar.iter_mut().zip(&thresholds).enumerate() {
                assert_eq!(
                    inj.sample_flips_at(&model, thr),
                    out[i],
                    "lane {i} round {round} diverged"
                );
            }
        }
        for (i, (a, b)) in scalar.iter_mut().zip(batched.iter_mut()).enumerate() {
            assert_eq!(a.faults_injected(), b.faults_injected(), "lane {i} stats");
            assert_eq!(a.bits_flipped(), b.bits_flipped(), "lane {i} stats");
            // Streams land on the same position.
            assert_eq!(a.pick_bits(3, 128), b.pick_bits(3, 128), "lane {i} stream");
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn flips_bounded(seed: u64, p in 0.0f64..1.0) {
            let model = TimingErrorModel::default();
            let mut inj = FaultInjector::new(seed);
            let f = inj.sample_flips(&model, p);
            prop_assert!(f <= 3);
        }

        #[test]
        fn bits_unique(seed: u64, count in 1u8..4, width in 4u32..128) {
            let mut inj = FaultInjector::new(seed);
            let bits = inj.pick_bits(count, width);
            let mut sorted = bits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), bits.len());
        }
    }
}
