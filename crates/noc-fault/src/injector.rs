//! Deterministic fault sampling and bit-flip injection.
//!
//! [`FaultInjector`] owns the random stream that converts per-flit error
//! probabilities (from [`TimingErrorModel`](crate::timing::TimingErrorModel))
//! into concrete flipped bit positions. Keeping the stream in one place
//! makes entire experiments reproducible from a single seed.

use crate::timing::TimingErrorModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples fault events and flips payload bits.
///
/// # Example
///
/// ```
/// use noc_fault::injector::FaultInjector;
/// use noc_fault::timing::TimingErrorModel;
///
/// let model = TimingErrorModel::default();
/// let mut injector = FaultInjector::new(7);
/// let mut errors = 0;
/// for _ in 0..10_000 {
///     if injector.sample_flips(&model, 0.01) > 0 {
///         errors += 1;
///     }
/// }
/// // ~1% of transfers err.
/// assert!((50..200).contains(&errors));
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SmallRng,
    faults_injected: u64,
    bits_flipped: u64,
}

impl FaultInjector {
    /// Creates an injector with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            faults_injected: 0,
            bits_flipped: 0,
        }
    }

    /// Draws whether a transfer errs (probability `p_error`) and, if so,
    /// how many bits flip (per the model's flip-weight distribution).
    /// Returns 0 for a clean transfer.
    pub fn sample_flips(&mut self, model: &TimingErrorModel, p_error: f64) -> u8 {
        let p = p_error.clamp(0.0, 1.0);
        if p == 0.0 || !self.rng.gen_bool(p) {
            return 0;
        }
        let flips = model.flips_for_draw(self.rng.gen_range(0.0..1.0));
        self.faults_injected += 1;
        self.bits_flipped += u64::from(flips);
        flips
    }

    /// Chooses `count` *distinct* bit positions in `[0, width)`.
    ///
    /// # Panics
    ///
    /// Panics if `count as u32 > width`.
    pub fn pick_bits(&mut self, count: u8, width: u32) -> Vec<u32> {
        assert!(u32::from(count) <= width, "more flips than bits");
        let mut bits = Vec::with_capacity(count as usize);
        while bits.len() < count as usize {
            let bit = self.rng.gen_range(0..width);
            if !bits.contains(&bit) {
                bits.push(bit);
            }
        }
        bits
    }

    /// Total error events injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Total bits flipped so far.
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_errs() {
        let model = TimingErrorModel::default();
        let mut inj = FaultInjector::new(1);
        for _ in 0..1000 {
            assert_eq!(inj.sample_flips(&model, 0.0), 0);
        }
        assert_eq!(inj.faults_injected(), 0);
        assert_eq!(inj.bits_flipped(), 0);
    }

    #[test]
    fn unit_probability_always_errs() {
        let model = TimingErrorModel::default();
        let mut inj = FaultInjector::new(2);
        for _ in 0..100 {
            assert!(inj.sample_flips(&model, 1.0) >= 1);
        }
        assert_eq!(inj.faults_injected(), 100);
    }

    #[test]
    fn error_rate_statistics() {
        let model = TimingErrorModel::default();
        let mut inj = FaultInjector::new(3);
        let trials = 100_000;
        let mut errors = 0u64;
        for _ in 0..trials {
            if inj.sample_flips(&model, 0.05) > 0 {
                errors += 1;
            }
        }
        let rate = errors as f64 / trials as f64;
        assert!((0.045..0.055).contains(&rate), "rate {rate}");
    }

    #[test]
    fn single_flips_dominate() {
        let model = TimingErrorModel::default();
        let mut inj = FaultInjector::new(4);
        let mut counts = [0u64; 4];
        for _ in 0..10_000 {
            counts[inj.sample_flips(&model, 1.0) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
    }

    #[test]
    fn picked_bits_are_distinct_and_in_range() {
        let mut inj = FaultInjector::new(5);
        for _ in 0..100 {
            let bits = inj.pick_bits(3, 72);
            assert_eq!(bits.len(), 3);
            assert!(bits.iter().all(|&b| b < 72));
            let mut sorted = bits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let model = TimingErrorModel::default();
        let run = |seed| {
            let mut inj = FaultInjector::new(seed);
            (0..100)
                .map(|_| inj.sample_flips(&model, 0.3))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "more flips than bits")]
    fn too_many_flips_panics() {
        let mut inj = FaultInjector::new(0);
        let _ = inj.pick_bits(5, 4);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn flips_bounded(seed: u64, p in 0.0f64..1.0) {
            let model = TimingErrorModel::default();
            let mut inj = FaultInjector::new(seed);
            let f = inj.sample_flips(&model, p);
            prop_assert!(f <= 3);
        }

        #[test]
        fn bits_unique(seed: u64, count in 1u8..4, width in 4u32..128) {
            let mut inj = FaultInjector::new(seed);
            let bits = inj.pick_bits(count, width);
            let mut sorted = bits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), bits.len());
        }
    }
}
