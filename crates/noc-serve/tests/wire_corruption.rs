//! Adversarial framing tests for `rlnoc-wire v1`, mirroring the
//! runner's checkpoint `corruption.rs`: truncation at every prefix
//! length and a bit flip at every byte offset of every frame type.
//! The decoder must never panic; a corrupted frame either fails to
//! decode or decodes to exactly the original (inert flips — e.g. the
//! case bit of a hex digit in the CRC field).

use rlnoc_serve::wire::{read_frame, Frame, FrameType, WireError};
use std::io::Cursor;

fn sample_frames() -> Vec<Frame> {
    FrameType::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let payload = format!("tenant=alice\ncampaign=c-00000000000000{i:02x}\nstate=queued\n");
            Frame::text(kind, &payload)
        })
        .chain([
            Frame::new(FrameType::Event, Vec::new()), // empty payload
            Frame::new(FrameType::Submit, vec![0u8; 255]), // binary payload
        ])
        .collect()
}

#[test]
fn every_truncation_of_every_frame_type_is_rejected() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for len in 0..bytes.len() {
            let result = read_frame(&mut Cursor::new(&bytes[..len]));
            match result {
                Err(WireError::Closed) => {
                    assert_eq!(len, 0, "Closed is only for EOF before any byte");
                }
                Err(_) => {}
                Ok(decoded) => panic!(
                    "truncation to {len}/{} bytes of a {} frame decoded as {:?}",
                    bytes.len(),
                    frame.kind.token(),
                    decoded.kind.token()
                ),
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected_or_inert() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[byte] ^= 1 << bit;
                // Never panics; Ok is allowed only when the flip did
                // not change the decoded meaning (e.g. hex case).
                if let Ok(decoded) = read_frame(&mut Cursor::new(&corrupted)) {
                    assert_eq!(
                        decoded,
                        frame,
                        "flip of bit {bit} in byte {byte} of a {} frame \
                         decoded as a *different* frame",
                        frame.kind.token()
                    );
                }
            }
        }
    }
}

#[test]
fn flipped_payload_bits_are_always_caught_by_the_crc() {
    // Stronger than the generic sweep: within the payload region
    // specifically, every flip must be *rejected* (not merely inert) —
    // CRC-32 detects all single-bit errors.
    for frame in sample_frames() {
        let bytes = frame.encode();
        if frame.payload.is_empty() {
            continue;
        }
        let payload_start = bytes.len() - frame.payload.len();
        for byte in payload_start..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    read_frame(&mut Cursor::new(&corrupted)).is_err(),
                    "payload flip (byte {byte}, bit {bit}) of a {} frame \
                     slipped past the CRC",
                    frame.kind.token()
                );
            }
        }
    }
}

#[test]
fn garbage_prefixes_never_panic_the_decoder() {
    // Deterministic pseudo-random garbage, including high-bit bytes,
    // NULs, and newline floods.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..64 {
        let mut garbage = Vec::with_capacity(96);
        for _ in 0..96 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            garbage.push((state >> 33) as u8);
        }
        let _ = read_frame(&mut Cursor::new(&garbage));
    }
    for flood in [&b"\n\n\n\n"[..], &b"rlnw1\n"[..], &b"rlnw1 submit\n"[..]] {
        assert!(read_frame(&mut Cursor::new(flood)).is_err());
    }
}

#[test]
fn corruption_in_one_frame_does_not_leak_into_the_next() {
    // Two frames back to back; corrupting the second must still let
    // the first decode cleanly from the stream head.
    let a = Frame::text(FrameType::Status, "tenant=alice\ncampaign=c-1\n");
    let b = Frame::text(FrameType::Cancel, "tenant=alice\ncampaign=c-2\n");
    let mut bytes = a.encode();
    let mut second = b.encode();
    let len = second.len();
    second[len - 1] ^= 0x01;
    bytes.extend_from_slice(&second);
    let mut cursor = Cursor::new(&bytes);
    assert_eq!(read_frame(&mut cursor).expect("first frame intact"), a);
    assert!(read_frame(&mut cursor).is_err(), "second frame is corrupt");
}
