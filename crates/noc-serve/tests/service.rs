//! End-to-end tests of the campaign service over real TCP
//! connections: submit/status/watch/result/cancel, deduplication,
//! fair-share scheduling, warm-restart recovery, and byte-identity of
//! served results against standalone `Campaign::run` output.
//!
//! Tests that depend on queue order start the server paused
//! (`ServerConfig::start_paused`) so the whole backlog is staged before
//! a single task runs — execution order is then exactly the DRR order
//! the scheduler unit tests pin down, with no submission race.

use rlnoc_core::experiment::ErrorControlScheme;
use rlnoc_core::spec::CampaignSpec;
use rlnoc_serve::{render_result_text, Client, Server, ServerConfig};
use rlnoc_telemetry::Telemetry;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rlnoc-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, jobs: usize, start_paused: bool) -> (Server, String, std::path::PathBuf) {
    let dir = temp_dir(tag);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        dir: dir.clone(),
        telemetry: Telemetry::enabled(),
        start_paused,
    })
    .expect("server starts");
    let addr = server.addr().to_string();
    (server, addr, dir)
}

/// A 2×2-mesh spec with `2 × replicates` tasks (CRC and ARQ+ECC), fast
/// enough to run many of in one test.
fn multi_task_spec(seed: u64, replicates: usize) -> CampaignSpec {
    let mut campaign = CampaignSpec::tiny(seed).to_campaign().expect("valid");
    campaign.schemes = vec![
        ErrorControlScheme::StaticCrc,
        ErrorControlScheme::StaticArqEcc,
    ];
    campaign.replicates = replicates;
    CampaignSpec::from_campaign(&campaign).expect("serializable")
}

fn wait_done(client: &mut Client, tenant: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.status(tenant, id).expect("status");
        if status.state == "done" {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} stuck in state {}",
            status.state
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn submit_status_result_round_trip_is_byte_identical_to_standalone() {
    let (server, addr, dir) = start("e2e", 2, false);
    let mut client = Client::connect(&addr).expect("connect");
    let spec = CampaignSpec::tiny(41);
    let id = spec.campaign_id().expect("id");

    let ack = client.submit("alice", 3, &spec.to_text()).expect("submit");
    assert_eq!(ack.campaign, id);
    assert_eq!(ack.tasks, 1);
    assert_eq!(ack.completed, 0);

    wait_done(&mut client, "alice", &id);
    let served = client.result("alice", &id).expect("result");
    let standalone = spec.to_campaign().expect("valid").run();
    assert_eq!(
        served,
        render_result_text(&standalone.reports),
        "served result must be byte-identical to a standalone run"
    );

    // Resubmission deduplicates onto the finished campaign.
    let again = client
        .submit("alice", 3, &spec.to_text())
        .expect("resubmit");
    assert_eq!(again.campaign, id);
    assert_eq!(again.completed, again.tasks);
    assert_eq!(again.state, "done");

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn unknown_campaigns_and_bad_submissions_answer_error_frames() {
    let (server, addr, dir) = start("errors", 1, false);
    let mut client = Client::connect(&addr).expect("connect");

    let err = client.status("alice", "c-0000000000000000").unwrap_err();
    assert!(err.to_string().contains("unknown campaign"), "{err}");

    // Path-escaping tenant names are rejected before touching disk.
    let err = client
        .submit("../escape", 1, &CampaignSpec::tiny(1).to_text())
        .unwrap_err();
    assert!(err.to_string().contains("invalid tenant"), "{err}");

    // A corrupted spec body (flipped digit breaks its CRC trailer).
    let mut text = CampaignSpec::tiny(1).to_text();
    let pos = text.find("seed=").expect("seed line") + 6;
    let original = text.as_bytes()[pos];
    let flipped = if original == b'0' { '1' } else { '0' };
    text.replace_range(pos..pos + 1, &flipped.to_string());
    let err = client.submit("alice", 1, &text).unwrap_err();
    assert!(err.to_string().contains("invalid submission"), "{err}");

    // The connection survives request-level errors.
    let ack = client
        .submit("alice", 1, &CampaignSpec::tiny(1).to_text())
        .expect("good submission still works");
    assert_eq!(ack.tasks, 1);

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn watch_streams_telemetry_and_ends_with_done() {
    // Staged paused: the watcher attaches before any task can run, so
    // it observes the whole campaign stream.
    let (server, addr, dir) = start("watch", 1, true);
    let mut submit_client = Client::connect(&addr).expect("connect");
    let spec = multi_task_spec(52, 2); // 4 tasks
    let id = spec.campaign_id().expect("id");
    submit_client
        .submit("alice", 1, &spec.to_text())
        .expect("submit");

    let watch_id = id.clone();
    let watch_addr = addr.clone();
    let watcher = std::thread::spawn(move || {
        let mut events = Vec::new();
        let mut client = Client::connect(&watch_addr).expect("connect");
        let state = client
            .watch("alice", &watch_id, &mut |line| {
                events.push(line.to_string())
            })
            .expect("watch");
        (state, events)
    });
    // Give the watcher time to register its subscription, then open
    // the gate.
    std::thread::sleep(Duration::from_millis(200));
    server.resume();
    let (state, events) = watcher.join().expect("watcher thread");
    assert_eq!(state, "done");

    let task_lines: Vec<&String> = events
        .iter()
        .filter(|l| l.starts_with("{\"type\":\"task\""))
        .collect();
    assert!(
        !task_lines.is_empty(),
        "watcher must see task progress lines (got {} events)",
        events.len()
    );
    assert!(
        task_lines
            .iter()
            .all(|l| l.contains(&format!("\"campaign\":\"{id}\""))),
        "progress lines carry the campaign id"
    );
    assert!(
        events
            .iter()
            .any(|l| l.starts_with("{\"type\":\"run\"") || l.starts_with("{\"type\":\"epoch\"")),
        "watcher must see exporter telemetry lines"
    );
    assert!(
        events.iter().all(|l| l.ends_with('}')),
        "events are single JSON objects"
    );

    // Watching a finished campaign returns immediately with no events.
    let mut late = Vec::new();
    let mut late_client = Client::connect(&addr).expect("connect");
    let state = late_client
        .watch("alice", &id, &mut |line| late.push(line.to_string()))
        .expect("late watch");
    assert_eq!((state.as_str(), late.len()), ("done", 0));

    // And the watcher must not have perturbed a single result byte.
    wait_done(&mut submit_client, "alice", &id);
    let served = submit_client.result("alice", &id).expect("result");
    let standalone = spec.to_campaign().expect("valid").run();
    assert_eq!(served, render_result_text(&standalone.reports));

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cancellation_drops_queued_tasks_and_blocks_result() {
    let (server, addr, dir) = start("cancel", 1, true);
    let mut client = Client::connect(&addr).expect("connect");
    let survivor = multi_task_spec(61, 1);
    let victim = multi_task_spec(62, 2);
    let survivor_id = survivor.campaign_id().expect("id");
    let victim_id = victim.campaign_id().expect("id");
    client
        .submit("alice", 1, &survivor.to_text())
        .expect("submit");
    client
        .submit("bravo", 1, &victim.to_text())
        .expect("submit");

    // Cancel while everything is still staged: deterministic zero
    // progress for the victim.
    assert_eq!(
        client.cancel("bravo", &victim_id).expect("cancel"),
        "cancelled"
    );
    let status = client.status("bravo", &victim_id).expect("status");
    assert_eq!((status.state.as_str(), status.completed), ("cancelled", 0));
    let err = client.result("bravo", &victim_id).unwrap_err();
    assert!(err.to_string().contains("cancelled"), "{err}");
    // Cancelling twice is a no-op, and never resurrects tasks.
    assert_eq!(
        client.cancel("bravo", &victim_id).expect("cancel"),
        "cancelled"
    );

    server.resume();
    // The other tenant's campaign is unaffected — and still exact.
    wait_done(&mut client, "alice", &survivor_id);
    let served = client.result("alice", &survivor_id).expect("result");
    let standalone = survivor.to_campaign().expect("valid").run();
    assert_eq!(served, render_result_text(&standalone.reports));
    let victim_status = client.status("bravo", &victim_id).expect("status");
    assert_eq!(
        victim_status.completed, 0,
        "cancelled campaign must never have executed"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fair_share_follows_exact_drr_order_under_contention() {
    let (server, addr, dir) = start("fair", 1, true);
    let mut client = Client::connect(&addr).expect("connect");
    let per_tenant = 12u64;
    let mut ids = Vec::new();
    for (tenant, priority) in [("low", 1u32), ("mid", 2), ("high", 4)] {
        for n in 0..per_tenant {
            let spec = CampaignSpec::tiny(9_000 + u64::from(priority) * 100 + n);
            let id = spec.campaign_id().expect("id");
            client
                .submit(tenant, priority, &spec.to_text())
                .expect("submit");
            ids.push((tenant, id));
        }
    }
    server.resume();
    for (tenant, id) in &ids {
        wait_done(&mut client, tenant, id);
    }

    // The whole backlog was staged before the single worker started,
    // so completions are exactly the DRR pop order: each cycle is
    // 1×low, 2×mid, 4×high until `high` runs dry after three cycles.
    let log = server.completion_log();
    assert_eq!(log.len(), ids.len());
    let count = |t: &str, window: usize| {
        log.iter()
            .take(window)
            .filter(|(tenant, _)| tenant == t)
            .count()
    };
    assert_eq!(
        (count("low", 21), count("mid", 21), count("high", 21)),
        (3, 6, 12),
        "first three DRR cycles must split 1:2:4 (log: {log:?})"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn warm_restart_reserves_done_campaigns_from_disk() {
    let (server, addr, dir) = start("restart", 2, false);
    let mut client = Client::connect(&addr).expect("connect");
    let spec = multi_task_spec(71, 2);
    let id = spec.campaign_id().expect("id");
    client.submit("alice", 2, &spec.to_text()).expect("submit");
    wait_done(&mut client, "alice", &id);
    let first = client.result("alice", &id).expect("result");
    server.stop();

    // A new server over the same directory recovers the campaign as
    // done — without re-running anything — and serves the same bytes.
    let telemetry = Telemetry::enabled();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        dir: dir.clone(),
        telemetry: telemetry.clone(),
        start_paused: false,
    })
    .expect("restart");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let status = client.status("alice", &id).expect("status");
    assert_eq!(
        (status.state.as_str(), status.completed),
        ("done", status.total)
    );
    let second = client.result("alice", &id).expect("result");
    assert_eq!(first, second, "recovered result must be byte-identical");
    assert_eq!(
        telemetry.counter("runner.tasks_completed").get(),
        0,
        "recovery must not re-execute completed tasks"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn same_spec_under_different_tenants_runs_independently() {
    let (server, addr, dir) = start("tenants", 2, false);
    let mut client = Client::connect(&addr).expect("connect");
    let spec = CampaignSpec::tiny(81);
    let id = spec.campaign_id().expect("id");
    client.submit("alice", 1, &spec.to_text()).expect("submit");
    client.submit("bravo", 1, &spec.to_text()).expect("submit");
    wait_done(&mut client, "alice", &id);
    wait_done(&mut client, "bravo", &id);
    let a = client.result("alice", &id).expect("result");
    let b = client.result("bravo", &id).expect("result");
    assert_eq!(a, b, "same campaign, same bytes, per-tenant storage");
    assert!(dir
        .join("alice")
        .join(&id)
        .join("campaign.manifest")
        .exists());
    assert!(dir
        .join("bravo")
        .join(&id)
        .join("campaign.manifest")
        .exists());

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}
