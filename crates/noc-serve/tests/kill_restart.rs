//! Crash-safety acceptance: a real `rlnoc-serve` process is SIGKILLed
//! mid-campaign and restarted over the same data directory. Every
//! campaign must finish, completed work must be restored from disk
//! (not re-run), and every final result must be byte-identical to a
//! standalone `Campaign::run`.

use rlnoc_core::experiment::ErrorControlScheme;
use rlnoc_core::spec::CampaignSpec;
use rlnoc_serve::{render_result_text, wait_for_addr, Client};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on drop so failed assertions never leak processes.
struct ServerProc(Child);

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlnoc-kill-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// ~8 tasks of a few tens of milliseconds each: slow enough that a
/// burst of campaigns is reliably still in flight when the kill lands.
fn slow_spec(seed: u64) -> CampaignSpec {
    let mut campaign = CampaignSpec::tiny(seed).to_campaign().expect("valid");
    campaign.schemes = vec![
        ErrorControlScheme::StaticCrc,
        ErrorControlScheme::StaticArqEcc,
    ];
    campaign.replicates = 4;
    campaign.measure_cycles = Some(20_000);
    campaign.drain_limit = 200_000;
    CampaignSpec::from_campaign(&campaign).expect("serializable")
}

fn spawn_server(dir: &Path) -> ServerProc {
    // Remove any stale address file so `wait_for_addr` can only see
    // the new process's binding.
    let _ = std::fs::remove_file(dir.join(rlnoc_serve::ADDR_FILE));
    let child = Command::new(env!("CARGO_BIN_EXE_rlnoc-serve"))
        .args(["--addr", "127.0.0.1:0", "--jobs", "2"])
        .arg("--dir")
        .arg(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rlnoc-serve");
    ServerProc(child)
}

#[test]
fn sigkill_mid_flight_then_restart_yields_byte_identical_results() {
    let dir = temp_dir("midflight");
    let mut server = spawn_server(&dir);
    let addr = wait_for_addr(&dir, Duration::from_secs(20)).expect("server address");
    let mut client = Client::connect(&addr).expect("connect");

    let specs: Vec<CampaignSpec> = (0..5).map(|n| slow_spec(400 + n)).collect();
    let tenant_of = |n: usize| if n % 2 == 0 { "alice" } else { "bravo" };
    let mut ids = Vec::new();
    let mut total_tasks = 0usize;
    for (n, spec) in specs.iter().enumerate() {
        let ack = client
            .submit(tenant_of(n), 1 + (n as u32 % 3), &spec.to_text())
            .expect("submit");
        total_tasks += ack.tasks;
        ids.push(ack.campaign);
    }

    // Let the service make some — but not all — progress, then murder
    // it without ceremony.
    let progress = |client: &mut Client| -> usize {
        ids.iter()
            .enumerate()
            .map(|(n, id)| client.status(tenant_of(n), id).expect("status").completed)
            .sum()
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    let killed_at = loop {
        let done = progress(&mut client);
        if done >= 2 {
            break done;
        }
        assert!(Instant::now() < deadline, "service made no progress");
        std::thread::sleep(Duration::from_millis(5));
    };
    server.0.kill().expect("SIGKILL");
    let _ = server.0.wait();
    drop(server);
    assert!(
        killed_at < total_tasks,
        "kill landed after completion; make slow_spec slower"
    );

    // Restart over the same directory: recovery must restore at least
    // the progress we observed (checkpoints persist before the
    // completion counter advances), then finish everything.
    let server = spawn_server(&dir);
    let addr = wait_for_addr(&dir, Duration::from_secs(20)).expect("restarted address");
    let mut client = Client::connect(&addr).expect("reconnect");
    assert!(
        progress(&mut client) >= killed_at,
        "restart lost checkpointed work"
    );

    let deadline = Instant::now() + Duration::from_secs(120);
    for (n, id) in ids.iter().enumerate() {
        loop {
            let status = client.status(tenant_of(n), id).expect("status");
            if status.state == "done" {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "campaign {id} stuck at {}/{} after restart",
                status.completed,
                status.total
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // The acceptance bar: byte-identical to standalone runs despite
    // the kill, the restart, and two different worker interleavings.
    for (n, (spec, id)) in specs.iter().zip(&ids).enumerate() {
        let served = client.result(tenant_of(n), id).expect("result");
        let standalone = spec.to_campaign().expect("valid").run();
        assert_eq!(
            served,
            render_result_text(&standalone.reports),
            "campaign {id} deviates after kill/restart"
        );
    }

    drop(server);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn restart_with_no_prior_state_is_a_clean_boot() {
    // Recovery over an empty/missing directory must not invent state.
    let dir = temp_dir("clean");
    let server = spawn_server(&dir);
    let addr = wait_for_addr(&dir, Duration::from_secs(20)).expect("server address");
    let mut client = Client::connect(&addr).expect("connect");
    let err = client.status("alice", "c-0000000000000000").unwrap_err();
    assert!(err.to_string().contains("unknown campaign"), "{err}");
    drop(server);
    let _ = std::fs::remove_dir_all(dir);
}
