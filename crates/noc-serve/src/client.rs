//! Blocking client for the `rlnoc-wire v1` campaign service.
//!
//! One [`Client`] owns one TCP connection; requests are strictly
//! sequential (write a frame, read the reply), which matches the
//! server's per-connection request loop. `watch` is the only
//! multi-frame exchange: it streams `event` frames into a callback
//! until the terminal `watch-done`.

use crate::wire::{payload_field, read_frame, write_frame, Frame, FrameType, WireError};
use std::fmt;
use std::io;
use std::net::TcpStream;

/// Errors a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The byte stream violated `rlnoc-wire v1` framing.
    Wire(String),
    /// The server answered with an `error` frame.
    Server(String),
    /// The server answered with an unexpected frame type or payload.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Wire(m) => write!(f, "wire protocol error: {m}"),
            Self::Server(m) => write!(f, "server error: {m}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Closed => Self::Wire("connection closed mid-exchange".to_string()),
            WireError::Io(io) => Self::Io(io),
            WireError::Malformed(m) => Self::Wire(m),
        }
    }
}

/// Acknowledgement of a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitAck {
    /// Assigned campaign id (`c-<fingerprint:016x>`).
    pub campaign: String,
    /// Total tasks in the campaign grid.
    pub tasks: usize,
    /// Tasks already completed (from checkpoint restore / dedup).
    pub completed: usize,
    /// State right after registration.
    pub state: String,
}

/// Reply to a status query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusReply {
    /// Lifecycle state token (`queued`/`running`/`done`/`cancelled`).
    pub state: String,
    /// Tasks with checkpointed reports.
    pub completed: usize,
    /// Total tasks.
    pub total: usize,
}

/// A connected service client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

fn need<'a>(text: &'a str, key: &str) -> Result<&'a str, ClientError> {
    payload_field(text, key)
        .ok_or_else(|| ClientError::Protocol(format!("reply is missing `{key}`")))
}

fn need_usize(text: &str, key: &str) -> Result<usize, ClientError> {
    need(text, key)?
        .parse()
        .map_err(|_| ClientError::Protocol(format!("`{key}` is not a number")))
}

impl Client {
    /// Connects to a server address (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// One request/reply exchange, mapping `error` frames to
    /// [`ClientError::Server`].
    fn request(&mut self, frame: &Frame, expect: FrameType) -> Result<String, ClientError> {
        write_frame(&mut self.stream, frame)?;
        self.read_reply(expect)
    }

    fn read_reply(&mut self, expect: FrameType) -> Result<String, ClientError> {
        let reply = read_frame(&mut self.stream)?;
        let text = reply
            .payload_text()
            .map_err(|_| ClientError::Protocol("reply payload is not UTF-8".to_string()))?
            .to_string();
        if reply.kind == FrameType::Error {
            return Err(ClientError::Server(
                payload_field(&text, "message")
                    .unwrap_or("unspecified server error")
                    .to_string(),
            ));
        }
        if reply.kind != expect {
            return Err(ClientError::Protocol(format!(
                "expected {} reply, got {}",
                expect.token(),
                reply.kind.token()
            )));
        }
        Ok(text)
    }

    /// Submits an `rlnoc-spec v1` document for `tenant` at `priority`.
    ///
    /// # Errors
    ///
    /// Fails if the spec is rejected or the exchange breaks.
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: u32,
        spec_text: &str,
    ) -> Result<SubmitAck, ClientError> {
        let body = format!("tenant={tenant}\npriority={priority}\nspec\n{spec_text}");
        let text = self.request(&Frame::text(FrameType::Submit, &body), FrameType::SubmitOk)?;
        Ok(SubmitAck {
            campaign: need(&text, "campaign")?.to_string(),
            tasks: need_usize(&text, "tasks")?,
            completed: need_usize(&text, "completed")?,
            state: need(&text, "state")?.to_string(),
        })
    }

    /// Queries one campaign's progress.
    ///
    /// # Errors
    ///
    /// Fails for unknown campaigns or broken exchanges.
    pub fn status(&mut self, tenant: &str, campaign: &str) -> Result<StatusReply, ClientError> {
        let body = format!("tenant={tenant}\ncampaign={campaign}\n");
        let text = self.request(&Frame::text(FrameType::Status, &body), FrameType::StatusOk)?;
        Ok(StatusReply {
            state: need(&text, "state")?.to_string(),
            completed: need_usize(&text, "completed")?,
            total: need_usize(&text, "total")?,
        })
    }

    /// Subscribes to a campaign's telemetry stream. `on_event` receives
    /// each JSONL line; the call returns the campaign's final state
    /// token once the server sends `watch-done` (immediately, for a
    /// campaign that is already final).
    ///
    /// # Errors
    ///
    /// Fails for unknown campaigns or broken exchanges.
    pub fn watch(
        &mut self,
        tenant: &str,
        campaign: &str,
        on_event: &mut dyn FnMut(&str),
    ) -> Result<String, ClientError> {
        let body = format!("tenant={tenant}\ncampaign={campaign}\n");
        write_frame(&mut self.stream, &Frame::text(FrameType::Watch, &body))?;
        loop {
            let reply = read_frame(&mut self.stream)?;
            let text = reply
                .payload_text()
                .map_err(|_| ClientError::Protocol("event payload is not UTF-8".to_string()))?
                .to_string();
            match reply.kind {
                FrameType::Event => on_event(&text),
                FrameType::WatchDone => return Ok(need(&text, "state")?.to_string()),
                FrameType::Error => {
                    return Err(ClientError::Server(
                        payload_field(&text, "message")
                            .unwrap_or("unspecified server error")
                            .to_string(),
                    ))
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected {} frame in watch stream",
                        other.token()
                    )))
                }
            }
        }
    }

    /// Fetches the canonical result text of a `done` campaign
    /// (see [`crate::server::render_result_text`] for the format).
    ///
    /// # Errors
    ///
    /// Fails when the campaign is not done or the exchange breaks.
    pub fn result(&mut self, tenant: &str, campaign: &str) -> Result<String, ClientError> {
        let body = format!("tenant={tenant}\ncampaign={campaign}\n");
        self.request(&Frame::text(FrameType::Result, &body), FrameType::ResultOk)
    }

    /// Cancels a campaign; returns its resulting state token (`done`
    /// and `cancelled` campaigns are left as-is).
    ///
    /// # Errors
    ///
    /// Fails for unknown campaigns or broken exchanges.
    pub fn cancel(&mut self, tenant: &str, campaign: &str) -> Result<String, ClientError> {
        let body = format!("tenant={tenant}\ncampaign={campaign}\n");
        let text = self.request(&Frame::text(FrameType::Cancel, &body), FrameType::CancelOk)?;
        Ok(need(&text, "state")?.to_string())
    }
}
