//! Service load test: floods an in-process server with thousands of
//! tiny queued campaigns across prioritised tenants, waits for the
//! backlog to drain, and reports submit-to-complete latency
//! percentiles plus per-task wall cost into a `bench_gate`-compatible
//! flat JSON file.
//!
//! ```text
//! loadtest [--campaigns N] [--jobs N] [--verify N] [--out PATH] [--dir PATH]
//! ```
//!
//! Defaults: 1000 campaigns over three tenants (`alpha` priority 1,
//! `bravo` priority 2, `charlie` priority 4), worker count from
//! available parallelism, 12 campaigns spot-checked byte-for-byte
//! against standalone [`Campaign::run`] results, output
//! `BENCH_serve.json`. Submissions go through real TCP connections —
//! the wire path is part of what is measured.
//!
//! The tool exits non-zero if any campaign fails to finish, any
//! sampled result deviates by a byte, or fair-share scheduling is
//! violated (a backlogged high-priority tenant finishing *less* work
//! than a lower-priority one over the contended window).

use rlnoc_core::spec::CampaignSpec;
use rlnoc_serve::{render_result_text, Client, Server, ServerConfig};
use rlnoc_telemetry::Telemetry;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const TENANTS: [(&str, u32); 3] = [("alpha", 1), ("bravo", 2), ("charlie", 4)];

struct Options {
    campaigns: usize,
    jobs: usize,
    verify: usize,
    out: PathBuf,
    dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!("usage: loadtest [--campaigns N] [--jobs N] [--verify N] [--out PATH] [--dir PATH]");
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options {
        campaigns: 1000,
        jobs: std::thread::available_parallelism().map_or(4, |n| n.get()),
        verify: 12,
        out: PathBuf::from("BENCH_serve.json"),
        dir: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--campaigns" => opts.campaigns = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--jobs" => opts.jobs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--verify" => opts.verify = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => opts.out = PathBuf::from(value(&mut i)),
            "--dir" => opts.dir = Some(PathBuf::from(value(&mut i))),
            _ => usage(),
        }
        i += 1;
    }
    if opts.campaigns == 0 || opts.jobs == 0 {
        usage();
    }
    opts
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn main() -> ExitCode {
    let opts = parse_options();
    let dir = opts.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("rlnoc-loadtest-{}", std::process::id()))
    });

    println!(
        "loadtest: {} campaigns, {} workers, data dir {}",
        opts.campaigns,
        opts.jobs,
        dir.display()
    );
    let server = match Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: opts.jobs,
        dir: dir.clone(),
        telemetry: Telemetry::enabled(),
        // Stage the whole flood before running a single task: the
        // point of the exercise is a deep multi-tenant queue draining
        // under fair-share scheduling, not a server that keeps pace
        // with a slow submitter.
        start_paused: true,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadtest: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr().to_string();

    // Submit every campaign up front so the queue is deep and all three
    // tenants stay backlogged through the contended window. One
    // connection per tenant, pipmode: strict request/reply.
    let submit_start = Instant::now();
    let mut specs: Vec<(usize, &str, CampaignSpec)> = Vec::with_capacity(opts.campaigns);
    for n in 0..opts.campaigns {
        let (tenant, _) = TENANTS[n % TENANTS.len()];
        // Distinct seeds give distinct fingerprints, so every
        // submission is a distinct campaign (no dedup).
        specs.push((n, tenant, CampaignSpec::tiny(1_000 + n as u64)));
    }
    // Round-robin the submissions across one persistent connection per
    // tenant so every tenant's backlog grows together and the DRR
    // contention window is meaningful from the start.
    let mut total_tasks = 0usize;
    let mut clients: Vec<(&str, u32, Client)> = Vec::new();
    for (tenant, priority) in TENANTS {
        match Client::connect(&addr) {
            Ok(c) => clients.push((tenant, priority, c)),
            Err(e) => {
                eprintln!("loadtest: connect failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for (n, tenant, spec) in &specs {
        let (t, priority, client) = &mut clients[n % TENANTS.len()];
        debug_assert_eq!(t, tenant);
        match client.submit(tenant, *priority, &spec.to_text()) {
            Ok(ack) => total_tasks += ack.tasks,
            Err(e) => {
                eprintln!("loadtest: submit failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "loadtest: staged {} campaigns ({} tasks) in {:.2}s",
        opts.campaigns,
        total_tasks,
        submit_start.elapsed().as_secs_f64()
    );

    // Open the gate and drain the backlog.
    server.resume();
    let drain_start = Instant::now();
    while !server.all_final() {
        std::thread::sleep(Duration::from_millis(25));
    }
    let wall = drain_start.elapsed();

    // Latency percentiles from the server's own submit→finish clocks.
    let statuses = server.statuses();
    let mut latencies_ms: Vec<f64> = statuses
        .iter()
        .filter_map(|s| s.latency)
        .map(|d| d.as_secs_f64() * 1e3)
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if latencies_ms.len() != opts.campaigns {
        eprintln!(
            "loadtest: {} campaigns registered, expected {}",
            latencies_ms.len(),
            opts.campaigns
        );
        return ExitCode::FAILURE;
    }
    let p50 = percentile(&latencies_ms, 50.0);
    let p95 = percentile(&latencies_ms, 95.0);
    let p99 = percentile(&latencies_ms, 99.0);
    let tasks_per_sec = total_tasks as f64 / wall.as_secs_f64();
    let task_ms = wall.as_secs_f64() * 1e3 / total_tasks as f64;
    println!(
        "loadtest: drained in {:.2}s — {:.1} tasks/s, submit-to-complete p50 {:.1} ms, \
         p95 {:.1} ms, p99 {:.1} ms",
        wall.as_secs_f64(),
        tasks_per_sec,
        p50,
        p95,
        p99
    );

    // Fair share: over a window where every tenant still has queued
    // campaigns (skip the submission ramp, stop at half the total so
    // nobody has run dry), completions must not invert priority order.
    let log = server.completion_log();
    let ramp = opts.campaigns / 10;
    let contended = opts.campaigns / 2;
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for (tenant, _) in log.iter().skip(ramp).take(contended.saturating_sub(ramp)) {
        let slot = match tenant.as_str() {
            "alpha" => "alpha",
            "bravo" => "bravo",
            _ => "charlie",
        };
        *counts.entry(slot).or_insert(0) += 1;
    }
    let share = |t: &str| counts.get(t).copied().unwrap_or(0);
    println!(
        "loadtest: contended-window completions alpha(p1)={} bravo(p2)={} charlie(p4)={}",
        share("alpha"),
        share("bravo"),
        share("charlie")
    );
    if contended > 4 && !(share("alpha") <= share("bravo") && share("bravo") <= share("charlie")) {
        eprintln!("loadtest: fair-share violation: completions invert priority order");
        return ExitCode::FAILURE;
    }

    // Byte-identity spot check against standalone runs.
    let step = (opts.campaigns / opts.verify.max(1)).max(1);
    let mut verified = 0usize;
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadtest: connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (_, tenant, spec) in specs.iter().step_by(step).take(opts.verify) {
        let id = spec.campaign_id().expect("valid spec");
        let served = match client.result(tenant, &id) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("loadtest: result {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let standalone = spec.to_campaign().expect("valid spec").run();
        if served != render_result_text(&standalone.reports) {
            eprintln!("loadtest: result {id} deviates from standalone run");
            return ExitCode::FAILURE;
        }
        verified += 1;
    }
    println!("loadtest: {verified} campaign results byte-identical to standalone runs");

    // bench_gate-compatible flat JSON (lower is better for every metric).
    let mut json = String::from("{\n");
    let mut entries: Vec<(String, f64)> = vec![
        ("serve_submit_to_complete_p50_ms".into(), p50),
        ("serve_submit_to_complete_p95_ms".into(), p95),
        ("serve_submit_to_complete_p99_ms".into(), p99),
        ("serve_task_wall_ms".into(), task_ms),
    ];
    let last = entries.len() - 1;
    for (i, (name, value)) in entries.drain(..).enumerate() {
        let comma = if i == last { "" } else { "," };
        writeln!(json, "  \"{name}\": {value:.3}{comma}").expect("write to string");
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("loadtest: cannot write {}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    println!("loadtest: wrote {}", opts.out.display());

    server.stop();
    if opts.dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    ExitCode::SUCCESS
}
