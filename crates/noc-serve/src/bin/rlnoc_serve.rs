//! The campaign service daemon.
//!
//! ```text
//! rlnoc-serve [--addr HOST:PORT] [--jobs N] [--dir PATH]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:0` (OS-assigned port, written to
//! `<dir>/serve.addr`), `--jobs <available_parallelism>`, `--dir`
//! from `$RLNOC_SERVE_DIR` or `./rlnoc-serve-data`. On startup the
//! server recovers every persisted campaign under the directory and
//! resumes their unfinished tasks before accepting new submissions.

use rlnoc_serve::{Server, ServerConfig};
use rlnoc_telemetry::Telemetry;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: rlnoc-serve [--addr HOST:PORT] [--jobs N] [--dir PATH]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut jobs = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut dir = std::env::var("RLNOC_SERVE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("rlnoc-serve-data"));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => addr = value(&mut i),
            "--jobs" => {
                jobs = value(&mut i).parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            "--dir" => dir = PathBuf::from(value(&mut i)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let server = match Server::start(ServerConfig {
        addr,
        jobs,
        dir: dir.clone(),
        telemetry: Telemetry::enabled(),
        start_paused: false,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rlnoc-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "rlnoc-serve listening on {} (data: {})",
        server.addr(),
        dir.display()
    );
    println!(
        "address file: {}",
        dir.join(rlnoc_serve::ADDR_FILE).display()
    );

    // Serve until killed. Recovery on the next start picks up whatever
    // this process was doing — that is the crash-safety contract.
    loop {
        std::thread::park();
    }
}
