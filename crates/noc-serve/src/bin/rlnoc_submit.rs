//! Client CLI for the campaign service.
//!
//! ```text
//! rlnoc-submit submit --addr A --tenant T [--priority P] (--spec FILE | --tiny SEED | --quick SEED)
//! rlnoc-submit status --addr A --tenant T --campaign ID
//! rlnoc-submit watch  --addr A --tenant T --campaign ID
//! rlnoc-submit result --addr A --tenant T --campaign ID
//! rlnoc-submit cancel --addr A --tenant T --campaign ID
//! ```
//!
//! `--addr` may name either `host:port` or a server data directory
//! (the address is then read from its `serve.addr` file). `watch`
//! prints one JSONL event per line until the campaign finishes.

use rlnoc_core::spec::CampaignSpec;
use rlnoc_serve::{wait_for_addr, Client};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: rlnoc-submit <submit|status|watch|result|cancel> --addr HOST:PORT|DIR \
         --tenant T [--campaign ID] [--priority P] [--spec FILE | --tiny SEED | --quick SEED]"
    );
    std::process::exit(2);
}

struct Options {
    addr: String,
    tenant: String,
    campaign: String,
    priority: u32,
    spec_text: Option<String>,
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        addr: String::new(),
        tenant: String::new(),
        campaign: String::new(),
        priority: 1,
        spec_text: None,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(&mut i),
            "--tenant" => opts.tenant = value(&mut i),
            "--campaign" => opts.campaign = value(&mut i),
            "--priority" => opts.priority = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--spec" => {
                let path = value(&mut i);
                match std::fs::read_to_string(&path) {
                    Ok(text) => opts.spec_text = Some(text),
                    Err(e) => {
                        eprintln!("rlnoc-submit: cannot read {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--tiny" => {
                let seed = value(&mut i).parse().unwrap_or_else(|_| usage());
                opts.spec_text = Some(CampaignSpec::tiny(seed).to_text());
            }
            "--quick" => {
                let seed = value(&mut i).parse().unwrap_or_else(|_| usage());
                opts.spec_text = Some(CampaignSpec::quick(seed).to_text());
            }
            _ => usage(),
        }
        i += 1;
    }
    if opts.addr.is_empty() || opts.tenant.is_empty() {
        usage();
    }
    // Accept a server data directory in place of an address.
    if Path::new(&opts.addr).is_dir() {
        match wait_for_addr(Path::new(&opts.addr), Duration::from_secs(5)) {
            Some(addr) => opts.addr = addr,
            None => {
                eprintln!("rlnoc-submit: no serve.addr under {}", opts.addr);
                std::process::exit(1);
            }
        }
    }
    opts
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage()
    };
    let opts = parse_options(&args[1..]);
    let mut client = match Client::connect(&opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rlnoc-submit: cannot connect to {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };

    let outcome = match command.as_str() {
        "submit" => {
            let Some(spec_text) = opts.spec_text.as_deref() else {
                usage()
            };
            client
                .submit(&opts.tenant, opts.priority, spec_text)
                .map(|ack| {
                    println!(
                        "campaign={} tasks={} completed={} state={}",
                        ack.campaign, ack.tasks, ack.completed, ack.state
                    );
                })
        }
        "status" => client
            .status(&opts.tenant, &require_campaign(&opts))
            .map(|s| {
                println!(
                    "state={} completed={} total={}",
                    s.state, s.completed, s.total
                );
            }),
        "watch" => client
            .watch(&opts.tenant, &require_campaign(&opts), &mut |line| {
                println!("{line}");
            })
            .map(|state| println!("state={state}")),
        "result" => client
            .result(&opts.tenant, &require_campaign(&opts))
            .map(|text| print!("{text}")),
        "cancel" => client
            .cancel(&opts.tenant, &require_campaign(&opts))
            .map(|state| println!("state={state}")),
        _ => usage(),
    };

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rlnoc-submit: {e}");
            ExitCode::FAILURE
        }
    }
}

fn require_campaign(opts: &Options) -> String {
    if opts.campaign.is_empty() {
        usage();
    }
    opts.campaign.clone()
}
