//! Deficit-round-robin fair scheduling over tenants.
//!
//! Each tenant owns a FIFO of queued items and a priority in
//! [`MIN_PRIORITY`]..=[`MAX_PRIORITY`]. Workers pull one item at a
//! time; the scheduler visits tenants round-robin and lets the tenant
//! at the head of the rotation dequeue up to `priority` items (every
//! item costs one unit — campaign tasks are deliberately uniform)
//! before rotating to the back. Over any window in which all tenants
//! stay backlogged, tenant throughputs therefore converge to the ratio
//! of their priorities — classic deficit round robin with unit quanta.
//!
//! Fairness lives entirely in *pull order*. Task results are pure
//! functions of the task, so no scheduling decision can perturb
//! campaign reports — the property the service's byte-identity tests
//! pin down.
//!
//! The structure is a mutex + condvar around `BTreeMap<tenant, queue>`
//! plus an explicit rotation list, in the same spirit as the runner
//! pool's mutex-guarded injector: items are whole simulation tasks, so
//! lock traffic is negligible and determinism is easy to audit.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Lowest (and default) tenant priority.
pub const MIN_PRIORITY: u32 = 1;

/// Highest tenant priority.
pub const MAX_PRIORITY: u32 = 10;

/// Clamps a requested priority into the supported band.
pub fn clamp_priority(p: u32) -> u32 {
    p.clamp(MIN_PRIORITY, MAX_PRIORITY)
}

#[derive(Debug)]
struct TenantQueue<T> {
    priority: u32,
    /// Remaining items the tenant may dequeue in its current turn.
    deficit: u32,
    items: VecDeque<T>,
}

#[derive(Debug)]
struct Inner<T> {
    tenants: BTreeMap<String, TenantQueue<T>>,
    /// Tenants with queued work, in rotation order.
    rotation: VecDeque<String>,
    stopped: bool,
    /// While `true`, pops block (or return `None` for `try_pop`) even
    /// with items queued — drain control for tests and maintenance.
    paused: bool,
}

/// A blocking, submission-reentrant deficit-round-robin queue.
#[derive(Debug)]
pub struct FairScheduler<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

impl<T> Default for FairScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FairScheduler<T> {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                tenants: BTreeMap::new(),
                rotation: VecDeque::new(),
                stopped: false,
                paused: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `items` for `tenant` at `priority` (clamped). The
    /// priority of a tenant with work already queued is updated for
    /// its next turn.
    pub fn enqueue(&self, tenant: &str, priority: u32, items: impl IntoIterator<Item = T>) {
        let mut inner = self.inner.lock().expect("scheduler lock");
        let queue = inner
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantQueue {
                priority: MIN_PRIORITY,
                deficit: 0,
                items: VecDeque::new(),
            });
        queue.priority = clamp_priority(priority);
        let was_empty = queue.items.is_empty();
        let mut added = 0usize;
        for item in items {
            queue.items.push_back(item);
            added += 1;
        }
        if added == 0 {
            return;
        }
        if was_empty {
            inner.rotation.push_back(tenant.to_string());
        }
        if added == 1 {
            self.available.notify_one();
        } else {
            self.available.notify_all();
        }
    }

    /// Blocks until an item is available and dequeues it under DRR
    /// order, returning `(tenant, item)`. Returns `None` once
    /// [`stop`](Self::stop) has been called (immediately — queued items
    /// are abandoned, which is what service shutdown wants).
    pub fn pop(&self) -> Option<(String, T)> {
        let mut inner = self.inner.lock().expect("scheduler lock");
        loop {
            if inner.stopped {
                return None;
            }
            if !inner.paused {
                if let Some(out) = Self::pop_locked(&mut inner) {
                    return Some(out);
                }
            }
            inner = self.available.wait(inner).expect("scheduler wait");
        }
    }

    /// Non-blocking [`pop`](Self::pop): `None` when idle, paused, or
    /// stopped.
    pub fn try_pop(&self) -> Option<(String, T)> {
        let mut inner = self.inner.lock().expect("scheduler lock");
        if inner.stopped || inner.paused {
            return None;
        }
        Self::pop_locked(&mut inner)
    }

    fn pop_locked(inner: &mut Inner<T>) -> Option<(String, T)> {
        let tenant = inner.rotation.front()?.clone();
        let queue = inner
            .tenants
            .get_mut(&tenant)
            .expect("rotation entries have queues");
        if queue.deficit == 0 {
            queue.deficit = queue.priority;
        }
        let item = queue
            .items
            .pop_front()
            .expect("rotation entries are non-empty");
        queue.deficit -= 1;
        if queue.items.is_empty() {
            // Turn ends early; a future enqueue starts a fresh turn.
            queue.deficit = 0;
            inner.rotation.pop_front();
        } else if queue.deficit == 0 {
            inner.rotation.rotate_left(1);
        }
        Some((tenant, item))
    }

    /// Drops every queued item failing `keep` (cancellation). Running
    /// items are unaffected — they already left the queue.
    pub fn retain(&self, mut keep: impl FnMut(&str, &T) -> bool) {
        let mut inner = self.inner.lock().expect("scheduler lock");
        let mut emptied: Vec<String> = Vec::new();
        for (tenant, queue) in inner.tenants.iter_mut() {
            queue.items.retain(|item| keep(tenant, item));
            if queue.items.is_empty() {
                queue.deficit = 0;
                emptied.push(tenant.clone());
            }
        }
        inner.rotation.retain(|t| !emptied.contains(t));
    }

    /// Total items currently queued across tenants.
    pub fn queued(&self) -> usize {
        let inner = self.inner.lock().expect("scheduler lock");
        inner.tenants.values().map(|q| q.items.len()).sum()
    }

    /// Holds back every pop (items keep queueing) until
    /// [`resume`](Self::resume). Lets tests and maintenance windows
    /// build a backlog atomically before draining it.
    pub fn pause(&self) {
        self.inner.lock().expect("scheduler lock").paused = true;
    }

    /// Releases a [`pause`](Self::pause) and wakes blocked pops.
    pub fn resume(&self) {
        self.inner.lock().expect("scheduler lock").paused = false;
        self.available.notify_all();
    }

    /// Wakes every blocked [`pop`](Self::pop) with `None` and makes all
    /// future pops return `None`.
    pub fn stop(&self) {
        self.inner.lock().expect("scheduler lock").stopped = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(sched: &FairScheduler<u32>, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| sched.try_pop().expect("item available").0)
            .collect()
    }

    #[test]
    fn equal_priorities_alternate_round_robin() {
        let s = FairScheduler::new();
        s.enqueue("a", 1, 0..3u32);
        s.enqueue("b", 1, 0..3u32);
        assert_eq!(drain_order(&s, 6), ["a", "b", "a", "b", "a", "b"]);
        assert!(s.try_pop().is_none());
    }

    #[test]
    fn priorities_weight_the_rotation() {
        let s = FairScheduler::new();
        s.enqueue("heavy", 3, 0..6u32);
        s.enqueue("light", 1, 0..2u32);
        // heavy takes 3, light 1, repeat: h h h l h h h l
        assert_eq!(
            drain_order(&s, 8),
            ["heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"]
        );
    }

    #[test]
    fn backlogged_tenants_share_by_priority_ratio() {
        let s = FairScheduler::new();
        s.enqueue("p1", 1, 0..100u32);
        s.enqueue("p2", 2, 0..100u32);
        s.enqueue("p4", 4, 0..100u32);
        let first: Vec<String> = drain_order(&s, 70);
        let count = |t: &str| first.iter().filter(|x| x.as_str() == t).count();
        // 10 full DRR cycles of 7 units: exactly 10/20/40.
        assert_eq!((count("p1"), count("p2"), count("p4")), (10, 20, 40));
    }

    #[test]
    fn emptying_a_queue_ends_its_turn() {
        let s = FairScheduler::new();
        s.enqueue("a", 10, 0..1u32);
        s.enqueue("b", 1, 0..2u32);
        // `a` has quantum 10 but only one item; `b` proceeds right after.
        assert_eq!(drain_order(&s, 3), ["a", "b", "b"]);
    }

    #[test]
    fn reentrant_enqueue_reenters_rotation() {
        let s = FairScheduler::new();
        s.enqueue("a", 1, 0..1u32);
        assert_eq!(drain_order(&s, 1), ["a"]);
        assert!(s.try_pop().is_none());
        s.enqueue("a", 1, 5..6u32);
        assert_eq!(s.try_pop(), Some(("a".to_string(), 5)));
    }

    #[test]
    fn retain_drops_cancelled_items() {
        let s = FairScheduler::new();
        s.enqueue("a", 1, 0..4u32);
        s.enqueue("b", 1, 0..2u32);
        s.retain(|tenant, item| !(tenant == "a" && *item % 2 == 0));
        assert_eq!(s.queued(), 4);
        let mut remaining_a = Vec::new();
        while let Some((t, v)) = s.try_pop() {
            if t == "a" {
                remaining_a.push(v);
            }
        }
        assert_eq!(remaining_a, [1, 3]);
    }

    #[test]
    fn retain_that_empties_a_tenant_removes_it_from_rotation() {
        let s = FairScheduler::new();
        s.enqueue("a", 1, 0..2u32);
        s.enqueue("b", 1, 0..2u32);
        s.retain(|tenant, _| tenant != "a");
        assert_eq!(drain_order(&s, 2), ["b", "b"]);
        assert!(s.try_pop().is_none());
    }

    #[test]
    fn stop_wakes_blocked_pop() {
        let s = std::sync::Arc::new(FairScheduler::<u32>::new());
        let s2 = s.clone();
        let handle = std::thread::spawn(move || s2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.stop();
        assert_eq!(handle.join().expect("join"), None);
        s.enqueue("a", 1, 0..1u32);
        assert!(s.pop().is_none(), "stopped scheduler stays stopped");
    }

    #[test]
    fn pause_holds_items_back_until_resume() {
        let s = FairScheduler::new();
        s.pause();
        s.enqueue("a", 1, 0..2u32);
        assert!(s.try_pop().is_none(), "paused scheduler yields nothing");
        assert_eq!(s.queued(), 2, "items keep queueing while paused");
        s.resume();
        assert_eq!(drain_order(&s, 2), ["a", "a"]);
    }

    #[test]
    fn resume_wakes_blocked_pop() {
        let s = std::sync::Arc::new(FairScheduler::<u32>::new());
        s.pause();
        s.enqueue("a", 1, 0..1u32);
        let s2 = s.clone();
        let handle = std::thread::spawn(move || s2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.resume();
        assert_eq!(handle.join().expect("join"), Some(("a".to_string(), 0)));
    }

    #[test]
    fn priorities_are_clamped() {
        let s = FairScheduler::new();
        s.enqueue("a", 0, 0..5u32);
        s.enqueue("b", 99, 0..5u32);
        // a at clamped 1, b at clamped 10: b takes 5 (queue empties), a 1…
        let order = drain_order(&s, 10);
        assert_eq!(order.iter().filter(|t| t.as_str() == "b").count(), 5);
    }
}
