//! The campaign service: registry, persistence, recovery, and the TCP
//! request loop.
//!
//! # Life of a submission
//!
//! 1. A `submit` frame carries a tenant name, a priority, and an
//!    `rlnoc-spec v1` document. The spec is CRC- and
//!    semantics-validated, resolved to a [`Campaign`], and identified
//!    by `c-<fingerprint:016x>` — the same identity
//!    [`CheckpointDir`] namespaces persistence by.
//! 2. The campaign's tasks enter the deficit-round-robin scheduler
//!    under the tenant's priority; [`ServicePool`] workers pull tasks
//!    across campaigns and tenants in fair-share order and execute each
//!    with [`execute_task`] — the exact unit `rlnoc-runner` uses, so
//!    every checkpoint, policy snapshot, and final report is
//!    byte-identical to a standalone runner invocation.
//! 3. Completed tasks are checkpointed under
//!    `<dir>/<tenant>/<campaign-id>/` before the in-memory completion
//!    count advances, so persistence always leads visibility.
//! 4. A `kill -9` at any instant loses at most in-flight tasks: on
//!    restart the server rescans every `submission.spec`, reloads valid
//!    checkpoints, re-queues only the missing tasks, and re-serves
//!    finished campaigns' results straight from disk.
//!
//! Subscribers (`watch`) receive per-epoch telemetry for tasks that
//! execute while they are attached, as schema-v1 JSONL lines rendered
//! by `rlnoc-telemetry`'s exporter, plus `{"type":"task"}` progress
//! lines. Telemetry is observation-only by the workspace's proven
//! contract, so attaching a watcher cannot change any result byte.

use crate::sched::{clamp_priority, FairScheduler};
use crate::wire::{payload_field, read_frame, write_frame, Frame, FrameType, WireError};
use rlnoc_core::campaign::{Campaign, CampaignTask};
use rlnoc_core::experiment::ExperimentReport;
use rlnoc_core::spec::CampaignSpec;
use rlnoc_runner::{execute_task, CheckpointDir, Job, JobSource, ServicePool};
use rlnoc_telemetry::export::{json_escape, write_jsonl};
use rlnoc_telemetry::Telemetry;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Magic line opening every persisted `submission.spec` file.
pub const SUBMISSION_MAGIC: &str = "rlnoc-submission v1";

/// File (under the serve directory) the server writes its bound
/// address to — how clients and tests find a server started with an
/// OS-assigned port.
pub const ADDR_FILE: &str = "serve.addr";

/// Lifecycle of a submitted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Accepted; no task has started yet.
    Queued,
    /// At least one task has completed or is executing.
    Running,
    /// Every task's report is checkpointed.
    Done,
    /// Cancelled by the tenant; queued tasks were dropped.
    Cancelled,
}

impl CampaignState {
    /// Wire token for the state.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Cancelled => "cancelled",
        }
    }

    /// `true` once no further task of the campaign will execute.
    pub fn is_final(self) -> bool {
        matches!(self, Self::Done | Self::Cancelled)
    }
}

/// Renders the canonical result text for a sequence of task reports —
/// what a `result` request returns. Built from the runner's stable
/// report serialization, so a service result is byte-comparable to a
/// standalone [`Campaign::run`]:
///
/// ```text
/// task 0
/// <render_report lines>
/// end
/// task 1
/// …
/// ```
pub fn render_result_text(reports: &[ExperimentReport]) -> String {
    let mut out = String::new();
    for (index, report) in reports.iter().enumerate() {
        writeln!(out, "task {index}").expect("write to string");
        out.push_str(&rlnoc_runner::render_report(report));
        out.push_str("end\n");
    }
    out
}

/// Checks a tenant name is non-empty, bounded, and path-safe (it names
/// a directory under the serve root).
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// How to run a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = OS-assigned; the
    /// bound address is written to [`ADDR_FILE`] either way).
    pub addr: String,
    /// Worker threads executing campaign tasks.
    pub jobs: usize,
    /// Root persistence directory (`<dir>/<tenant>/<campaign-id>/`).
    pub dir: PathBuf,
    /// Service telemetry (worker counters; independent of per-task
    /// simulation telemetry).
    pub telemetry: Telemetry,
    /// Start with the scheduler paused: submissions queue but nothing
    /// executes until [`Server::resume`]. Lets tests and maintenance
    /// windows stage a backlog atomically.
    pub start_paused: bool,
}

/// A point-in-time view of one campaign, for introspection and load
/// tests.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// Owning tenant.
    pub tenant: String,
    /// Campaign id (`c-<fingerprint:016x>`).
    pub id: String,
    /// Tenant priority the campaign was scheduled at.
    pub priority: u32,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Tasks with checkpointed reports.
    pub completed: usize,
    /// Total tasks in the grid.
    pub total: usize,
    /// Submit-to-final latency, once final.
    pub latency: Option<Duration>,
}

type Key = (String, String); // (tenant, campaign id)

struct Entry {
    priority: u32,
    campaign: Campaign,
    ckpt: Arc<CheckpointDir>,
    total: usize,
    completed: usize,
    state: CampaignState,
    submitted: Instant,
    finished: Option<Instant>,
    subscribers: Vec<mpsc::Sender<String>>,
}

struct Shared {
    dir: PathBuf,
    campaigns: Mutex<HashMap<Key, Entry>>,
    sched: FairScheduler<(Key, CampaignTask)>,
    /// Tenant/campaign pairs in completion order (fairness evidence).
    completion_log: Mutex<Vec<Key>>,
    telemetry: Telemetry,
}

/// Outcome of registering a submission (new or deduplicated).
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Campaign id.
    pub id: String,
    /// Total tasks.
    pub total: usize,
    /// Tasks already completed (restored from disk or deduplicated).
    pub completed: usize,
    /// State after registration.
    pub state: CampaignState,
}

impl Shared {
    /// Registers a parsed submission: opens its checkpoint namespace,
    /// restores any completed tasks from disk, persists the submission
    /// file, and enqueues the missing tasks. Resubmitting an identical
    /// spec deduplicates onto the existing entry.
    fn register(
        &self,
        tenant: &str,
        priority: u32,
        spec: &CampaignSpec,
        spec_text: &str,
    ) -> Result<SubmitOutcome, String> {
        let campaign = spec.to_campaign().map_err(|e| e.to_string())?;
        let fingerprint = campaign.fingerprint();
        let id = format!("c-{fingerprint:016x}");
        let key: Key = (tenant.to_string(), id.clone());
        let tasks = campaign.tasks();
        let total = tasks.len();

        let mut campaigns = self.campaigns.lock().expect("registry lock");
        if let Some(entry) = campaigns.get(&key) {
            return Ok(SubmitOutcome {
                id,
                total: entry.total,
                completed: entry.completed,
                state: entry.state,
            });
        }

        let ckpt = CheckpointDir::open(&self.dir.join(tenant), fingerprint, total)
            .map_err(|e| format!("cannot open campaign storage: {e}"))?;
        let mut submission = String::new();
        writeln!(submission, "{SUBMISSION_MAGIC}").expect("write to string");
        writeln!(submission, "tenant={tenant}").expect("write to string");
        writeln!(submission, "priority={priority}").expect("write to string");
        writeln!(submission, "spec").expect("write to string");
        submission.push_str(spec_text);
        let tmp = ckpt.path().join("submission.tmp");
        let fin = ckpt.path().join("submission.spec");
        std::fs::write(&tmp, &submission)
            .and_then(|()| std::fs::rename(&tmp, &fin))
            .map_err(|e| format!("cannot persist submission: {e}"))?;

        let mut pending = Vec::new();
        let mut completed = 0usize;
        for task in tasks {
            if ckpt.load(task.index).is_some() {
                completed += 1;
            } else {
                pending.push(((tenant.to_string(), id.clone()), task));
            }
        }
        let state = if completed == total {
            CampaignState::Done
        } else if completed > 0 {
            CampaignState::Running
        } else {
            CampaignState::Queued
        };
        let now = Instant::now();
        campaigns.insert(
            key,
            Entry {
                priority,
                campaign,
                ckpt: Arc::new(ckpt),
                total,
                completed,
                state,
                submitted: now,
                finished: state.is_final().then_some(now),
                subscribers: Vec::new(),
            },
        );
        drop(campaigns);
        self.telemetry.counter("serve.submissions").add(1);
        if !pending.is_empty() {
            self.sched.enqueue(tenant, priority, pending);
        }
        Ok(SubmitOutcome {
            id,
            total,
            completed,
            state,
        })
    }

    /// Executes one task pulled from the scheduler.
    fn run_task(&self, key: Key, task: CampaignTask) {
        let (mut campaign, ckpt, streaming) = {
            let mut campaigns = self.campaigns.lock().expect("registry lock");
            let Some(entry) = campaigns.get_mut(&key) else {
                return;
            };
            if entry.state.is_final() {
                return; // cancelled while queued
            }
            entry.state = CampaignState::Running;
            (
                entry.campaign.clone(),
                Arc::clone(&entry.ckpt),
                !entry.subscribers.is_empty(),
            )
        };

        // Attach a fresh telemetry handle only when someone is
        // watching: observation-only by contract, so the report bytes
        // cannot depend on it.
        if streaming {
            campaign.telemetry = Telemetry::enabled();
        }
        let report = execute_task(&campaign, &task, Some(ckpt.as_ref()));

        let mut events: Vec<String> = Vec::new();
        if streaming {
            let mut buf = Vec::new();
            if write_jsonl(&campaign.telemetry, &mut buf).is_ok() {
                for line in String::from_utf8_lossy(&buf).lines() {
                    if line.starts_with("{\"type\":\"run\"")
                        || line.starts_with("{\"type\":\"epoch\"")
                    {
                        events.push(line.to_string());
                    }
                }
            }
        }

        let mut campaigns = self.campaigns.lock().expect("registry lock");
        let Some(entry) = campaigns.get_mut(&key) else {
            return;
        };
        entry.completed += 1;
        let workload = campaign
            .workloads
            .get(task.workload)
            .map(|w| w.name)
            .unwrap_or("?");
        events.push(format!(
            "{{\"type\":\"task\",\"tenant\":\"{}\",\"campaign\":\"{}\",\"index\":{},\"scheme\":\"{}\",\"workload\":\"{}\",\"completed\":{},\"total\":{}}}",
            json_escape(&key.0),
            json_escape(&key.1),
            task.index,
            report.scheme,
            json_escape(workload),
            entry.completed,
            entry.total
        ));
        let finished = entry.completed == entry.total && !entry.state.is_final();
        if finished {
            entry.state = CampaignState::Done;
            entry.finished = Some(Instant::now());
        }
        entry
            .subscribers
            .retain(|tx| events.iter().all(|line| tx.send(line.clone()).is_ok()));
        if finished {
            entry.subscribers.clear(); // hang up watchers: stream is over
        }
        drop(campaigns);
        if finished {
            self.completion_log
                .lock()
                .expect("completion log lock")
                .push(key);
            self.telemetry.counter("serve.campaigns_completed").add(1);
        }
    }

    /// Scans the persistence root and re-registers every submission
    /// found on disk (crash recovery / warm restart).
    fn recover(&self) -> usize {
        let mut recovered = 0;
        let Ok(tenants) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        for tenant_dir in tenants.flatten() {
            let tenant = tenant_dir.file_name().to_string_lossy().to_string();
            if !valid_tenant(&tenant) || !tenant_dir.path().is_dir() {
                continue;
            }
            let Ok(subdirs) = std::fs::read_dir(tenant_dir.path()) else {
                continue;
            };
            for sub in subdirs.flatten() {
                let submission = sub.path().join("submission.spec");
                let Ok(text) = std::fs::read_to_string(&submission) else {
                    continue;
                };
                let Some((priority, spec, spec_text)) = parse_submission(&text, &tenant) else {
                    continue;
                };
                // The directory name must match the spec's identity —
                // a moved or tampered directory is skipped, never run.
                let id_ok = spec
                    .campaign_id()
                    .is_ok_and(|id| sub.file_name().to_string_lossy() == id);
                if !id_ok {
                    continue;
                }
                if self.register(&tenant, priority, &spec, spec_text).is_ok() {
                    recovered += 1;
                }
            }
        }
        recovered
    }
}

/// Parses a persisted or wire submission body: header fields up to the
/// literal `spec` line, then a verbatim `rlnoc-spec v1` document.
/// Returns `(priority, parsed spec, raw spec text)`.
fn parse_submission<'a>(
    text: &'a str,
    expect_tenant: &str,
) -> Option<(u32, CampaignSpec, &'a str)> {
    let mut offset = 0usize;
    let mut priority = crate::sched::MIN_PRIORITY;
    let mut tenant_ok = false;
    let mut found_spec = false;
    for line in text.split_inclusive('\n') {
        offset += line.len();
        let line = line.trim_end_matches('\n');
        if line == "spec" {
            found_spec = true;
            break;
        } else if let Some(v) = line.strip_prefix("tenant=") {
            tenant_ok = v == expect_tenant;
        } else if let Some(v) = line.strip_prefix("priority=") {
            priority = clamp_priority(v.parse().ok()?);
        } else if line == SUBMISSION_MAGIC {
            // Persisted files carry the magic; wire payloads do not.
        }
    }
    if !found_spec || !tenant_ok {
        return None;
    }
    let spec_text = &text[offset..];
    let spec = CampaignSpec::from_text(spec_text).ok()?;
    Some((priority, spec, spec_text))
}

struct TaskSource {
    shared: Arc<Shared>,
}

impl JobSource for TaskSource {
    fn next_job(&self) -> Option<Job> {
        let (_tenant, (key, task)) = self.shared.sched.pop()?;
        let shared = Arc::clone(&self.shared);
        Some(Box::new(move || shared.run_task(key, task)))
    }
}

/// A running campaign service.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    pool: Option<ServicePool>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("dir", &self.dir).finish()
    }
}

impl Server {
    /// Starts the service: recovers persisted campaigns from
    /// `config.dir`, binds the listener, writes the bound address to
    /// [`ADDR_FILE`], and spawns the worker pool and accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind/persistence I/O failures.
    pub fn start(config: ServerConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let shared = Arc::new(Shared {
            dir: config.dir.clone(),
            campaigns: Mutex::new(HashMap::new()),
            sched: FairScheduler::new(),
            completion_log: Mutex::new(Vec::new()),
            telemetry: config.telemetry.clone(),
        });
        if config.start_paused {
            shared.sched.pause();
        }
        shared.recover();

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        std::fs::write(config.dir.join(ADDR_FILE), format!("{addr}\n"))?;

        let pool = ServicePool::start(
            config.jobs,
            Arc::new(TaskSource {
                shared: Arc::clone(&shared),
            }),
            &config.telemetry,
        );

        let stop = Arc::new(AtomicBool::new(false));
        let accept_shared = Arc::clone(&shared);
        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("rlnoc-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let shared = Arc::clone(&accept_shared);
                    let _ = std::thread::Builder::new()
                        .name("rlnoc-serve-conn".to_string())
                        .spawn(move || handle_connection(&shared, stream));
                }
            })
            .expect("spawn accept thread");

        Ok(Self {
            shared,
            addr,
            stop,
            accept_handle: Some(accept_handle),
            pool: Some(pool),
        })
    }

    /// The bound listener address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Releases a paused scheduler (see
    /// [`ServerConfig::start_paused`]); a no-op on a running one.
    pub fn resume(&self) {
        self.shared.sched.resume();
    }

    /// Snapshot of every registered campaign.
    pub fn statuses(&self) -> Vec<CampaignStatus> {
        let campaigns = self.shared.campaigns.lock().expect("registry lock");
        let mut out: Vec<CampaignStatus> = campaigns
            .iter()
            .map(|((tenant, id), e)| CampaignStatus {
                tenant: tenant.clone(),
                id: id.clone(),
                priority: e.priority,
                state: e.state,
                completed: e.completed,
                total: e.total,
                latency: e.finished.map(|f| f.duration_since(e.submitted)),
            })
            .collect();
        out.sort_by(|a, b| (&a.tenant, &a.id).cmp(&(&b.tenant, &b.id)));
        out
    }

    /// `(tenant, campaign)` pairs in the order campaigns finished —
    /// the fairness trace load tests assert on.
    pub fn completion_log(&self) -> Vec<(String, String)> {
        self.shared
            .completion_log
            .lock()
            .expect("completion log lock")
            .clone()
    }

    /// `true` when every registered campaign is in a final state.
    pub fn all_final(&self) -> bool {
        let campaigns = self.shared.campaigns.lock().expect("registry lock");
        !campaigns.is_empty() && campaigns.values().all(|e| e.state.is_final())
    }

    /// Graceful shutdown: stop accepting, abandon queued tasks, wait
    /// for in-flight tasks to finish checkpointing.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.shared.sched.stop();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

/// Reads the address a server wrote to [`ADDR_FILE`] under `dir`,
/// polling until it appears or `timeout` elapses.
pub fn wait_for_addr(dir: &Path, timeout: Duration) -> Option<String> {
    let deadline = Instant::now() + timeout;
    let path = dir.join(ADDR_FILE);
    loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return Some(addr);
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn error_frame(message: &str) -> Frame {
    Frame::text(FrameType::Error, &format!("message={message}\n"))
}

/// Serves one client connection: a loop of request frames until the
/// peer closes. Request-level failures answer with an `error` frame
/// and keep the connection; a malformed frame poisons stream framing,
/// answers `error`, and closes.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(WireError::Closed) | Err(WireError::Io(_)) => return,
            Err(WireError::Malformed(msg)) => {
                let _ = write_frame(&mut stream, &error_frame(&msg));
                return;
            }
        };
        let keep_going = dispatch(shared, &mut stream, &frame);
        if !keep_going {
            return;
        }
    }
}

/// Handles one request frame; returns `false` to close the connection.
fn dispatch(shared: &Arc<Shared>, stream: &mut TcpStream, frame: &Frame) -> bool {
    let reply = |stream: &mut TcpStream, frame: &Frame| write_frame(stream, frame).is_ok();
    let text = match frame.payload_text() {
        Ok(t) => t.to_string(),
        Err(_) => return reply(stream, &error_frame("payload is not UTF-8")),
    };
    match frame.kind {
        FrameType::Submit => {
            let Some(tenant) = payload_field(&text, "tenant").map(str::to_string) else {
                return reply(stream, &error_frame("missing tenant"));
            };
            if !valid_tenant(&tenant) {
                return reply(stream, &error_frame("invalid tenant name"));
            }
            match parse_submission(&text, &tenant) {
                Some((priority, spec, spec_text)) => {
                    match shared.register(&tenant, priority, &spec, spec_text) {
                        Ok(out) => reply(
                            stream,
                            &Frame::text(
                                FrameType::SubmitOk,
                                &format!(
                                    "campaign={}\ntasks={}\ncompleted={}\nstate={}\n",
                                    out.id,
                                    out.total,
                                    out.completed,
                                    out.state.as_str()
                                ),
                            ),
                        ),
                        Err(msg) => reply(stream, &error_frame(&msg)),
                    }
                }
                None => reply(stream, &error_frame("invalid submission payload")),
            }
        }
        FrameType::Status => match lookup(shared, &text) {
            Ok((key, state, completed, total)) => reply(
                stream,
                &Frame::text(
                    FrameType::StatusOk,
                    &format!(
                        "campaign={}\nstate={}\ncompleted={completed}\ntotal={total}\n",
                        key.1,
                        state.as_str()
                    ),
                ),
            ),
            Err(msg) => reply(stream, &error_frame(&msg)),
        },
        FrameType::Watch => handle_watch(shared, stream, &text),
        FrameType::Result => match handle_result(shared, &text) {
            Ok(body) => reply(stream, &Frame::text(FrameType::ResultOk, &body)),
            Err(msg) => reply(stream, &error_frame(&msg)),
        },
        FrameType::Cancel => match handle_cancel(shared, &text) {
            Ok(state) => reply(
                stream,
                &Frame::text(FrameType::CancelOk, &format!("state={}\n", state.as_str())),
            ),
            Err(msg) => reply(stream, &error_frame(&msg)),
        },
        _ => reply(stream, &error_frame("unexpected frame type for a request")),
    }
}

/// Resolves `tenant=`/`campaign=` fields to a registered campaign.
fn lookup(shared: &Shared, text: &str) -> Result<(Key, CampaignState, usize, usize), String> {
    let tenant = payload_field(text, "tenant").ok_or("missing tenant")?;
    let id = payload_field(text, "campaign").ok_or("missing campaign")?;
    let key: Key = (tenant.to_string(), id.to_string());
    let campaigns = shared.campaigns.lock().expect("registry lock");
    let entry = campaigns.get(&key).ok_or("unknown campaign")?;
    Ok((key, entry.state, entry.completed, entry.total))
}

fn handle_watch(shared: &Arc<Shared>, stream: &mut TcpStream, text: &str) -> bool {
    let done_frame = |key: &Key, state: CampaignState| {
        Frame::text(
            FrameType::WatchDone,
            &format!("campaign={}\nstate={}\n", key.1, state.as_str()),
        )
    };
    let (key, rx) = {
        let tenant = match payload_field(text, "tenant") {
            Some(t) => t.to_string(),
            None => return write_frame(stream, &error_frame("missing tenant")).is_ok(),
        };
        let id = match payload_field(text, "campaign") {
            Some(c) => c.to_string(),
            None => return write_frame(stream, &error_frame("missing campaign")).is_ok(),
        };
        let key: Key = (tenant, id);
        let mut campaigns = shared.campaigns.lock().expect("registry lock");
        let Some(entry) = campaigns.get_mut(&key) else {
            drop(campaigns);
            return write_frame(stream, &error_frame("unknown campaign")).is_ok();
        };
        if entry.state.is_final() {
            let state = entry.state;
            drop(campaigns);
            return write_frame(stream, &done_frame(&key, state)).is_ok();
        }
        let (tx, rx) = mpsc::channel();
        entry.subscribers.push(tx);
        drop(campaigns);
        (key, rx)
    };
    // Stream until the campaign reaches a final state (senders dropped)
    // or the client goes away (write fails).
    for line in rx.iter() {
        if write_frame(stream, &Frame::text(FrameType::Event, &line)).is_err() {
            return false;
        }
    }
    let state = {
        let campaigns = shared.campaigns.lock().expect("registry lock");
        campaigns
            .get(&key)
            .map(|e| e.state)
            .unwrap_or(CampaignState::Cancelled)
    };
    write_frame(stream, &done_frame(&key, state)).is_ok()
}

fn handle_result(shared: &Shared, text: &str) -> Result<String, String> {
    let (key, state, _, total) = lookup(shared, text)?;
    if state != CampaignState::Done {
        return Err(format!(
            "campaign {} is {}, result requires done",
            key.1,
            state.as_str()
        ));
    }
    let ckpt = {
        let campaigns = shared.campaigns.lock().expect("registry lock");
        Arc::clone(&campaigns.get(&key).ok_or("unknown campaign")?.ckpt)
    };
    let mut reports = Vec::with_capacity(total);
    for index in 0..total {
        reports.push(
            ckpt.load(index)
                .ok_or_else(|| format!("checkpoint {index} unreadable"))?,
        );
    }
    Ok(render_result_text(&reports))
}

fn handle_cancel(shared: &Shared, text: &str) -> Result<CampaignState, String> {
    let tenant = payload_field(text, "tenant").ok_or("missing tenant")?;
    let id = payload_field(text, "campaign").ok_or("missing campaign")?;
    let key: Key = (tenant.to_string(), id.to_string());
    let mut campaigns = shared.campaigns.lock().expect("registry lock");
    let entry = campaigns.get_mut(&key).ok_or("unknown campaign")?;
    if entry.state.is_final() {
        return Ok(entry.state);
    }
    entry.state = CampaignState::Cancelled;
    entry.finished = Some(Instant::now());
    entry.subscribers.clear();
    drop(campaigns);
    shared.sched.retain(|_, (k, _)| *k != key);
    Ok(CampaignState::Cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_validation_is_path_safe() {
        assert!(valid_tenant("alice"));
        assert!(valid_tenant("team-7_b"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("../escape"));
        assert!(!valid_tenant("a/b"));
        assert!(!valid_tenant("a b"));
        assert!(!valid_tenant(&"x".repeat(65)));
    }

    #[test]
    fn submission_round_trips_through_parse() {
        let spec = CampaignSpec::tiny(3);
        let spec_text = spec.to_text();
        let body = format!("tenant=alice\npriority=4\nspec\n{spec_text}");
        let (priority, parsed, raw) = parse_submission(&body, "alice").expect("parses");
        assert_eq!(priority, 4);
        assert_eq!(parsed, spec);
        assert_eq!(raw, spec_text);
        assert!(
            parse_submission(&body, "bob").is_none(),
            "tenant must match"
        );
        assert!(
            parse_submission("tenant=alice\nspec\ngarbage", "alice").is_none(),
            "spec must validate"
        );
    }

    #[test]
    fn result_text_is_deterministic() {
        let spec = CampaignSpec::tiny(5);
        let result = spec.to_campaign().expect("valid").run();
        let a = render_result_text(&result.reports);
        let b = render_result_text(&result.reports);
        assert_eq!(a, b);
        assert!(a.starts_with("task 0\nscheme CRC\n"));
    }
}
