//! The `rlnoc-wire v1` frame protocol.
//!
//! Every message on a service connection is one length-prefixed,
//! CRC-trailered frame in the text-format family of `rlnoc-case` /
//! `rlnoc-policy`:
//!
//! ```text
//! rlnw1 <type> <len> <crc32:08x>\n
//! <len bytes of payload>
//! ```
//!
//! The header is a single ASCII line of four space-separated tokens:
//! the magic `rlnw1`, a frame-type token, the payload length in
//! decimal, and the CRC-32 of the payload in fixed-width lowercase hex
//! (computed with the in-tree `noc-coding` implementation — the same
//! polynomial every persisted format in the workspace uses). The
//! payload follows immediately, byte-exact.
//!
//! Decoding is defensive by construction: the header line is capped, a
//! length above [`MAX_PAYLOAD`] is rejected before any allocation, and
//! a frame whose payload fails the CRC — a truncation or a bit flip
//! anywhere in the stream — is a hard [`WireError::Malformed`], never a
//! partial frame. The corruption test suite drives every byte offset
//! of every frame type through the decoder.

use noc_coding::crc::Crc32;
use std::io::{self, Read, Write};

/// Magic token opening every frame header.
pub const WIRE_MAGIC: &str = "rlnw1";

/// Upper bound on payload size (campaign results are well under this).
pub const MAX_PAYLOAD: usize = 8 * 1024 * 1024;

/// Upper bound on the header line (magic + type + len + crc + spaces).
const MAX_HEADER: usize = 64;

/// Every message kind in `rlnoc-wire v1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Client → server: a campaign submission.
    Submit,
    /// Server → client: submission accepted (or deduplicated).
    SubmitOk,
    /// Client → server: query one campaign's state.
    Status,
    /// Server → client: the state answer.
    StatusOk,
    /// Client → server: subscribe to a campaign's telemetry stream.
    Watch,
    /// Server → client: one streamed JSONL telemetry/progress line.
    Event,
    /// Server → client: the stream ended (campaign reached a final
    /// state or was cancelled).
    WatchDone,
    /// Client → server: fetch a completed campaign's full report text.
    Result,
    /// Server → client: the report text.
    ResultOk,
    /// Client → server: cancel a queued/running campaign.
    Cancel,
    /// Server → client: cancellation outcome.
    CancelOk,
    /// Server → client: request-level failure, payload `message=...`.
    Error,
}

impl FrameType {
    /// The header token for this type.
    pub fn token(self) -> &'static str {
        match self {
            Self::Submit => "submit",
            Self::SubmitOk => "submit-ok",
            Self::Status => "status",
            Self::StatusOk => "status-ok",
            Self::Watch => "watch",
            Self::Event => "event",
            Self::WatchDone => "watch-done",
            Self::Result => "result",
            Self::ResultOk => "result-ok",
            Self::Cancel => "cancel",
            Self::CancelOk => "cancel-ok",
            Self::Error => "error",
        }
    }

    /// Parses a header token.
    pub fn from_token(token: &str) -> Option<Self> {
        Some(match token {
            "submit" => Self::Submit,
            "submit-ok" => Self::SubmitOk,
            "status" => Self::Status,
            "status-ok" => Self::StatusOk,
            "watch" => Self::Watch,
            "event" => Self::Event,
            "watch-done" => Self::WatchDone,
            "result" => Self::Result,
            "result-ok" => Self::ResultOk,
            "cancel" => Self::Cancel,
            "cancel-ok" => Self::CancelOk,
            "error" => Self::Error,
            _ => return None,
        })
    }

    /// All frame types (for exhaustive corruption sweeps).
    pub const ALL: [FrameType; 12] = [
        Self::Submit,
        Self::SubmitOk,
        Self::Status,
        Self::StatusOk,
        Self::Watch,
        Self::Event,
        Self::WatchDone,
        Self::Result,
        Self::ResultOk,
        Self::Cancel,
        Self::CancelOk,
        Self::Error,
    ];
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// Transport failure (or mid-frame EOF surfaced by the OS).
    Io(io::Error),
    /// Structurally invalid bytes: bad magic, unknown type, oversized
    /// or unparsable length, or a payload failing its CRC.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Io(e) => write!(f, "wire I/O error: {e}"),
            Self::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        // A mid-frame EOF is corruption (truncated frame), not a clean
        // close; `read_frame` maps the between-frames case to `Closed`
        // before any of these conversions run.
        match e.kind() {
            io::ErrorKind::UnexpectedEof => Self::Malformed("truncated frame".into()),
            _ => Self::Io(e),
        }
    }
}

/// One protocol message: a type plus an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameType,
    /// Payload bytes (conventionally UTF-8 `key=value` lines or one
    /// JSONL line, but the framing layer does not care).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a raw byte payload.
    pub fn new(kind: FrameType, payload: Vec<u8>) -> Self {
        Self { kind, payload }
    }

    /// A frame with a text payload.
    pub fn text(kind: FrameType, payload: &str) -> Self {
        Self::new(kind, payload.as_bytes().to_vec())
    }

    /// The payload as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when the payload is not valid UTF-8.
    pub fn payload_text(&self) -> Result<&str, WireError> {
        std::str::from_utf8(&self.payload)
            .map_err(|_| WireError::Malformed("payload is not UTF-8".into()))
    }

    /// Serializes the frame (header line + payload).
    pub fn encode(&self) -> Vec<u8> {
        let crc = Crc32::new().checksum(&self.payload);
        let header = format!(
            "{WIRE_MAGIC} {} {} {crc:08x}\n",
            self.kind.token(),
            self.payload.len()
        );
        let mut out = Vec::with_capacity(header.len() + self.payload.len());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Writes one frame to `w` and flushes.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads exactly one frame from `r`.
///
/// Never panics on any input. Returns [`WireError::Closed`] when the
/// stream ends cleanly *before* the first header byte; any later
/// truncation, any CRC failure, and any structural violation is
/// [`WireError::Malformed`].
///
/// # Errors
///
/// [`WireError`] as described above.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    // Header: read byte-wise up to the newline (bounded).
    let mut header = Vec::with_capacity(MAX_HEADER);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if header.is_empty() => return Err(WireError::Closed),
            Ok(0) => return Err(WireError::Malformed("EOF inside header".into())),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
        if byte[0] == b'\n' {
            break;
        }
        header.push(byte[0]);
        if header.len() > MAX_HEADER {
            return Err(WireError::Malformed("header line too long".into()));
        }
    }
    let header = std::str::from_utf8(&header)
        .map_err(|_| WireError::Malformed("header is not UTF-8".into()))?;
    let mut tokens = header.split(' ');
    match tokens.next() {
        Some(WIRE_MAGIC) => {}
        other => return Err(WireError::Malformed(format!("bad magic {other:?}"))),
    }
    let kind = tokens
        .next()
        .and_then(FrameType::from_token)
        .ok_or_else(|| WireError::Malformed("unknown frame type".into()))?;
    let len: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| WireError::Malformed("bad payload length".into()))?;
    if len > MAX_PAYLOAD {
        return Err(WireError::Malformed(format!(
            "payload length {len} exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let stated_crc = tokens
        .next()
        .filter(|t| t.len() == 8)
        .and_then(|t| u32::from_str_radix(t, 16).ok())
        .ok_or_else(|| WireError::Malformed("bad payload checksum".into()))?;
    if tokens.next().is_some() {
        return Err(WireError::Malformed("trailing header tokens".into()));
    }

    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let actual = Crc32::new().checksum(&payload);
    if actual != stated_crc {
        return Err(WireError::Malformed(format!(
            "payload checksum mismatch: header says {stated_crc:08x}, payload is {actual:08x}"
        )));
    }
    Ok(Frame { kind, payload })
}

/// Parses a `key=value` payload convention: returns the value of the
/// first line `key=...`, if present.
pub fn payload_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    text.lines()
        .find_map(|l| l.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        for kind in FrameType::ALL {
            let frame = Frame::text(kind, "tenant=alice\ncampaign=c-0123\n");
            let bytes = frame.encode();
            let back = read_frame(&mut Cursor::new(&bytes)).expect("round trip");
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = Frame::new(FrameType::WatchDone, Vec::new());
        let bytes = frame.encode();
        assert_eq!(read_frame(&mut Cursor::new(&bytes)).expect("ok"), frame);
    }

    #[test]
    fn consecutive_frames_stream() {
        let a = Frame::text(FrameType::Submit, "tenant=a\n");
        let b = Frame::text(FrameType::Event, "{\"type\":\"epoch\"}");
        let mut bytes = a.encode();
        bytes.extend_from_slice(&b.encode());
        let mut cursor = Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cursor).expect("first"), a);
        assert_eq!(read_frame(&mut cursor).expect("second"), b);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));
    }

    #[test]
    fn clean_eof_is_closed_anything_else_malformed() {
        assert!(matches!(
            read_frame(&mut Cursor::new(b"")),
            Err(WireError::Closed)
        ));
        assert!(matches!(
            read_frame(&mut Cursor::new(b"rlnw1 submit")),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let header = format!("{WIRE_MAGIC} submit {} 00000000\n", MAX_PAYLOAD + 1);
        assert!(matches!(
            read_frame(&mut Cursor::new(header.as_bytes())),
            Err(WireError::Malformed(_))
        ));
        // usize overflow attempts are plain parse failures.
        let header = format!("{WIRE_MAGIC} submit 99999999999999999999999 00000000\n");
        assert!(matches!(
            read_frame(&mut Cursor::new(header.as_bytes())),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn unbounded_header_is_rejected() {
        let junk = vec![b'x'; 4096];
        assert!(matches!(
            read_frame(&mut Cursor::new(&junk)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn payload_field_finds_first_match() {
        let text = "tenant=alice\ncampaign=c-01\ntenant=bob\n";
        assert_eq!(payload_field(text, "tenant"), Some("alice"));
        assert_eq!(payload_field(text, "campaign"), Some("c-01"));
        assert_eq!(payload_field(text, "missing"), None);
    }
}
