//! `rlnoc-serve` — an always-on, multi-tenant campaign service for the
//! rlnoc workspace.
//!
//! The service accepts [`rlnoc_core::spec::CampaignSpec`] submissions
//! over a small TCP protocol (`rlnoc-wire v1`, [`wire`]), schedules
//! their tasks across a shared [`rlnoc_runner::ServicePool`] with
//! per-tenant deficit-round-robin fairness ([`sched`]), streams
//! per-epoch telemetry to subscribers as schema-v1 JSONL, and persists
//! every checkpoint under `<dir>/<tenant>/<campaign-id>/` so a
//! `kill -9` + restart resumes all in-flight campaigns and re-serves
//! finished ones from disk ([`server`]).
//!
//! The load-bearing invariant, inherited from the rest of the
//! workspace: a task's report is a pure function of `(campaign, task)`.
//! The service adds *placement* (which worker, when, for whom) but
//! never touches *content*, so every result byte matches a standalone
//! `rlnoc-runner` run — including across crashes, cancellations of
//! other tenants, and attached telemetry watchers.
//!
//! Three binaries ship with the crate:
//!
//! - `rlnoc-serve` — the server (`--addr`, `--jobs`, `--dir`).
//! - `rlnoc-submit` — client CLI: `submit`, `status`, `watch`,
//!   `result`, `cancel`.
//! - `loadtest` — floods an in-process server with thousands of tiny
//!   campaigns across prioritised tenants and writes submit-to-complete
//!   latency percentiles to `BENCH_serve.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod sched;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, StatusReply, SubmitAck};
pub use sched::{clamp_priority, FairScheduler, MAX_PRIORITY, MIN_PRIORITY};
pub use server::{
    render_result_text, valid_tenant, wait_for_addr, CampaignState, CampaignStatus, Server,
    ServerConfig, SubmitOutcome, ADDR_FILE, SUBMISSION_MAGIC,
};
pub use wire::{
    payload_field, read_frame, write_frame, Frame, FrameType, WireError, MAX_PAYLOAD, WIRE_MAGIC,
};
