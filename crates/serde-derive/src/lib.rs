//! Derive macros for the offline `serde` stand-in.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to empty
//! impls of the corresponding marker trait. The input is parsed with the
//! bare `proc_macro` API (no `syn`/`quote` — the build container has no
//! registry access): we scan for the `struct`/`enum`/`union` keyword and
//! take the following identifier as the type name. Generic types are
//! intentionally unsupported; none of the workspace's serde-derived
//! types are generic.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a derive input token stream.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("expected a type name after `{word}`, found {other:?}"),
                }
            }
        }
    }
    panic!("derive input contains no struct/enum/union definition");
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .expect("generated impl is valid Rust")
}

/// Expands to `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// Expands to `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl is valid Rust")
}
