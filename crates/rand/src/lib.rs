//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` crate cannot be vendored. This shim provides the exact
//! surface the workspace uses — [`rngs::SmallRng`], [`Rng`],
//! [`SeedableRng`], `gen_range` over integer/float ranges, and
//! `gen_bool` — backed by xoshiro256++ seeded via splitmix64 (the same
//! generator family the real `SmallRng` uses on 64-bit targets).
//!
//! Determinism contract: for a fixed seed the emitted stream is stable
//! across runs and platforms. It is **not** bit-identical to upstream
//! `rand`; reproducibility within this repository is the goal.

use std::ops::Range;

/// Derives the seed of sub-stream `index` from `root_seed`.
///
/// This is the workspace-wide convention for splitting one master seed
/// into decorrelated per-task / per-router seeds (campaign tasks, RL
/// agents, traffic sources). It walks the SplitMix64 sequence: the state
/// is advanced `index + 1` gamma steps past `root_seed` and finalized
/// with the SplitMix64 output mix, so
///
/// * the mapping is a pure function of `(root_seed, index)` — stable
///   across runs, platforms, and worker counts, and
/// * distinct indices land in distinct, well-mixed positions of the
///   sequence — unlike ad-hoc `seed ^ (i << k)` arithmetic, which leaves
///   low bits correlated and collides for small roots.
///
/// # Example
///
/// ```
/// use rand::seed_stream;
///
/// let a = seed_stream(2019, 0);
/// let b = seed_stream(2019, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, seed_stream(2019, 0));
/// ```
#[must_use]
pub fn seed_stream(root_seed: u64, index: u64) -> u64 {
    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    // State after `index + 1` SplitMix64 increments; the +1 keeps
    // `seed_stream(s, 0)` from degenerating to a mix of the raw root.
    let state = root_seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(index.wrapping_add(1)));
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open, as in `rand`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0,1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce uniform samples (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire-style multiply-shift keeps bias below 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        let wide = Range {
            start: self.start as f64,
            end: self.end as f64,
        };
        wide.sample_from(rng) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind `rand`'s
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.s = [s0n, s1n, s2n, s3n];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen_range(0u64..1000)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 gave {hits}/100000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(5);
        let _ = r.gen_range(5u32..5);
    }
}

#[cfg(test)]
mod seed_stream_tests {
    use super::rngs::SmallRng;
    use super::{seed_stream, Rng, SeedableRng};

    #[test]
    fn pure_function_of_root_and_index() {
        assert_eq!(seed_stream(7, 3), seed_stream(7, 3));
        assert_ne!(seed_stream(7, 3), seed_stream(8, 3));
        assert_ne!(seed_stream(7, 3), seed_stream(7, 4));
    }

    #[test]
    fn distinct_indices_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for root in [0u64, 1, 2019, u64::MAX] {
            for index in 0..1024 {
                assert!(
                    seen.insert(seed_stream(root, index)),
                    "collision at root={root} index={index}"
                );
            }
            seen.clear();
        }
    }

    #[test]
    fn adjacent_indices_are_decorrelated() {
        // Adjacent streams must differ in roughly half their bits — the
        // avalanche property ad-hoc `seed ^ (i << k)` seeding lacks.
        let mut total_bits = 0u32;
        const PAIRS: u64 = 256;
        for i in 0..PAIRS {
            total_bits += (seed_stream(42, i) ^ seed_stream(42, i + 1)).count_ones();
        }
        let mean = f64::from(total_bits) / PAIRS as f64;
        assert!(
            (24.0..40.0).contains(&mean),
            "mean hamming distance {mean} not avalanche-like"
        );
    }

    #[test]
    fn streams_seed_decorrelated_generators() {
        // Generators seeded from adjacent streams must not produce
        // correlated bool draws.
        let mut a = SmallRng::seed_from_u64(seed_stream(9, 0));
        let mut b = SmallRng::seed_from_u64(seed_stream(9, 1));
        let agreements = (0..10_000)
            .filter(|_| a.gen_bool(0.5) == b.gen_bool(0.5))
            .count();
        assert!(
            (4_500..5_500).contains(&agreements),
            "streams agree on {agreements}/10000 draws"
        );
    }
}
