//! Offline micro-benchmark harness with a `criterion`-compatible API.
//!
//! The build container has no crates.io access, so the real `criterion`
//! cannot be vendored. This shim implements the subset the workspace's
//! benches use — `bench_function`, `benchmark_group`, `iter`,
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a straightforward
//! warmup-then-measure loop. Reported numbers are mean wall-clock time
//! per iteration (with min/max across samples); there is no statistical
//! outlier analysis or HTML report.
//!
//! Two environment variables extend the real criterion's behaviour for
//! CI use:
//!
//! - `CRITERION_JSON=<path>` — after all groups run, write a JSON object
//!   mapping each benchmark name to its median sample time in
//!   nanoseconds (`{"net/step": 1234.5, ...}`). The file is written by
//!   the `criterion_main!`-generated `main`, so every bench binary gets
//!   it for free.
//! - `CRITERION_QUICK=1` — clamp every benchmark to a small sample
//!   count and short warmup/measurement budget, regardless of what the
//!   bench binary configured. Intended for CI smoke jobs where relative
//!   regressions matter more than tight confidence intervals.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one routine
/// call per setup call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// Sample count used when `CRITERION_QUICK=1` caps a run.
const QUICK_SAMPLE_FLOOR: usize = 10;
const QUICK_MEASUREMENT: Duration = Duration::from_millis(400);
const QUICK_WARM_UP: Duration = Duration::from_millis(100);

fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0"))
}

fn results() -> &'static Mutex<Vec<(String, Report)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, Report)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Measurement configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// The configuration actually used for measurement: the bench
    /// binary's settings, clamped when `CRITERION_QUICK=1`.
    fn effective(&self) -> Criterion {
        if quick_mode() {
            Criterion {
                sample_size: self.sample_size.min(QUICK_SAMPLE_FLOOR),
                measurement_time: self.measurement_time.min(QUICK_MEASUREMENT),
                warm_up_time: self.warm_up_time.min(QUICK_WARM_UP),
            }
        } else {
            self.clone()
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.effective(),
            report: None,
        };
        f(&mut bencher);
        if let Some(r) = bencher.report {
            println!(
                "{name:<44} time: [{} {} {}]",
                format_ns(r.min_ns),
                format_ns(r.mean_ns),
                format_ns(r.max_ns)
            );
            results()
                .lock()
                .expect("bench results lock")
                .push((name.to_string(), r));
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (reporting-side no-op in the shim).
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Report {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    median_ns: f64,
}

/// Median of per-sample times; `samples` need not be sorted.
fn median_of(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of zero samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample times"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn report_from_samples(mut samples: Vec<f64>, total_ns: f64, total_iters: u64) -> Report {
    let mut mins = f64::MAX;
    let mut maxs: f64 = 0.0;
    for &s in &samples {
        mins = mins.min(s);
        maxs = maxs.max(s);
    }
    Report {
        mean_ns: total_ns / total_iters as f64,
        min_ns: mins,
        max_ns: maxs,
        median_ns: median_of(&mut samples),
    }
}

/// Writes the `CRITERION_JSON` report if the variable is set. Called by
/// the `criterion_main!`-generated `main` after all groups finish;
/// harmless to call when no benchmarks ran or the variable is unset.
pub fn write_json_report_if_requested() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let collected = results().lock().expect("bench results lock");
    let mut out = String::from("{\n");
    for (i, (name, report)) in collected.iter().enumerate() {
        let comma = if i + 1 == collected.len() { "" } else { "," };
        out.push_str(&format!("  {:?}: {:.1}{comma}\n", name, report.median_ns));
    }
    out.push_str("}\n");
    // Merge with an existing file so micro + network binaries can append
    // into one report: read, strip trailing brace, splice. Keeping the
    // format line-oriented makes that a trivial text operation.
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) if existing.trim_end().ends_with('}') && !collected.is_empty() => {
            let body_old = existing
                .trim_end()
                .trim_end_matches('}')
                .trim_end()
                .trim_start_matches('{')
                .trim()
                .to_string();
            let body_new = out
                .trim_end()
                .trim_end_matches('}')
                .trim_end()
                .trim_start_matches('{')
                .trim()
                .to_string();
            if body_old.is_empty() {
                out
            } else {
                let joint = body_old.trim_end_matches(',').to_string();
                format!("{{\n  {joint},\n  {body_new}\n}}\n")
            }
        }
        _ => out,
    };
    std::fs::write(&path, merged).expect("write CRITERION_JSON report");
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    config: Criterion,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine` in a warmup-then-measure loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-call cost to size measurement batches.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut per_call_ns = f64::MAX;
        let mut calls: u64 = 0;
        while Instant::now() < warm_until {
            let t0 = Instant::now();
            black_box(routine());
            per_call_ns = per_call_ns.min(t0.elapsed().as_nanos() as f64);
            calls += 1;
        }
        if calls == 0 {
            let t0 = Instant::now();
            black_box(routine());
            per_call_ns = t0.elapsed().as_nanos() as f64;
        }
        let samples = self.config.sample_size;
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let per_sample = (budget_ns / samples as f64 / per_call_ns.max(1.0)).clamp(1.0, 1e9) as u64;

        let mut sample_ns = Vec::with_capacity(samples);
        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / per_sample as f64;
            sample_ns.push(ns);
            total_ns += ns * per_sample as f64;
            total_iters += per_sample;
        }
        self.report = Some(report_from_samples(sample_ns, total_ns, total_iters));
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.config.warm_up_time;
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warm_until {
                break;
            }
        }
        let samples = self.config.sample_size;
        let mut sample_ns = Vec::with_capacity(samples);
        let mut total = 0.0;
        for _ in 0..samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let ns = t0.elapsed().as_nanos() as f64;
            sample_ns.push(ns);
            total += ns;
        }
        self.report = Some(report_from_samples(sample_ns, total, samples as u64));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, `criterion`-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_report() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with("s"));
    }

    #[test]
    fn median_is_order_independent() {
        let mut odd = vec![5.0, 1.0, 3.0];
        assert_eq!(median_of(&mut odd), 3.0);
        let mut even = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_of(&mut even), 2.5);
    }

    #[test]
    fn report_tracks_min_max_median() {
        let r = report_from_samples(vec![10.0, 30.0, 20.0], 60.0, 3);
        assert_eq!(r.min_ns, 10.0);
        assert_eq!(r.max_ns, 30.0);
        assert_eq!(r.median_ns, 20.0);
        assert_eq!(r.mean_ns, 20.0);
    }
}
