//! Tier-1 guarantees of the parallel runner: worker count and
//! checkpoint/resume must never change campaign results.

use noc_testutil::{temp_dir, tiny_campaign};
use rlnoc_runner::{CheckpointDir, RunnerConfig};
use rlnoc_telemetry::Telemetry;

#[test]
fn one_worker_and_four_workers_agree_exactly() {
    let campaign = tiny_campaign();
    let one = RunnerConfig {
        jobs: 1,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    let four = RunnerConfig {
        jobs: 4,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(
        one, four,
        "parallel campaign must be byte-identical to serial"
    );
    // And both must match the campaign's own serial entry point.
    assert_eq!(one, campaign.run());
}

#[test]
fn resume_from_partial_checkpoints_matches_uninterrupted_run() {
    let campaign = tiny_campaign();
    let uninterrupted = campaign.run();
    let total = uninterrupted.reports.len();

    // Simulate a campaign killed after finishing half its tasks: only
    // those checkpoints exist on disk.
    let dir = temp_dir("resume");
    let ckpt = CheckpointDir::open(&dir, campaign.fingerprint(), total).expect("open");
    for (index, report) in uninterrupted.reports.iter().enumerate().take(total / 2) {
        ckpt.store(index, report).expect("store");
    }

    let telemetry = Telemetry::enabled();
    let resumed = RunnerConfig {
        jobs: 2,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: telemetry.clone(),
    }
    .run_campaign(&campaign);
    assert_eq!(resumed, uninterrupted, "resume changes nothing");
    assert_eq!(
        telemetry.counter("runner.tasks_resumed").get(),
        (total / 2) as u64,
        "exactly the stored half was restored"
    );
    assert_eq!(
        telemetry.counter("runner.tasks_completed").get(),
        (total - total / 2) as u64,
        "only the missing half executed"
    );

    // A second resume restores everything and runs nothing.
    let telemetry2 = Telemetry::enabled();
    let again = RunnerConfig {
        jobs: 2,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: telemetry2.clone(),
    }
    .run_campaign(&campaign);
    assert_eq!(again, uninterrupted);
    assert_eq!(
        telemetry2.counter("runner.tasks_resumed").get(),
        total as u64
    );
    assert_eq!(telemetry2.counter("runner.tasks_completed").get(), 0);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn rl_policy_snapshots_are_saved_and_reloadable() {
    let mut campaign = tiny_campaign();
    // Keep only the RL scheme: one task, one policy file.
    campaign
        .schemes
        .retain(|s| matches!(s, rlnoc_core::ErrorControlScheme::ProposedRl));
    let dir = temp_dir("policy");
    let result = RunnerConfig {
        jobs: 1,
        snapshot_dir: Some(dir.clone()),
        resume: false,
        telemetry: Telemetry::disabled(),
    }
    .run_campaign(&campaign);
    assert_eq!(result.reports.len(), 1);

    let policy = noc_rl::PolicySnapshot::load_from_path(
        dir.join(CheckpointDir::namespace(campaign.fingerprint()))
            .join("task-0000.policy"),
    )
    .expect("valid");
    assert_eq!(policy.num_agents(), 16, "one agent per 4x4 mesh router");

    // The saved policy drives an inference-only re-run of the same cell.
    let task = &campaign.tasks()[0];
    let report = rlnoc_core::Experiment::builder()
        .scheme(rlnoc_core::ErrorControlScheme::ProposedRl)
        .workload(campaign.workloads[0].clone())
        .noc(campaign.noc)
        .seed(task.seed)
        .pretrain_cycles(campaign.pretrain_cycles)
        .warmup_cycles(campaign.warmup_cycles)
        .measure_cycles(campaign.measure_cycles.expect("quick campaign caps"))
        .drain_limit(campaign.drain_limit)
        .rl_policy(std::sync::Arc::new(policy))
        .build()
        .expect("valid inference configuration")
        .run();
    assert!(report.packets_delivered > 0);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn foreign_campaign_in_the_same_directory_no_longer_conflicts() {
    // Pre-namespacing this was a hard ManifestMismatch panic; now each
    // campaign owns a fingerprint-named subdirectory and they coexist.
    let campaign = tiny_campaign();
    let dir = temp_dir("mismatch");
    let foreign =
        CheckpointDir::open(&dir, campaign.fingerprint() ^ 1, 4).expect("claim with other fp");
    let result = RunnerConfig {
        jobs: 1,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: Telemetry::disabled(),
    }
    .run_campaign(&campaign);
    assert_eq!(result, campaign.run(), "foreign namespace is not disturbed");
    assert!(
        foreign.path().join("campaign.manifest").exists(),
        "the other campaign's manifest survives"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
