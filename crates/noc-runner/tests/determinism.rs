//! Tier-1 guarantees of the parallel runner: worker count and
//! checkpoint/resume must never change campaign results.

use noc_testutil::{temp_dir, tiny_campaign};
use rlnoc_runner::{CheckpointDir, RunnerConfig};
use rlnoc_telemetry::Telemetry;

#[test]
fn one_worker_and_four_workers_agree_exactly() {
    let campaign = tiny_campaign();
    let one = RunnerConfig {
        jobs: 1,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    let four = RunnerConfig {
        jobs: 4,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(
        one, four,
        "parallel campaign must be byte-identical to serial"
    );
    // And both must match the campaign's own serial entry point.
    assert_eq!(one, campaign.run());
}

#[test]
fn resume_from_partial_checkpoints_matches_uninterrupted_run() {
    let campaign = tiny_campaign();
    let uninterrupted = campaign.run();
    let total = uninterrupted.reports.len();

    // Simulate a campaign killed after finishing half its tasks: only
    // those checkpoints exist on disk.
    let dir = temp_dir("resume");
    let ckpt = CheckpointDir::open(&dir, campaign.fingerprint(), total).expect("open");
    for (index, report) in uninterrupted.reports.iter().enumerate().take(total / 2) {
        ckpt.store(index, report).expect("store");
    }

    let telemetry = Telemetry::enabled();
    let resumed = RunnerConfig {
        jobs: 2,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: telemetry.clone(),
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(resumed, uninterrupted, "resume changes nothing");
    assert_eq!(
        telemetry.counter("runner.tasks_resumed").get(),
        (total / 2) as u64,
        "exactly the stored half was restored"
    );
    assert_eq!(
        telemetry.counter("runner.tasks_completed").get(),
        (total - total / 2) as u64,
        "only the missing half executed"
    );

    // A second resume restores everything and runs nothing.
    let telemetry2 = Telemetry::enabled();
    let again = RunnerConfig {
        jobs: 2,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: telemetry2.clone(),
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(again, uninterrupted);
    assert_eq!(
        telemetry2.counter("runner.tasks_resumed").get(),
        total as u64
    );
    assert_eq!(telemetry2.counter("runner.tasks_completed").get(), 0);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A campaign whose runs take hard faults mid-flight: a corner cut at
/// cycle 1 guarantees every report carries the unreachable-pairs gauge
/// (so checkpoints exercise the optional hard-fault block), and a
/// random tail of failures lands inside the simulated windows.
fn faulted_campaign() -> rlnoc_core::campaign::Campaign {
    use noc_fault::hardfault::{HardFault, HardFaultEntry, HardFaultSchedule};
    use noc_fault::topo::{Direction, Mesh};
    let mut campaign = tiny_campaign();
    let mut entries = vec![
        HardFaultEntry {
            cycle: 1,
            fault: HardFault::Link {
                node: 0,
                dir: Direction::East,
            },
        },
        HardFaultEntry {
            cycle: 1,
            fault: HardFault::Link {
                node: 0,
                dir: Direction::South,
            },
        },
    ];
    entries.extend(HardFaultSchedule::random(Mesh::new(4, 4), 2, 1, (500, 6_000), 23).entries);
    campaign.hard_faults = Some(std::sync::Arc::new(HardFaultSchedule::explicit(
        Mesh::new(4, 4),
        entries,
    )));
    campaign
}

#[test]
fn faulted_campaign_is_identical_across_worker_counts_and_resume() {
    let campaign = faulted_campaign();
    let uninterrupted = campaign.run();
    assert!(
        uninterrupted
            .reports
            .iter()
            .all(|r| r.unreachable_pairs > 0),
        "the corner cut must show in every report"
    );
    assert!(
        uninterrupted
            .reports
            .iter()
            .any(|r| r.hard_fault_events > 0),
        "some scheme must take fault events inside its measured window"
    );

    for jobs in [1, 4, 8] {
        let parallel = RunnerConfig {
            jobs,
            ..RunnerConfig::serial()
        }
        .run_campaign(&campaign);
        assert_eq!(
            parallel, uninterrupted,
            "{jobs}-worker faulted campaign must match the serial run"
        );
    }

    // Kill-and-resume: half the checkpoints exist, the rest re-run; the
    // stored half round-trips the optional hard-fault report block.
    let dir = temp_dir("faulted-resume");
    let total = uninterrupted.reports.len();
    let ckpt = CheckpointDir::open(&dir, campaign.fingerprint(), total).expect("open");
    for (index, report) in uninterrupted.reports.iter().enumerate().take(total / 2) {
        ckpt.store(index, report).expect("store");
    }
    for jobs in [1, 4, 8] {
        let resumed = RunnerConfig {
            jobs,
            snapshot_dir: Some(dir.clone()),
            resume: true,
            telemetry: Telemetry::disabled(),
            ..RunnerConfig::serial()
        }
        .run_campaign(&campaign);
        assert_eq!(
            resumed, uninterrupted,
            "{jobs}-worker resume of the faulted campaign changes nothing"
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The topology-zoo acceptance gate at radix: a 16×16 torus campaign
/// whose links and routers die mid-run must be byte-identical across
/// serial execution, a 4-worker pool (`RLNOC_JOBS=4`), the batched
/// lockstep engine (`RLNOC_BATCH=8`), and a kill-and-resume from
/// partial checkpoints — wrap links, date-line VCs, and up*/down*
/// recovery included.
#[test]
fn faulted_16x16_torus_campaign_is_deterministic_across_execution_modes() {
    use noc_fault::hardfault::HardFaultSchedule;
    use noc_fault::topo::Torus;
    use noc_sim::config::NocConfig;
    use rlnoc_core::ErrorControlScheme;

    let mut campaign = tiny_campaign();
    campaign.noc = NocConfig::builder().topology(Torus::new(16, 16)).build();
    campaign.schemes = vec![
        ErrorControlScheme::StaticCrc,
        ErrorControlScheme::ProposedRl,
    ];
    campaign.replicates = 2;
    campaign.pretrain_cycles = 2_000;
    campaign.measure_cycles = Some(2_000);
    campaign.hard_faults = Some(std::sync::Arc::new(HardFaultSchedule::random(
        Torus::new(16, 16),
        6,
        2,
        (500, 4_000),
        67,
    )));

    let serial = campaign.run();
    assert!(
        serial.reports.iter().any(|r| r.hard_fault_events > 0),
        "faults must strike inside some measured window"
    );

    let four_workers = RunnerConfig {
        jobs: 4,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(
        four_workers, serial,
        "RLNOC_JOBS=4 must match the serial torus campaign"
    );

    let batched = RunnerConfig {
        jobs: 4,
        batch: 8,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(
        batched, serial,
        "RLNOC_BATCH=8 must match the serial torus campaign"
    );

    // Kill-and-resume: half the checkpoints exist, the rest re-runs
    // through the batched engine.
    let dir = temp_dir("torus-16x16-resume");
    let total = serial.reports.len();
    let ckpt = CheckpointDir::open(&dir, campaign.fingerprint(), total).expect("open");
    for (index, report) in serial.reports.iter().enumerate().take(total / 2) {
        ckpt.store(index, report).expect("store");
    }
    let resumed = RunnerConfig {
        jobs: 4,
        batch: 8,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: Telemetry::disabled(),
    }
    .run_campaign(&campaign);
    assert_eq!(
        resumed, serial,
        "checkpoint-resume of the torus campaign changes nothing"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The degradation sweep's campaign shape — hard faults striking
/// mid-flight, replicated cells — through the batched engine: lockstep
/// lanes sharing one fault-reroute cache must stay byte-identical to
/// the serial run, and a batched resume from partial checkpoints must
/// change nothing.
#[test]
fn faulted_replicated_campaign_matches_serial_under_batching_and_resume() {
    use rlnoc_core::ErrorControlScheme;
    let mut campaign = faulted_campaign();
    campaign.replicates = 2;
    campaign.schemes.retain(|s| {
        matches!(
            s,
            ErrorControlScheme::StaticCrc | ErrorControlScheme::ProposedRl
        )
    });
    let serial = campaign.run();
    assert!(
        serial.reports.iter().any(|r| r.hard_fault_events > 0),
        "some lane must take fault events inside its measured window"
    );

    let batched = RunnerConfig {
        jobs: 4,
        batch: 8,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(
        batched, serial,
        "batched faulted replicate groups must match the serial run"
    );

    // Kill-and-resume with batching still on: stored lanes restore,
    // the remainder re-runs through the batched engine.
    let dir = temp_dir("faulted-batched-resume");
    let total = serial.reports.len();
    let ckpt = CheckpointDir::open(&dir, campaign.fingerprint(), total).expect("open");
    for (index, report) in serial.reports.iter().enumerate().take(total / 2) {
        ckpt.store(index, report).expect("store");
    }
    let resumed = RunnerConfig {
        jobs: 4,
        batch: 8,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: Telemetry::disabled(),
    }
    .run_campaign(&campaign);
    assert_eq!(
        resumed, serial,
        "batched resume of the faulted campaign changes nothing"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The BatchSim contract end to end: replicate lanes grouped into
/// lockstep batches (ragged tails included) produce byte-identical
/// campaign results, write the same per-lane checkpoints and policy
/// snapshots as scalar execution, and stay per-task in the telemetry
/// accounting.
#[test]
fn batched_replicate_groups_match_serial_and_checkpoint_per_lane() {
    use rlnoc_core::ErrorControlScheme;
    let mut campaign = tiny_campaign();
    campaign.replicates = 3;
    campaign.schemes.retain(|s| {
        matches!(
            s,
            ErrorControlScheme::StaticCrc | ErrorControlScheme::ProposedRl
        )
    });
    let serial = campaign.run();
    let total = serial.reports.len();
    assert_eq!(total, 6, "2 schemes x 1 workload x 3 replicates");

    // Width 2 over 3 replicates: one full group plus a ragged singleton
    // per cell, across worker threads.
    let ragged = RunnerConfig {
        jobs: 2,
        batch: 2,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(ragged, serial, "ragged batches must match the serial run");

    // Width 8 swallows each cell whole and persists per lane.
    let dir = temp_dir("batched-ckpt");
    let telemetry = Telemetry::enabled();
    let batched = RunnerConfig {
        jobs: 2,
        batch: 8,
        snapshot_dir: Some(dir.clone()),
        resume: false,
        telemetry: telemetry.clone(),
    }
    .run_campaign(&campaign);
    assert_eq!(batched, serial, "full-width batches must match serial");
    assert_eq!(
        telemetry.counter("runner.tasks_completed").get(),
        total as u64,
        "completion accounting stays per-lane under batching"
    );
    let namespace = dir.join(CheckpointDir::namespace(campaign.fingerprint()));
    for task in campaign.tasks() {
        if matches!(task.scheme, ErrorControlScheme::ProposedRl) {
            let policy = namespace.join(format!("task-{:04}.policy", task.index));
            assert!(
                policy.exists(),
                "every batched RL lane leaves its own policy snapshot"
            );
        }
    }

    // A scalar resume restores every batched checkpoint untouched.
    let telemetry2 = Telemetry::enabled();
    let resumed = RunnerConfig {
        jobs: 1,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: telemetry2.clone(),
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(resumed, serial, "resume from batched checkpoints");
    assert_eq!(
        telemetry2.counter("runner.tasks_resumed").get(),
        total as u64
    );
    assert_eq!(telemetry2.counter("runner.tasks_completed").get(), 0);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn rl_policy_snapshots_are_saved_and_reloadable() {
    let mut campaign = tiny_campaign();
    // Keep only the RL scheme: one task, one policy file.
    campaign
        .schemes
        .retain(|s| matches!(s, rlnoc_core::ErrorControlScheme::ProposedRl));
    let dir = temp_dir("policy");
    let result = RunnerConfig {
        jobs: 1,
        snapshot_dir: Some(dir.clone()),
        resume: false,
        telemetry: Telemetry::disabled(),
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(result.reports.len(), 1);

    let policy = noc_rl::PolicySnapshot::load_from_path(
        dir.join(CheckpointDir::namespace(campaign.fingerprint()))
            .join("task-0000.policy"),
    )
    .expect("valid");
    assert_eq!(policy.num_agents(), 16, "one agent per 4x4 mesh router");

    // The saved policy drives an inference-only re-run of the same cell.
    let task = &campaign.tasks()[0];
    let report = rlnoc_core::Experiment::builder()
        .scheme(rlnoc_core::ErrorControlScheme::ProposedRl)
        .workload(campaign.workloads[0].clone())
        .noc(campaign.noc)
        .seed(task.seed)
        .pretrain_cycles(campaign.pretrain_cycles)
        .warmup_cycles(campaign.warmup_cycles)
        .measure_cycles(campaign.measure_cycles.expect("quick campaign caps"))
        .drain_limit(campaign.drain_limit)
        .rl_policy(std::sync::Arc::new(policy))
        .build()
        .expect("valid inference configuration")
        .run();
    assert!(report.packets_delivered > 0);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn foreign_campaign_in_the_same_directory_no_longer_conflicts() {
    // Pre-namespacing this was a hard ManifestMismatch panic; now each
    // campaign owns a fingerprint-named subdirectory and they coexist.
    let campaign = tiny_campaign();
    let dir = temp_dir("mismatch");
    let foreign =
        CheckpointDir::open(&dir, campaign.fingerprint() ^ 1, 4).expect("claim with other fp");
    let result = RunnerConfig {
        jobs: 1,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        telemetry: Telemetry::disabled(),
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(result, campaign.run(), "foreign namespace is not disturbed");
    assert!(
        foreign.path().join("campaign.manifest").exists(),
        "the other campaign's manifest survives"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
