//! Golden-report regression wall: small campaigns rendered through the
//! stable [`render_report`] serialization and compared byte-for-byte
//! against committed fixtures — one per topology-zoo member that the
//! campaign layer must keep bit-stable.
//!
//! Any change to simulation semantics, report rendering, campaign
//! fingerprinting, or seed derivation shows up here as a byte diff.
//! To regenerate after an *intentional* change, run
//! `RLNOC_REGEN_GOLDEN=1 cargo test -p rlnoc-runner --test golden_reports`
//! and review the fixture diff like any other code change.

use noc_fault::hardfault::HardFaultSchedule;
use noc_sim::config::NocConfig;
use noc_sim::topology::{Mesh, Mesh3d, Topo, Torus};
use noc_testutil::tiny_campaign;
use rlnoc_core::campaign::Campaign;
use rlnoc_core::ErrorControlScheme;
use rlnoc_runner::render_report;
use std::path::PathBuf;

/// A tiny two-scheme campaign on `topo`, sized for seconds per run.
fn zoo_campaign(topo: impl Into<Topo>) -> Campaign {
    let mut campaign = tiny_campaign();
    campaign.noc = NocConfig::builder().topology(topo).build();
    campaign.schemes = vec![
        ErrorControlScheme::StaticCrc,
        ErrorControlScheme::ProposedRl,
    ];
    campaign
}

/// The full rendered form of a campaign: fingerprint header (pinning
/// topology encoding and seed derivation) plus every report in task
/// order through the checkpoint serialization.
fn render_campaign(campaign: &Campaign) -> String {
    let result = campaign.run();
    let mut out = format!("fingerprint {:016x}\n", campaign.fingerprint());
    for (index, report) in result.reports.iter().enumerate() {
        out.push_str(&format!("== task {index} ==\n"));
        out.push_str(&render_report(report));
    }
    out
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.report"))
}

fn check_golden(name: &str, campaign: &Campaign) {
    let rendered = render_campaign(campaign);
    let path = fixture_path(name);
    if std::env::var_os("RLNOC_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        std::fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "campaign `{name}` diverged from its golden fixture; if the change \
         is intentional, regenerate with RLNOC_REGEN_GOLDEN=1 and review the diff"
    );
}

/// The pre-zoo behavior pin: a plain 4×4 2D-mesh campaign must render
/// exactly as it did before topologies went behind the trait.
#[test]
fn mesh_campaign_matches_golden() {
    check_golden("mesh_4x4", &zoo_campaign(Mesh::new(4, 4)));
}

/// A 4×4 torus campaign with mid-run hard faults: exercises wrap-link
/// routing, date-line VC allocation, up*/down* recovery, and the
/// optional hard-fault report block, all bit-pinned.
#[test]
fn faulted_torus_campaign_matches_golden() {
    let mut campaign = zoo_campaign(Torus::new(4, 4));
    campaign.hard_faults = Some(std::sync::Arc::new(HardFaultSchedule::random(
        Torus::new(4, 4),
        3,
        1,
        (500, 6_000),
        41,
    )));
    check_golden("torus_4x4_faulted", &campaign);
}

/// A 4×2×2 3D-mesh campaign: pins XYZ routing and vertical-link
/// traffic through the full campaign stack.
#[test]
fn mesh3d_campaign_matches_golden() {
    check_golden("mesh3d_4x2x2", &zoo_campaign(Mesh3d::new(4, 2, 2)));
}
