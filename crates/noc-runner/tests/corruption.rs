//! Corruption edge cases for checkpoint and policy-snapshot files.
//!
//! A killed or bit-rotted snapshot directory must never panic the
//! runner or poison a resume: every damaged `task-NNNN.ckpt` is treated
//! as absent (the task silently re-runs), and every damaged
//! `task-NNNN.policy` is a clean parse error, never a wrong bank.
//! Truncation is exercised at **every byte offset** and bit flips at
//! **every bit position** — the CRC-32 trailers make both exhaustive
//! sweeps tractable guarantees rather than spot checks.

use noc_rl::qtable::QTable;
use noc_rl::snapshot::PolicySnapshot;
use noc_testutil::{temp_dir, tiny_campaign};
use rlnoc_core::experiment::{ErrorControlScheme, ExperimentReport};
use rlnoc_runner::{CheckpointDir, RunnerConfig};
use std::fs;

fn sample_report(seed: u64) -> ExperimentReport {
    ExperimentReport {
        scheme: ErrorControlScheme::ProposedRl,
        workload: "blackscholes".to_string(),
        seed,
        frequency_hz: 1.6e9,
        packets_injected: 1000,
        packets_delivered: 998,
        flits_delivered: 7984,
        avg_latency_cycles: 37.25,
        p99_latency_cycles: 143,
        execution_cycles: 60_000,
        drained: true,
        packet_retransmissions: 3,
        flit_retransmissions: 41,
        retransmitted_packets_equiv: 8.125,
        hop_nacks: 44,
        ecc_corrections: 12,
        crc_failures: 2,
        control_packets: 3,
        pre_retransmit_hits: 1,
        silent_corruptions: 0,
        dynamic_energy_j: 1.2345678901234e-3,
        static_energy_j: 4.4e-4,
        control_energy_j: 1.0000000000000002e-7,
        mode_histogram: [10, 20, 30, 40],
        mean_temperature_c: 67.33333333333333,
        max_temperature_c: 81.0,
        hard_fault_events: 0,
        reroute_events: 0,
        packets_lost_hard_fault: 0,
        packets_refused_unreachable: 0,
        unreachable_pairs: 0,
    }
}

#[test]
fn checkpoint_truncated_at_every_byte_offset_is_absent() {
    let dir = temp_dir("ckpt-truncate");
    let ckpt = CheckpointDir::open(&dir, 0xFEED, 1).expect("open");
    let report = sample_report(9);
    ckpt.store(0, &report).expect("store");
    let path = ckpt.path().join("task-0000.ckpt");
    let intact = fs::read(&path).expect("read");

    for offset in 0..intact.len() {
        fs::write(&path, &intact[..offset]).expect("write truncated");
        // Cutting only trailing newlines leaves the checksummed content
        // intact (the parser trims them); any shorter prefix is absent.
        if intact[offset..].iter().all(|&b| b == b'\n') {
            assert_eq!(ckpt.load(0), Some(report.clone()));
        } else {
            assert_eq!(
                ckpt.load(0),
                None,
                "checkpoint truncated to {offset}/{} bytes must read as absent",
                intact.len()
            );
        }
    }

    // The full file still loads, and a re-run (re-store) recovers from
    // any of the truncated states left behind.
    fs::write(&path, &intact).expect("restore");
    assert_eq!(ckpt.load(0), Some(report.clone()));
    fs::write(&path, &intact[..intact.len() / 3]).expect("truncate again");
    ckpt.store(0, &report).expect("re-store over corrupt file");
    assert_eq!(ckpt.load(0), Some(report));

    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn checkpoint_with_any_single_bit_flip_is_absent() {
    let dir = temp_dir("ckpt-bitflip");
    let ckpt = CheckpointDir::open(&dir, 0xBEEF, 1).expect("open");
    let report = sample_report(4);
    ckpt.store(0, &report).expect("store");
    let path = ckpt.path().join("task-0000.ckpt");
    let intact = fs::read(&path).expect("read");

    for byte in 0..intact.len() {
        for bit in 0..8 {
            let mut flipped = intact.clone();
            flipped[byte] ^= 1 << bit;
            fs::write(&path, &flipped).expect("write flipped");
            // A flip is either detected (absent) or semantically inert —
            // e.g. a case flip inside the hex checksum trailer. It must
            // never surface as a *different* report, and never panic.
            match ckpt.load(0) {
                None => {}
                Some(loaded) => assert_eq!(
                    loaded, report,
                    "bit {bit} of byte {byte} flipped: parse must not change the report"
                ),
            }
        }
    }
    fs::remove_dir_all(&dir).expect("cleanup");
}

fn sample_policy() -> PolicySnapshot {
    let tables = (0..3)
        .map(|i| {
            let mut q = QTable::new(40);
            q.update(i % 40, i % 4, 1.0 + i as f64, (i + 1) % 40, 0.5, 0.5);
            q.update(7, 2, -0.125, 3, 0.25, 0.5);
            q
        })
        .collect();
    PolicySnapshot::new(tables)
}

#[test]
fn policy_truncated_at_every_byte_offset_never_parses() {
    let snap = sample_policy();
    let mut intact = Vec::new();
    snap.write(&mut intact).expect("write");

    for offset in 0..intact.len() {
        if intact[offset..].iter().all(|&b| b == b'\n') {
            assert_eq!(
                PolicySnapshot::read(&intact[..offset]).expect("newline-only trim"),
                snap
            );
        } else {
            assert!(
                PolicySnapshot::read(&intact[..offset]).is_err(),
                "policy truncated to {offset}/{} bytes must not parse",
                intact.len()
            );
        }
    }
    assert_eq!(PolicySnapshot::read(&intact[..]).expect("full file"), snap);

    // Same through the file-based API the runner uses.
    let dir = temp_dir("policy-truncate");
    fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("task-0000.policy");
    snap.save_to_path(&path).expect("save");
    fs::write(&path, &intact[..intact.len() / 2]).expect("truncate");
    assert!(PolicySnapshot::load_from_path(&path).is_err());
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn policy_with_any_single_bit_flip_never_parses() {
    let snap = sample_policy();
    let mut intact = Vec::new();
    snap.write(&mut intact).expect("write");

    for byte in 0..intact.len() {
        for bit in 0..8 {
            let mut flipped = intact.clone();
            flipped[byte] ^= 1 << bit;
            match PolicySnapshot::read(&flipped[..]) {
                Err(_) => {}
                Ok(parsed) => assert_eq!(
                    parsed, snap,
                    "bit {bit} of byte {byte} flipped: parse must not change the bank"
                ),
            }
        }
    }
}

/// End-to-end: a resume over a snapshot directory whose files were
/// variously truncated, bit-flipped, and replaced with garbage produces
/// a campaign result identical to the uninterrupted run — the damaged
/// tasks re-run, the healthy checkpoints are reused, and a corrupted
/// policy snapshot is rewritten by the re-run.
#[test]
fn resume_with_corrupted_snapshot_dir_matches_uninterrupted_run() {
    let campaign = tiny_campaign();

    let dir = temp_dir("corruption-resume");
    let populate = RunnerConfig {
        jobs: 2,
        snapshot_dir: Some(dir.clone()),
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    let total = populate.reports.len();
    assert!(total >= 3, "campaign grid is large enough to corrupt");

    // Pick an RL task so the corruption also covers its policy file.
    let rl_index = populate
        .reports
        .iter()
        .position(|r| r.scheme == ErrorControlScheme::ProposedRl)
        .expect("campaign includes the RL scheme");
    let ns = dir.join(CheckpointDir::namespace(campaign.fingerprint()));
    let rl_ckpt = ns.join(format!("task-{rl_index:04}.ckpt"));
    let rl_policy = ns.join(format!("task-{rl_index:04}.policy"));
    assert!(rl_policy.exists(), "RL task persisted a policy snapshot");

    // Damage the RL task's checkpoint (bit flip) and policy (truncate)…
    let mut bytes = fs::read(&rl_ckpt).expect("read ckpt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&rl_ckpt, &bytes).expect("flip ckpt");
    let policy_bytes = fs::read(&rl_policy).expect("read policy");
    fs::write(&rl_policy, &policy_bytes[..policy_bytes.len() / 3]).expect("truncate policy");

    // …truncate another task's checkpoint, and garbage a third.
    let other = (rl_index + 1) % total;
    let other_path = ns.join(format!("task-{other:04}.ckpt"));
    let other_bytes = fs::read(&other_path).expect("read");
    fs::write(&other_path, &other_bytes[..other_bytes.len() / 4]).expect("truncate");
    let third = (rl_index + 2) % total;
    fs::write(
        ns.join(format!("task-{third:04}.ckpt")),
        b"not a checkpoint\n",
    )
    .expect("garbage");

    let resumed = RunnerConfig {
        jobs: 2,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    assert_eq!(
        resumed, populate,
        "corrupted checkpoints re-run without changing the campaign result"
    );

    // The re-run rewrote both damaged artifacts in valid form.
    let ckpt = CheckpointDir::open(&dir, campaign.fingerprint(), total).expect("reopen");
    assert_eq!(
        ckpt.load(rl_index),
        Some(populate.reports[rl_index].clone())
    );
    PolicySnapshot::load_from_path(&rl_policy).expect("re-run rewrote a valid policy snapshot");

    fs::remove_dir_all(&dir).expect("cleanup");
}
