//! Deterministic parallel execution of RL-NoC evaluation campaigns.
//!
//! A [`Campaign`](rlnoc_core::campaign::Campaign) is an ordered list of
//! independent tasks, each carrying a seed derived from the campaign
//! seed by [`rand::seed_stream`]. This crate executes that list across
//! worker threads and merges results **by task index**, so a parallel
//! run is byte-identical to a serial one — the property `runner_check`
//! enforces in CI.
//!
//! * [`pool`] — the worker pool: a shared injector queue drained by
//!   `std::thread::scope` workers, results ordered by item index.
//! * [`checkpoint`] — per-task checkpoint files plus a campaign
//!   manifest, enabling kill/resume with identical final reports.
//! * [`runner`] — [`RunnerConfig`]: ties the pool and checkpoints
//!   together and reads the `RLNOC_JOBS` / `SNAPSHOT_DIR` / `RESUME`
//!   environment knobs.
//!
//! # Example
//!
//! ```
//! use rlnoc_core::campaign::Campaign;
//! use rlnoc_runner::RunnerConfig;
//!
//! let mut campaign = Campaign::quick();
//! campaign.workloads.truncate(1);
//! campaign.pretrain_cycles = 2_000;
//! campaign.measure_cycles = Some(2_000);
//! let serial = campaign.run();
//! let parallel = RunnerConfig {
//!     jobs: 4,
//!     ..RunnerConfig::serial()
//! }
//! .run_campaign(&campaign);
//! assert_eq!(serial, parallel);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod pool;
pub mod runner;

pub use checkpoint::{parse_report, render_report, CheckpointDir, CheckpointError};
pub use pool::{Job, JobSource, ServicePool};
pub use runner::{execute_task, RunnerConfig};
