//! A minimal deterministic worker pool over indexed tasks.
//!
//! The pool executes a vector of items on `jobs` OS threads and returns
//! the results **in item order**, regardless of which worker finished
//! which item when. Determinism therefore reduces to each item's
//! computation being a pure function of the item itself — which
//! [`CampaignTask`](rlnoc_core::campaign::CampaignTask) guarantees by
//! carrying its own derived seed.
//!
//! The design is a shared injector queue (a mutex around a `VecDeque`)
//! drained by the workers, with results flowing back over an mpsc
//! channel tagged by item index. A mutex-guarded deque is deliberately
//! chosen over a lock-free deque: campaign tasks run for seconds, so
//! queue contention is unmeasurable and the simple structure keeps this
//! crate dependency-free (the build environment has no registry access).

use rlnoc_telemetry::Telemetry;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Runs `f` over every `(index, item)` pair on `jobs` worker threads and
/// returns the results in item order.
///
/// * `jobs == 0` is treated as 1.
/// * With `jobs == 1` the items run inline on the calling thread, in
///   order — the serial baseline the parallel runs must match.
/// * `telemetry` (when enabled) records a `runner.queue_depth` gauge,
///   a `runner.tasks_completed` counter, and one
///   `runner.worker.<i>.tasks` counter per worker.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated) or if an
/// internal channel disconnects early, which only happens on such a
/// panic.
pub fn run_indexed<T, R, F>(items: Vec<T>, jobs: usize, telemetry: &Telemetry, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = jobs.max(1);
    let total = items.len();
    let completed = telemetry.counter("runner.tasks_completed");
    if jobs == 1 || total <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(i, item);
                completed.add(1);
                r
            })
            .collect();
    }

    let queue_depth = telemetry.gauge("runner.queue_depth");
    queue_depth.set(total as f64);
    let injector: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    std::thread::scope(|scope| {
        for worker in 0..jobs.min(total) {
            let tx = tx.clone();
            let injector = &injector;
            let f = &f;
            let queue_depth = queue_depth.clone();
            let worker_tasks = telemetry.counter(&format!("runner.worker.{worker}.tasks"));
            scope.spawn(move || loop {
                let job = injector.lock().expect("injector poisoned").pop_front();
                let Some((index, item)) = job else { break };
                queue_depth.add(-1.0);
                let result = f(index, item);
                worker_tasks.add(1);
                if tx.send((index, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for _ in 0..total {
            let (index, result) = rx.recv().expect("worker pool ended early");
            completed.add(1);
            slots[index] = Some(result);
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect()
}

/// A unit of work pulled by a [`ServicePool`] worker.
pub type Job = Box<dyn FnOnce() + Send>;

/// Where a long-lived pool pulls its work from.
///
/// Unlike [`run_indexed`]'s one-shot item vector, a job source is
/// *submission-reentrant*: new work can be enqueued behind it at any
/// time (from other threads, from running jobs, from network handlers)
/// and idle workers pick it up. Implementations typically wrap a
/// mutex/condvar pair around a scheduling structure — `rlnoc-serve`
/// uses a deficit-round-robin queue over tenants.
pub trait JobSource: Send + Sync {
    /// Blocks until a job is available and returns it; returns `None`
    /// to tell the calling worker to exit (shutdown).
    fn next_job(&self) -> Option<Job>;
}

/// A long-lived worker pool draining a [`JobSource`].
///
/// Complements [`run_indexed`] for always-on services: the pool owns
/// its threads for the lifetime of the service rather than one campaign
/// invocation, so submissions can arrive while earlier work is still
/// running. Determinism is unchanged — jobs are pure functions of their
/// captured task, so pull order never leaks into results.
///
/// `telemetry` records the same instruments as [`run_indexed`]
/// (`runner.tasks_completed`, `runner.worker.<i>.tasks`).
#[derive(Debug)]
pub struct ServicePool {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ServicePool {
    /// Spawns `jobs` workers (0 is treated as 1) pulling from `source`
    /// until it returns `None`.
    pub fn start(jobs: usize, source: Arc<dyn JobSource>, telemetry: &Telemetry) -> Self {
        let jobs = jobs.max(1);
        let mut handles = Vec::with_capacity(jobs);
        for worker in 0..jobs {
            let source = Arc::clone(&source);
            let worker_tasks = telemetry.counter(&format!("runner.worker.{worker}.tasks"));
            let completed = telemetry.counter("runner.tasks_completed");
            let handle = std::thread::Builder::new()
                .name(format!("rlnoc-worker-{worker}"))
                .spawn(move || {
                    while let Some(job) = source.next_job() {
                        job();
                        worker_tasks.add(1);
                        completed.add(1);
                    }
                })
                .expect("spawn pool worker");
            handles.push(handle);
        }
        Self { handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every worker to observe shutdown (`None` from the
    /// source) and exit.
    ///
    /// # Panics
    ///
    /// Propagates a worker panic.
    pub fn join(self) {
        for handle in self.handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Condvar;

    /// A plain FIFO job source with a closed flag, for pool tests.
    struct FifoSource {
        state: Mutex<(VecDeque<Job>, bool)>,
        cv: Condvar,
    }

    impl FifoSource {
        fn new() -> Self {
            Self {
                state: Mutex::new((VecDeque::new(), false)),
                cv: Condvar::new(),
            }
        }

        fn push(&self, job: Job) {
            self.state.lock().expect("lock").0.push_back(job);
            self.cv.notify_one();
        }

        fn close(&self) {
            self.state.lock().expect("lock").1 = true;
            self.cv.notify_all();
        }
    }

    impl JobSource for FifoSource {
        fn next_job(&self) -> Option<Job> {
            let mut state = self.state.lock().expect("lock");
            loop {
                if let Some(job) = state.0.pop_front() {
                    return Some(job);
                }
                if state.1 {
                    return None;
                }
                state = self.cv.wait(state).expect("wait");
            }
        }
    }

    #[test]
    fn service_pool_runs_jobs_submitted_after_start() {
        let source = Arc::new(FifoSource::new());
        let telemetry = Telemetry::enabled();
        let pool = ServicePool::start(3, source.clone(), &telemetry);
        assert_eq!(pool.workers(), 3);
        let ran = Arc::new(AtomicUsize::new(0));
        // Submit in waves — the reentrancy run_indexed cannot offer.
        for _ in 0..2 {
            for _ in 0..10 {
                let ran = ran.clone();
                source.push(Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }));
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        source.close();
        pool.join();
        assert_eq!(ran.load(Ordering::SeqCst), 20);
        assert_eq!(telemetry.counter("runner.tasks_completed").get(), 20);
    }

    #[test]
    fn service_pool_join_returns_when_source_closes_empty() {
        let source = Arc::new(FifoSource::new());
        let pool = ServicePool::start(2, source.clone(), &Telemetry::disabled());
        source.close();
        pool.join();
    }

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 2, 4, 7] {
            let out = run_indexed(items.clone(), jobs, &Telemetry::disabled(), |i, item| {
                assert_eq!(i, item);
                // Stagger finishing order: later items finish earlier.
                std::thread::sleep(std::time::Duration::from_micros((64 - item as u64) * 10));
                item * 3
            });
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(
            (0..100).collect::<Vec<i32>>(),
            8,
            &Telemetry::disabled(),
            |_, item| {
                counter.fetch_add(1, Ordering::SeqCst);
                item
            },
        );
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = run_indexed(vec![10, 20], 16, &Telemetry::disabled(), |_, x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<i32> = run_indexed(Vec::<i32>::new(), 4, &Telemetry::disabled(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_jobs_behaves_as_serial() {
        let out = run_indexed(vec![1, 2, 3], 0, &Telemetry::disabled(), |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn telemetry_counts_tasks_and_drains_queue() {
        let telemetry = Telemetry::enabled();
        let _ = run_indexed((0..20).collect::<Vec<_>>(), 4, &telemetry, |_, x| x);
        assert_eq!(telemetry.counter("runner.tasks_completed").get(), 20);
        let per_worker: u64 = (0..4)
            .map(|w| telemetry.counter(&format!("runner.worker.{w}.tasks")).get())
            .sum();
        assert_eq!(per_worker, 20, "every task attributed to some worker");
        assert_eq!(
            telemetry.gauge("runner.queue_depth").get(),
            0.0,
            "queue fully drained"
        );
    }

    #[test]
    fn parallel_matches_serial_for_seeded_work() {
        // The property the whole crate rests on: order of execution does
        // not leak into results when each item derives its own stream.
        let items: Vec<u64> = (0..40).collect();
        let work = |_: usize, i: u64| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(rand::seed_stream(99, i));
            (0..100).map(|_| rng.gen_range(0..1000u64)).sum::<u64>()
        };
        let serial = run_indexed(items.clone(), 1, &Telemetry::disabled(), work);
        let parallel = run_indexed(items, 6, &Telemetry::disabled(), work);
        assert_eq!(serial, parallel);
    }
}
