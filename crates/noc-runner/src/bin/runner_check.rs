//! CI determinism check for the parallel campaign runner.
//!
//! Runs a reduced campaign three ways and demands identical results:
//!
//! 1. serially through `Campaign::run`,
//! 2. in parallel through the runner (`RLNOC_JOBS` workers, default 2,
//!    honoring `RLNOC_BATCH`),
//! 3. batched through `BatchSim` (8 lockstep lanes per replicate
//!    group),
//! 4. resumed from a half-populated checkpoint directory (simulating a
//!    campaign killed midway).
//!
//! Exits non-zero on any mismatch, so CI fails when a change breaks the
//! byte-identical parallel/serial contract or checkpoint round-tripping.

use rlnoc_core::campaign::Campaign;
use rlnoc_core::WorkloadProfile;
use rlnoc_runner::{CheckpointDir, RunnerConfig};
use rlnoc_telemetry::Telemetry;
use std::path::PathBuf;
use std::process::ExitCode;

fn check_campaign() -> Campaign {
    let mut campaign = Campaign::quick();
    campaign.workloads = vec![WorkloadProfile::blackscholes(), WorkloadProfile::canneal()];
    campaign.pretrain_cycles = 4_000;
    campaign.measure_cycles = Some(4_000);
    campaign
}

fn main() -> ExitCode {
    let campaign = check_campaign();
    let env = RunnerConfig::from_env();
    let jobs = env.jobs.max(2);
    let batch = env.batch;
    println!(
        "runner_check: {} tasks, {} workers, batch {}",
        campaign.tasks().len(),
        jobs,
        batch
    );

    let serial = campaign.run();

    let telemetry = Telemetry::enabled();
    let parallel = RunnerConfig {
        jobs,
        snapshot_dir: None,
        resume: false,
        batch,
        telemetry: telemetry.clone(),
    }
    .run_campaign(&campaign);
    if parallel != serial {
        eprintln!("FAIL: parallel ({jobs} workers, batch {batch}) result differs from serial run");
        return ExitCode::FAILURE;
    }
    println!(
        "parallel == serial ({} tasks completed)",
        telemetry.counter("runner.tasks_completed").get()
    );

    // BatchSim leg: replicate groups run as lockstep lanes, whatever
    // the environment asked for.
    let batched = RunnerConfig {
        jobs,
        batch: 8,
        ..RunnerConfig::serial()
    }
    .run_campaign(&campaign);
    if batched != serial {
        eprintln!("FAIL: batched (8-lane) result differs from serial run");
        return ExitCode::FAILURE;
    }
    println!("batched == serial (8-lane lockstep groups)");

    // Kill/resume: pre-populate half the checkpoints from the serial
    // run, then resume — only the other half may execute, and the merged
    // result must still match.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("rlnoc-runner-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let total = serial.reports.len();
    let ckpt = match CheckpointDir::open(&dir, campaign.fingerprint(), total) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("FAIL: cannot open checkpoint dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (index, report) in serial.reports.iter().enumerate().take(total / 2) {
        if let Err(e) = ckpt.store(index, report) {
            eprintln!("FAIL: cannot store checkpoint {index}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let resume_telemetry = Telemetry::enabled();
    let resumed = RunnerConfig {
        jobs,
        snapshot_dir: Some(dir.clone()),
        resume: true,
        batch,
        telemetry: resume_telemetry.clone(),
    }
    .run_campaign(&campaign);
    let _ = std::fs::remove_dir_all(&dir);
    if resumed != serial {
        eprintln!("FAIL: resumed result differs from uninterrupted serial run");
        return ExitCode::FAILURE;
    }
    let restored = resume_telemetry.counter("runner.tasks_resumed").get();
    let executed = resume_telemetry.counter("runner.tasks_completed").get();
    if restored != (total / 2) as u64 || executed != (total - total / 2) as u64 {
        eprintln!(
            "FAIL: resume accounting off: {restored} restored, {executed} executed, {total} total"
        );
        return ExitCode::FAILURE;
    }
    println!("resume == serial ({restored} restored, {executed} executed)");
    println!("runner_check: OK");
    ExitCode::SUCCESS
}
