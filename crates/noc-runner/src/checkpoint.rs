//! Mid-flight campaign checkpointing.
//!
//! Each completed [`CampaignTask`](rlnoc_core::campaign::CampaignTask)
//! is persisted as one `task-NNNN.ckpt` file in a per-campaign
//! subdirectory `c-<fingerprint:016x>/` of the snapshot directory, next
//! to a `campaign.manifest` binding that subdirectory to a specific
//! campaign configuration (via [`Campaign::fingerprint`]). Namespacing
//! by fingerprint lets any number of campaigns share one snapshot
//! directory without clobbering each other; directories claimed by the
//! original flat layout keep working unchanged. A killed run restarted
//! with `RESUME=1` reloads every valid checkpoint and executes only the
//! missing tasks; because task results are pure functions of the task,
//! the resumed campaign report is identical to an uninterrupted one.
//!
//! The workspace's `serde` is an offline API shim (marker traits only),
//! so the format is hand-rolled, line-oriented text in the same family
//! as `QTable::save` and the policy snapshot format:
//!
//! ```text
//! rlnoc-checkpoint v1
//! task 3
//! scheme RL
//! workload blackscholes
//! seed 1234
//! ... one `key value` line per report field ...
//! end
//! crc32 1a2b3c4d
//! ```
//!
//! Floats are written with Rust's shortest round-trip formatting, so a
//! reloaded report is bit-identical to the stored one. The CRC-32
//! trailer (computed with the in-tree `noc-coding` implementation)
//! covers everything above it; a checkpoint that fails the checksum, or
//! any structural check, is treated as absent and its task simply
//! re-runs — a truncated file from a kill mid-write never poisons a
//! resume. Writes go through a temp file and an atomic rename for the
//! same reason.
//!
//! [`Campaign::fingerprint`]: rlnoc_core::campaign::Campaign::fingerprint

use noc_coding::crc::Crc32;
use rlnoc_core::experiment::{ErrorControlScheme, ExperimentReport};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &str = "rlnoc-checkpoint v1";
const MANIFEST_MAGIC: &str = "rlnoc-campaign v1";

/// Why a checkpoint file or manifest was rejected.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The manifest belongs to a different campaign configuration.
    ManifestMismatch {
        /// Fingerprint recorded in the directory.
        found: u64,
        /// Fingerprint of the campaign being run.
        expected: u64,
    },
    /// A checkpoint file failed its checksum or structure checks.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::ManifestMismatch { found, expected } => write!(
                f,
                "snapshot directory belongs to a different campaign \
                 (manifest fingerprint {found:016x}, campaign {expected:016x})"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

fn scheme_name(scheme: ErrorControlScheme) -> &'static str {
    match scheme {
        ErrorControlScheme::StaticCrc => "CRC",
        ErrorControlScheme::StaticArqEcc => "ARQ+ECC",
        ErrorControlScheme::DecisionTree => "DT",
        ErrorControlScheme::ProposedRl => "RL",
    }
}

fn scheme_from_name(name: &str) -> Option<ErrorControlScheme> {
    match name {
        "CRC" => Some(ErrorControlScheme::StaticCrc),
        "ARQ+ECC" => Some(ErrorControlScheme::StaticArqEcc),
        "DT" => Some(ErrorControlScheme::DecisionTree),
        "RL" => Some(ErrorControlScheme::ProposedRl),
        _ => None,
    }
}

/// Renders a report as the canonical `key value` line format used by
/// checkpoint bodies (no magic, no checksum).
///
/// This is the stable serialization of an [`ExperimentReport`]: floats
/// use Rust's shortest round-trip formatting, so equal reports render
/// to equal bytes and rendered reports parse back bit-identically via
/// [`parse_report`]. The golden-report regression tests compare this
/// rendering byte-for-byte against committed fixtures.
pub fn render_report(report: &ExperimentReport) -> String {
    let mut s = String::new();
    let r = report;
    writeln!(s, "scheme {}", scheme_name(r.scheme)).expect("write to string");
    writeln!(s, "workload {}", r.workload).expect("write to string");
    writeln!(s, "seed {}", r.seed).expect("write to string");
    writeln!(s, "frequency_hz {}", r.frequency_hz).expect("write to string");
    writeln!(s, "packets_injected {}", r.packets_injected).expect("write to string");
    writeln!(s, "packets_delivered {}", r.packets_delivered).expect("write to string");
    writeln!(s, "flits_delivered {}", r.flits_delivered).expect("write to string");
    writeln!(s, "avg_latency_cycles {}", r.avg_latency_cycles).expect("write to string");
    writeln!(s, "p99_latency_cycles {}", r.p99_latency_cycles).expect("write to string");
    writeln!(s, "execution_cycles {}", r.execution_cycles).expect("write to string");
    writeln!(s, "drained {}", r.drained).expect("write to string");
    writeln!(s, "packet_retransmissions {}", r.packet_retransmissions).expect("write to string");
    writeln!(s, "flit_retransmissions {}", r.flit_retransmissions).expect("write to string");
    writeln!(
        s,
        "retransmitted_packets_equiv {}",
        r.retransmitted_packets_equiv
    )
    .expect("write to string");
    writeln!(s, "hop_nacks {}", r.hop_nacks).expect("write to string");
    writeln!(s, "ecc_corrections {}", r.ecc_corrections).expect("write to string");
    writeln!(s, "crc_failures {}", r.crc_failures).expect("write to string");
    writeln!(s, "control_packets {}", r.control_packets).expect("write to string");
    writeln!(s, "pre_retransmit_hits {}", r.pre_retransmit_hits).expect("write to string");
    writeln!(s, "silent_corruptions {}", r.silent_corruptions).expect("write to string");
    writeln!(s, "dynamic_energy_j {}", r.dynamic_energy_j).expect("write to string");
    writeln!(s, "static_energy_j {}", r.static_energy_j).expect("write to string");
    writeln!(s, "control_energy_j {}", r.control_energy_j).expect("write to string");
    writeln!(
        s,
        "mode_histogram {} {} {} {}",
        r.mode_histogram[0], r.mode_histogram[1], r.mode_histogram[2], r.mode_histogram[3]
    )
    .expect("write to string");
    writeln!(s, "mean_temperature_c {}", r.mean_temperature_c).expect("write to string");
    writeln!(s, "max_temperature_c {}", r.max_temperature_c).expect("write to string");
    // Hard-fault counters render only when at least one is nonzero, so
    // reports from fault-free campaigns stay byte-identical to the
    // pre-hard-fault fixture format.
    let any_fault = r.hard_fault_events != 0
        || r.reroute_events != 0
        || r.packets_lost_hard_fault != 0
        || r.packets_refused_unreachable != 0
        || r.unreachable_pairs != 0;
    if any_fault {
        writeln!(s, "hard_fault_events {}", r.hard_fault_events).expect("write to string");
        writeln!(s, "reroute_events {}", r.reroute_events).expect("write to string");
        writeln!(s, "packets_lost_hard_fault {}", r.packets_lost_hard_fault)
            .expect("write to string");
        writeln!(
            s,
            "packets_refused_unreachable {}",
            r.packets_refused_unreachable
        )
        .expect("write to string");
        writeln!(s, "unreachable_pairs {}", r.unreachable_pairs).expect("write to string");
    }
    s
}

struct FieldParser<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> FieldParser<'a> {
    fn next_field(&mut self, key: &str) -> Result<&'a str, CheckpointError> {
        let line = self
            .lines
            .next()
            .ok_or_else(|| CheckpointError::Corrupt(format!("missing field `{key}`")))?;
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| CheckpointError::Corrupt(format!("expected `{key} ...`, got `{line}`")))
    }

    fn parse<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, CheckpointError> {
        self.next_field(key)?
            .parse()
            .map_err(|_| CheckpointError::Corrupt(format!("unparsable value for `{key}`")))
    }
}

/// Parses a [`render_report`] body (terminated by an `end` line) back
/// into a report.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] on any missing, reordered, or
/// unparsable field.
pub fn parse_report(body: &str) -> Result<ExperimentReport, CheckpointError> {
    let mut p = FieldParser {
        lines: body.lines(),
    };
    let scheme_raw = p.next_field("scheme")?;
    let scheme = scheme_from_name(scheme_raw)
        .ok_or_else(|| CheckpointError::Corrupt(format!("unknown scheme `{scheme_raw}`")))?;
    let workload = p.next_field("workload")?.to_string();
    let mut report = ExperimentReport {
        scheme,
        workload,
        seed: p.parse("seed")?,
        frequency_hz: p.parse("frequency_hz")?,
        packets_injected: p.parse("packets_injected")?,
        packets_delivered: p.parse("packets_delivered")?,
        flits_delivered: p.parse("flits_delivered")?,
        avg_latency_cycles: p.parse("avg_latency_cycles")?,
        p99_latency_cycles: p.parse("p99_latency_cycles")?,
        execution_cycles: p.parse("execution_cycles")?,
        drained: p.parse("drained")?,
        packet_retransmissions: p.parse("packet_retransmissions")?,
        flit_retransmissions: p.parse("flit_retransmissions")?,
        retransmitted_packets_equiv: p.parse("retransmitted_packets_equiv")?,
        hop_nacks: p.parse("hop_nacks")?,
        ecc_corrections: p.parse("ecc_corrections")?,
        crc_failures: p.parse("crc_failures")?,
        control_packets: p.parse("control_packets")?,
        pre_retransmit_hits: p.parse("pre_retransmit_hits")?,
        silent_corruptions: p.parse("silent_corruptions")?,
        dynamic_energy_j: p.parse("dynamic_energy_j")?,
        static_energy_j: p.parse("static_energy_j")?,
        control_energy_j: p.parse("control_energy_j")?,
        mode_histogram: {
            let raw = p.next_field("mode_histogram")?;
            let mut hist = [0u64; 4];
            let mut parts = raw.split_whitespace();
            for slot in &mut hist {
                *slot = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CheckpointError::Corrupt("bad mode_histogram".into()))?;
            }
            if parts.next().is_some() {
                return Err(CheckpointError::Corrupt("bad mode_histogram".into()));
            }
            hist
        },
        mean_temperature_c: p.parse("mean_temperature_c")?,
        max_temperature_c: p.parse("max_temperature_c")?,
        hard_fault_events: 0,
        reroute_events: 0,
        packets_lost_hard_fault: 0,
        packets_refused_unreachable: 0,
        unreachable_pairs: 0,
    };
    match p.lines.next() {
        Some("end") => Ok(report),
        Some(line) if line.starts_with("hard_fault_events ") => {
            // The optional hard-fault block: all five counters, in
            // order, present only when the run saw faults.
            report.hard_fault_events =
                line["hard_fault_events ".len()..].parse().map_err(|_| {
                    CheckpointError::Corrupt("unparsable value for `hard_fault_events`".into())
                })?;
            report.reroute_events = p.parse("reroute_events")?;
            report.packets_lost_hard_fault = p.parse("packets_lost_hard_fault")?;
            report.packets_refused_unreachable = p.parse("packets_refused_unreachable")?;
            report.unreachable_pairs = p.parse("unreachable_pairs")?;
            match p.lines.next() {
                Some("end") => Ok(report),
                other => Err(CheckpointError::Corrupt(format!(
                    "expected `end`, got {other:?}"
                ))),
            }
        }
        other => Err(CheckpointError::Corrupt(format!(
            "expected `end`, got {other:?}"
        ))),
    }
}

fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// A snapshot directory bound to one campaign configuration.
#[derive(Debug)]
pub struct CheckpointDir {
    dir: PathBuf,
    fingerprint: u64,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint set for a campaign with
    /// the given fingerprint and task count under `dir`.
    ///
    /// Campaigns are namespaced by fingerprint: checkpoints live in
    /// `dir/c-<fingerprint:016x>/` next to that campaign's own
    /// `campaign.manifest`, so any number of campaigns can share one
    /// snapshot directory without clobbering each other. One compat
    /// path remains: a directory claimed by the pre-namespacing flat
    /// layout (a `campaign.manifest` directly in `dir`) whose
    /// fingerprint matches keeps being used in place; a flat manifest
    /// for a *different* campaign is left untouched and the new
    /// campaign gets its namespaced subdirectory beside it.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ManifestMismatch`] when the namespaced
    /// subdirectory exists but records a different fingerprint (which
    /// can only mean tampering, since the directory name encodes the
    /// fingerprint), [`CheckpointError::Corrupt`] for an unreadable
    /// manifest, or an I/O error.
    pub fn open(dir: &Path, fingerprint: u64, total_tasks: usize) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir)?;
        // Compat: honor a matching pre-namespacing flat layout in place.
        match fs::read_to_string(dir.join("campaign.manifest")) {
            Ok(existing) => {
                if parse_manifest(&existing)? == fingerprint {
                    return Ok(Self {
                        dir: dir.to_path_buf(),
                        fingerprint,
                    });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let ns = dir.join(Self::namespace(fingerprint));
        fs::create_dir_all(&ns)?;
        let manifest = ns.join("campaign.manifest");
        match fs::read_to_string(&manifest) {
            Ok(existing) => {
                let found = parse_manifest(&existing)?;
                if found != fingerprint {
                    return Err(CheckpointError::ManifestMismatch {
                        found,
                        expected: fingerprint,
                    });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let mut body = String::new();
                writeln!(body, "{MANIFEST_MAGIC}").expect("write to string");
                writeln!(body, "fingerprint {fingerprint:016x}").expect("write to string");
                writeln!(body, "tasks {total_tasks}").expect("write to string");
                atomic_write(&manifest, &body)?;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(Self {
            dir: ns,
            fingerprint,
        })
    }

    /// The per-campaign subdirectory name for a fingerprint —
    /// `c-<fingerprint:016x>`, which is also the campaign id used by
    /// `rlnoc-serve`.
    pub fn namespace(fingerprint: u64) -> String {
        format!("c-{fingerprint:016x}")
    }

    /// The directory this checkpoint set lives in.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The campaign fingerprint the directory is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn task_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("task-{index:04}.ckpt"))
    }

    /// Persists the finished report for task `index` (atomic write).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, index: usize, report: &ExperimentReport) -> Result<(), CheckpointError> {
        let mut body = String::new();
        writeln!(body, "{CKPT_MAGIC}").expect("write to string");
        writeln!(body, "task {index}").expect("write to string");
        writeln!(body, "fingerprint {:016x}", self.fingerprint).expect("write to string");
        body.push_str(&render_report(report));
        body.push_str("end\n");
        let checksum = Crc32::new().checksum(body.as_bytes());
        writeln!(body, "crc32 {checksum:08x}").expect("write to string");
        atomic_write(&self.task_path(index), &body)?;
        Ok(())
    }

    /// Loads the checkpoint for task `index`, if present and valid.
    ///
    /// Missing, truncated, checksum-failing, or foreign checkpoints all
    /// return `None` — the caller just re-runs the task.
    pub fn load(&self, index: usize) -> Option<ExperimentReport> {
        let text = fs::read_to_string(self.task_path(index)).ok()?;
        self.parse_checkpoint(&text, index).ok()
    }

    fn parse_checkpoint(
        &self,
        text: &str,
        index: usize,
    ) -> Result<ExperimentReport, CheckpointError> {
        // Split off the `crc32 ...` trailer (the final non-empty line).
        let trimmed = text.trim_end_matches('\n');
        let (body, trailer) = trimmed
            .rsplit_once('\n')
            .ok_or_else(|| CheckpointError::Corrupt("no checksum trailer".into()))?;
        let body = format!("{body}\n");
        let stated: u32 = trailer
            .strip_prefix("crc32 ")
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .ok_or_else(|| CheckpointError::Corrupt("bad checksum trailer".into()))?;
        let actual = Crc32::new().checksum(body.as_bytes());
        if stated != actual {
            return Err(CheckpointError::Corrupt(format!(
                "checksum mismatch: stated {stated:08x}, computed {actual:08x}"
            )));
        }
        let mut p = FieldParser {
            lines: body.lines(),
        };
        let magic = p
            .lines
            .next()
            .ok_or_else(|| CheckpointError::Corrupt("empty file".into()))?;
        if magic != CKPT_MAGIC {
            return Err(CheckpointError::Corrupt(format!("bad magic `{magic}`")));
        }
        let stated_index: usize = p.parse("task")?;
        if stated_index != index {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint is for task {stated_index}, expected {index}"
            )));
        }
        let stated_fp = u64::from_str_radix(p.next_field("fingerprint")?, 16)
            .map_err(|_| CheckpointError::Corrupt("bad fingerprint".into()))?;
        if stated_fp != self.fingerprint {
            return Err(CheckpointError::Corrupt(
                "checkpoint from a different campaign".into(),
            ));
        }
        let rest: Vec<&str> = p.lines.collect();
        parse_report(&rest.join("\n"))
    }
}

fn parse_manifest(text: &str) -> Result<u64, CheckpointError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(MANIFEST_MAGIC) => {}
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "bad manifest header {other:?}"
            )))
        }
    }
    let fp_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Corrupt("manifest missing fingerprint".into()))?;
    fp_line
        .strip_prefix("fingerprint ")
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| CheckpointError::Corrupt("bad manifest fingerprint".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(seed: u64) -> ExperimentReport {
        ExperimentReport {
            scheme: ErrorControlScheme::ProposedRl,
            workload: "blackscholes".to_string(),
            seed,
            frequency_hz: 1.6e9,
            packets_injected: 1000,
            packets_delivered: 998,
            flits_delivered: 7984,
            avg_latency_cycles: 37.25,
            p99_latency_cycles: 143,
            execution_cycles: 60_000,
            drained: true,
            packet_retransmissions: 3,
            flit_retransmissions: 41,
            retransmitted_packets_equiv: 8.125,
            hop_nacks: 44,
            ecc_corrections: 12,
            crc_failures: 2,
            control_packets: 3,
            pre_retransmit_hits: 1,
            silent_corruptions: 0,
            dynamic_energy_j: 1.2345678901234e-3,
            static_energy_j: 4.4e-4,
            control_energy_j: 1.0000000000000002e-7,
            mode_histogram: [10, 20, 30, 40],
            mean_temperature_c: 67.33333333333333,
            max_temperature_c: 81.0,
            hard_fault_events: 0,
            reroute_events: 0,
            packets_lost_hard_fault: 0,
            packets_refused_unreachable: 0,
            unreachable_pairs: 0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rlnoc-ckpt-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn report_round_trips_bit_exactly() {
        let report = sample_report(7);
        let parsed = parse_report(&format!("{}end\n", render_report(&report))).expect("parses");
        assert_eq!(parsed, report, "floats survive shortest round-trip text");
    }

    #[test]
    fn fault_free_report_renders_without_hard_fault_lines() {
        let rendered = render_report(&sample_report(7));
        assert!(
            !rendered.contains("hard_fault_events"),
            "zero-fault reports must stay byte-identical to the \
             pre-hard-fault format:\n{rendered}"
        );
    }

    #[test]
    fn faulted_report_round_trips_through_the_optional_block() {
        let mut report = sample_report(7);
        report.hard_fault_events = 3;
        report.reroute_events = 2;
        report.packets_lost_hard_fault = 17;
        report.packets_refused_unreachable = 5;
        report.unreachable_pairs = 12;
        let rendered = render_report(&report);
        assert!(rendered.contains("hard_fault_events 3"));
        let parsed = parse_report(&format!("{rendered}end\n")).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn truncated_hard_fault_block_is_corrupt() {
        let mut report = sample_report(7);
        report.hard_fault_events = 1;
        report.unreachable_pairs = 4;
        let rendered = render_report(&report);
        // Drop the last line of the block (`unreachable_pairs`).
        let cut = rendered
            .lines()
            .filter(|l| !l.starts_with("unreachable_pairs"))
            .map(|l| format!("{l}\n"))
            .collect::<String>();
        assert!(
            parse_report(&format!("{cut}end\n")).is_err(),
            "a partial hard-fault block must not parse"
        );
    }

    #[test]
    fn store_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let ckpt = CheckpointDir::open(&dir, 0xABCD, 4).expect("open");
        let report = sample_report(11);
        ckpt.store(2, &report).expect("store");
        assert_eq!(ckpt.load(2), Some(report));
        assert_eq!(ckpt.load(1), None, "unstored index is absent");
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_checkpoints_are_treated_as_absent() {
        let dir = temp_dir("corrupt");
        let ckpt = CheckpointDir::open(&dir, 1, 4).expect("open");
        ckpt.store(0, &sample_report(1)).expect("store");
        let path = ckpt.path().join("task-0000.ckpt");

        // Bit flip in the body.
        let mut text = fs::read_to_string(&path).expect("read");
        text = text.replacen("packets_injected 1000", "packets_injected 1001", 1);
        fs::write(&path, &text).expect("write");
        assert_eq!(ckpt.load(0), None, "checksum catches the flip");

        // Truncation (kill mid-write without the atomic rename).
        let full = fs::read_to_string(&path).expect("read");
        fs::write(&path, &full[..full.len() / 2]).expect("write");
        assert_eq!(ckpt.load(0), None, "truncated file rejected");

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn checkpoint_for_wrong_task_or_campaign_is_rejected() {
        let dir = temp_dir("foreign");
        let ckpt = CheckpointDir::open(&dir, 5, 4).expect("open");
        ckpt.store(0, &sample_report(1)).expect("store");
        // Same bytes presented as a different index: rejected.
        fs::copy(
            ckpt.path().join("task-0000.ckpt"),
            ckpt.path().join("task-0001.ckpt"),
        )
        .expect("copy");
        assert_eq!(ckpt.load(1), None);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn campaigns_are_namespaced_and_never_clobber_each_other() {
        let dir = temp_dir("manifest");
        let first = CheckpointDir::open(&dir, 42, 8).expect("claims fresh namespace");
        assert_eq!(first.path(), dir.join("c-000000000000002a"));
        let reopened = CheckpointDir::open(&dir, 42, 8).expect("same campaign reopens");
        assert_eq!(reopened.path(), first.path());

        // A different campaign gets its own namespace beside the first.
        let second = CheckpointDir::open(&dir, 43, 8).expect("second campaign coexists");
        assert_ne!(second.path(), first.path());
        first.store(0, &sample_report(1)).expect("store");
        second.store(0, &sample_report(2)).expect("store");
        assert_eq!(first.load(0).map(|r| r.seed), Some(1));
        assert_eq!(second.load(0).map(|r| r.seed), Some(2), "no clobbering");
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn tampered_namespace_manifest_is_a_mismatch() {
        let dir = temp_dir("tamper");
        let ckpt = CheckpointDir::open(&dir, 42, 8).expect("open");
        let manifest = ckpt.path().join("campaign.manifest");
        let text = fs::read_to_string(&manifest).expect("read");
        fs::write(
            &manifest,
            text.replace(
                "fingerprint 000000000000002a",
                "fingerprint 000000000000002b",
            ),
        )
        .expect("write");
        match CheckpointDir::open(&dir, 42, 8) {
            Err(CheckpointError::ManifestMismatch { found, expected }) => {
                assert_eq!((found, expected), (0x2b, 42));
            }
            other => panic!("expected manifest mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn flat_legacy_layout_keeps_working_in_place() {
        let dir = temp_dir("flat");
        fs::create_dir_all(&dir).expect("mkdir");
        // A directory claimed by the pre-namespacing layout.
        let mut body = String::new();
        writeln!(body, "{MANIFEST_MAGIC}").expect("write to string");
        writeln!(body, "fingerprint {:016x}", 42).expect("write to string");
        writeln!(body, "tasks 8").expect("write to string");
        fs::write(dir.join("campaign.manifest"), &body).expect("write");

        let flat = CheckpointDir::open(&dir, 42, 8).expect("compat path");
        assert_eq!(flat.path(), dir, "matching flat layout is used in place");
        flat.store(3, &sample_report(9)).expect("store");
        assert!(dir.join("task-0003.ckpt").exists());

        // A different campaign does not disturb the flat tenant.
        let other = CheckpointDir::open(&dir, 43, 8).expect("namespaced beside it");
        assert_eq!(other.path(), dir.join("c-000000000000002b"));
        assert_eq!(flat.load(3).map(|r| r.seed), Some(9));
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn all_schemes_round_trip() {
        for scheme in ErrorControlScheme::ALL {
            let mut r = sample_report(3);
            r.scheme = scheme;
            let parsed = parse_report(&format!("{}end\n", render_report(&r))).expect("parses");
            assert_eq!(parsed.scheme, scheme);
        }
    }

    #[test]
    fn extreme_floats_round_trip() {
        let mut r = sample_report(1);
        r.avg_latency_cycles = f64::MIN_POSITIVE;
        r.dynamic_energy_j = 1.0 / 3.0;
        r.mean_temperature_c = 1e300;
        let parsed = parse_report(&format!("{}end\n", render_report(&r))).expect("parses");
        assert_eq!(parsed, r);
    }
}
