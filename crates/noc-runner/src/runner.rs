//! The campaign runner: deterministic parallel execution with optional
//! checkpoint/resume and policy snapshots.
//!
//! [`RunnerConfig::run_campaign`] executes the exact task list that
//! [`Campaign::run`] would run serially, across `jobs` worker threads,
//! and merges the reports by task index — so the returned
//! [`CampaignResult`] is byte-identical whatever the worker count.
//!
//! With a snapshot directory configured, every finished task is
//! checkpointed ([`crate::checkpoint`]) and every finished RL task's
//! learned policy is saved as a versioned, checksummed
//! [`PolicySnapshot`] (`task-NNNN.policy`) for later train-once /
//! eval-many runs. With `resume` also set, valid checkpoints from a
//! previous (possibly killed) run are loaded instead of re-run.

use crate::checkpoint::CheckpointDir;
use crate::pool;
use rlnoc_core::campaign::{Campaign, CampaignResult, CampaignTask};
use rlnoc_core::experiment::ExperimentReport;
use rlnoc_telemetry::Telemetry;
use std::path::PathBuf;
use std::sync::Arc;

/// How a campaign should be executed.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads (1 = serial; 0 is treated as 1).
    pub jobs: usize,
    /// Directory for checkpoints and policy snapshots (`None` = keep
    /// everything in memory).
    pub snapshot_dir: Option<PathBuf>,
    /// Reload valid checkpoints from `snapshot_dir` instead of
    /// re-running their tasks. Ignored without a snapshot directory.
    pub resume: bool,
    /// `BatchSim` lane width: replicates of one (workload, scheme)
    /// cell run as a single lockstep batched task of up to this many
    /// lanes (1 = scalar execution, the historical behavior). Purely an
    /// execution strategy — results, checkpoints, and fingerprints are
    /// byte-identical for every width.
    pub batch: usize,
    /// Runner-level telemetry (queue depth, per-worker task counts, one
    /// run summary per campaign). Independent of the campaign's own
    /// handle, which instruments the simulations themselves.
    pub telemetry: Telemetry,
}

impl RunnerConfig {
    /// Serial execution, no persistence — the drop-in equivalent of
    /// calling [`Campaign::run`] directly.
    pub fn serial() -> Self {
        Self {
            jobs: 1,
            snapshot_dir: None,
            resume: false,
            batch: 1,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Reads the standard environment knobs:
    ///
    /// * `RLNOC_JOBS` — worker threads; `0` or unset = serial, `max` =
    ///   all available cores.
    /// * `RLNOC_BATCH` — `BatchSim` lane width; `0`/`1` or unset =
    ///   scalar execution.
    /// * `SNAPSHOT_DIR` — checkpoint/policy-snapshot directory.
    /// * `RESUME` — `1`/`true` to reload checkpoints from
    ///   `SNAPSHOT_DIR`.
    pub fn from_env() -> Self {
        let jobs = match std::env::var("RLNOC_JOBS") {
            Ok(v) if v.trim() == "max" => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Ok(v) => v.trim().parse().unwrap_or(1).max(1),
            Err(_) => 1,
        };
        let snapshot_dir = std::env::var("SNAPSHOT_DIR")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from);
        let resume = std::env::var("RESUME")
            .map(|v| matches!(v.trim(), "1" | "true" | "yes"))
            .unwrap_or(false);
        let batch = std::env::var("RLNOC_BATCH")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1)
            .max(1);
        Self {
            jobs,
            snapshot_dir,
            resume,
            batch,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle for the runner's own instruments.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Executes `campaign` under this configuration.
    ///
    /// The result is identical — report for report — to
    /// [`Campaign::run`], for any `jobs` value and whether or not tasks
    /// were restored from checkpoints.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot directory cannot be opened (wrong
    /// campaign, I/O failure) or a simulation task panics.
    pub fn run_campaign(&self, campaign: &Campaign) -> CampaignResult {
        self.run_campaign_with(campaign, &|_, _| {})
    }

    /// Like [`run_campaign`](Self::run_campaign), invoking `on_task`
    /// once per task as its report becomes available — immediately for
    /// checkpoints restored via `resume`, and on the completing worker
    /// thread for freshly-run tasks (so the hook must be `Sync`; it
    /// runs concurrently under `jobs > 1`).
    ///
    /// The hook is observation-only: it receives shared references and
    /// cannot perturb results, so the returned [`CampaignResult`] is
    /// still byte-identical to [`Campaign::run`]. `rlnoc-serve` uses it
    /// to stream per-task progress to watch subscribers.
    ///
    /// # Panics
    ///
    /// As [`run_campaign`](Self::run_campaign).
    pub fn run_campaign_with(
        &self,
        campaign: &Campaign,
        on_task: &(dyn Fn(&CampaignTask, &ExperimentReport) + Sync),
    ) -> CampaignResult {
        let tasks = campaign.tasks();
        let total = tasks.len();
        let run_id =
            self.telemetry
                .begin_run(&format!("runner/jobs{}/tasks{}", self.jobs.max(1), total));

        let ckpt = self.snapshot_dir.as_ref().map(|dir| {
            Arc::new(
                CheckpointDir::open(dir, campaign.fingerprint(), total)
                    .expect("snapshot directory must be usable"),
            )
        });

        // Restore finished tasks, run the rest.
        let mut slots: Vec<Option<ExperimentReport>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        let mut pending: Vec<CampaignTask> = Vec::new();
        for task in tasks {
            let restored = match (&ckpt, self.resume) {
                (Some(c), true) => c.load(task.index),
                _ => None,
            };
            match restored {
                Some(report) => {
                    on_task(&task, &report);
                    slots[task.index] = Some(report);
                }
                None => pending.push(task),
            }
        }
        self.telemetry
            .counter("runner.tasks_resumed")
            .add((total - pending.len()) as u64);

        // Learning schemes carry a pre-training phase and run several
        // times longer than the static baselines; starting them first
        // keeps the workers balanced at the tail of the queue.
        pending.sort_by_key(|t| (std::cmp::Reverse(t.scheme.is_learning()), t.index));

        // Replicates of one (workload, scheme) cell batch into lockstep
        // groups of up to `batch` lanes; ragged tails become smaller
        // groups and singletons fall back to the scalar path.
        let groups = batch_groups(pending, self.batch);
        let completed = self.telemetry.counter("runner.tasks_completed");
        let fresh = pool::run_indexed(groups, self.jobs, &self.telemetry, |_, group| {
            let reports = execute_batch(campaign, &group, ckpt.as_deref());
            // The pool counts one completion per queue item (= group);
            // top up so the counter stays per-task.
            if group.len() > 1 {
                completed.add((group.len() - 1) as u64);
            }
            group
                .iter()
                .zip(reports)
                .map(|(task, report)| {
                    on_task(task, &report);
                    (task.index, report)
                })
                .collect::<Vec<_>>()
        });
        for (index, report) in fresh.into_iter().flatten() {
            slots[index] = Some(report);
        }
        self.telemetry.finish_run(run_id, 0);
        CampaignResult {
            reports: slots
                .into_iter()
                .map(|s| s.expect("every task ran or was restored"))
                .collect(),
        }
    }
}

/// Executes one campaign task and, when a checkpoint directory is
/// given, persists its report (and any learned policy snapshot as
/// `task-NNNN.policy`).
///
/// This is the single-task unit [`RunnerConfig::run_campaign`] is built
/// from, exported so external schedulers — `rlnoc-serve`'s fair-share
/// worker pool — can run tasks one at a time with the exact same
/// execution + persistence semantics and stay byte-identical to a
/// runner invocation.
///
/// # Panics
///
/// Panics when a checkpoint or policy snapshot cannot be written.
pub fn execute_task(
    campaign: &Campaign,
    task: &CampaignTask,
    ckpt: Option<&CheckpointDir>,
) -> ExperimentReport {
    let (report, artifacts) = campaign.experiment(task).run_inspect();
    persist_task(task, &report, &artifacts, ckpt);
    report
}

/// Checkpoints one finished task's report and any learned policy.
fn persist_task(
    task: &CampaignTask,
    report: &ExperimentReport,
    artifacts: &rlnoc_core::experiment::RunArtifacts,
    ckpt: Option<&CheckpointDir>,
) {
    let Some(ckpt) = ckpt else { return };
    ckpt.store(task.index, report)
        .expect("checkpoint write must succeed");
    if let Some(policy) = artifacts.controllers.policy_snapshot() {
        let path = ckpt.path().join(format!("task-{:04}.policy", task.index));
        policy
            .save_to_path(&path)
            .expect("policy snapshot write must succeed");
    }
}

/// Executes a group of replicate lanes from one campaign cell as a
/// single `BatchSim` task, with the exact persistence semantics of
/// [`execute_task`] applied per lane. Singleton groups take the scalar
/// path — the ragged-tail fallback.
///
/// # Panics
///
/// As [`execute_task`].
pub fn execute_batch(
    campaign: &Campaign,
    group: &[CampaignTask],
    ckpt: Option<&CheckpointDir>,
) -> Vec<ExperimentReport> {
    if group.len() == 1 {
        return vec![execute_task(campaign, &group[0], ckpt)];
    }
    let lanes = group.iter().map(|task| campaign.experiment(task)).collect();
    rlnoc_core::Experiment::run_batch_inspect(lanes)
        .into_iter()
        .zip(group)
        .map(|((report, artifacts), task)| {
            persist_task(task, &report, &artifacts, ckpt);
            report
        })
        .collect()
}

/// Partitions scheduled tasks into `BatchSim` groups: replicates of one
/// (workload, scheme) cell — which differ only by derived seed — are
/// the lanes eligible to share a lockstep batch. Cells appear in the
/// scheduling order of their first task, so the learning-first ordering
/// of the input survives grouping.
fn batch_groups(pending: Vec<CampaignTask>, batch: usize) -> Vec<Vec<CampaignTask>> {
    if batch <= 1 {
        return pending.into_iter().map(|task| vec![task]).collect();
    }
    let mut cells: Vec<((usize, rlnoc_core::ErrorControlScheme), Vec<CampaignTask>)> = Vec::new();
    for task in pending {
        let key = (task.workload, task.scheme);
        match cells.iter_mut().find(|(k, _)| *k == key) {
            Some((_, lanes)) => lanes.push(task),
            None => cells.push((key, vec![task])),
        }
    }
    cells
        .into_iter()
        .flat_map(|(_, lanes)| {
            lanes
                .chunks(batch)
                .map(<[CampaignTask]>::to_vec)
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnoc_core::WorkloadProfile;

    fn tiny_campaign() -> Campaign {
        let mut c = Campaign::quick();
        c.workloads = vec![WorkloadProfile::blackscholes()];
        c.pretrain_cycles = 4_000;
        c.measure_cycles = Some(4_000);
        c
    }

    #[test]
    fn from_env_defaults_are_serial_and_ephemeral() {
        // Note: assumes the test environment does not set the knobs.
        if std::env::var_os("RLNOC_JOBS").is_none() {
            let cfg = RunnerConfig::from_env();
            assert_eq!(cfg.jobs, 1);
        }
    }

    #[test]
    fn runner_serial_matches_campaign_run() {
        let campaign = tiny_campaign();
        let direct = campaign.run();
        let via_runner = RunnerConfig::serial().run_campaign(&campaign);
        assert_eq!(direct, via_runner);
    }

    #[test]
    fn learning_tasks_are_scheduled_first() {
        let campaign = Campaign::quick();
        let mut pending = campaign.tasks();
        pending.sort_by_key(|t| (std::cmp::Reverse(t.scheme.is_learning()), t.index));
        let first_static = pending
            .iter()
            .position(|t| !t.scheme.is_learning())
            .expect("grid has static schemes");
        assert!(
            pending[..first_static]
                .iter()
                .all(|t| t.scheme.is_learning()),
            "all learning tasks precede the first static task"
        );
    }
}
