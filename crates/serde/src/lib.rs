//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! report types so that downstream consumers *could* serialize them, but
//! nothing in-tree performs serde-based (de)serialization — the
//! telemetry exporters hand-roll JSON/CSV precisely to avoid the
//! dependency. Since the build container has no crates.io access, this
//! shim keeps those derives compiling: the traits are empty markers and
//! the derive macros expand to empty impls.
//!
//! If real serialization is ever needed, vendor the real `serde` and
//! delete this crate; no call sites need to change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
