//! Topology zoo: node identifiers, coordinates, port directions, link
//! identifiers, the [`Topology`] trait, and its four implementations —
//! 2D mesh, 2D torus, folded torus, and 3D mesh.
//!
//! The paper evaluates an 8×8 2D mesh; the zoo generalizes the same
//! router micro-architecture to wrap-around and stacked networks.
//! Every topology projects its nodes onto a row-major 2D grid
//! (`index = y * width + x`, with a 3D mesh flattening its layers into
//! `height = h × depth` rows), so grid-indexed consumers — thermal and
//! variation maps, synthetic traffic patterns — work unchanged on all
//! of them. Only adjacency, minimal routing, and the port count differ
//! per topology.
//!
//! Deadlock freedom:
//! - the 2D mesh uses X-Y dimension-order routing (no VC restriction
//!   needed);
//! - tori use dimension-order routing plus the classic *date-line*
//!   virtual-channel split ([`VcClass`]): a packet that still has to
//!   cross the wrap-around link of its current ring travels in the low
//!   VC half, and switches to the high half once past the date line, so
//!   no cycle of channel dependencies can close around a ring;
//! - the 3D mesh uses X-Y-Z dimension-order routing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of ports on a 2D router (N, E, S, W, Local).
///
/// This is also the fixed normalization baseline for per-port
/// utilization statistics across all topologies, so 2D results are
/// unchanged by the topology generalization.
pub const NUM_PORTS: usize = 5;

/// Maximum number of ports on any router in the zoo
/// (N, E, S, W, Local, Up, Down). Fixed-size per-port arrays are sized
/// by this; loops over them must be bounded by the topology's
/// [`Topology::num_ports`].
pub const MAX_PORTS: usize = 7;

/// Identifies one router (equivalently, one core/tile).
///
/// Node indices are row-major over the topology's projection grid:
/// `index = y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An (x, y) position in the projection grid, with the origin at the
/// north-west corner (x grows east, y grows south).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column, 0-based.
    pub x: u16,
    /// Row, 0-based.
    pub y: u16,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A router port direction. `Local` is the injection/ejection port;
/// `Up`/`Down` exist only on 3D topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// Towards smaller `y`.
    North = 0,
    /// Towards larger `x`.
    East = 1,
    /// Towards larger `y`.
    South = 2,
    /// Towards smaller `x`.
    West = 3,
    /// The attached processing core.
    Local = 4,
    /// Towards larger `z` (the next stacked layer).
    Up = 5,
    /// Towards smaller `z` (the previous stacked layer).
    Down = 6,
}

impl Direction {
    /// All port directions, in port-index order.
    pub const ALL: [Direction; MAX_PORTS] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::Local,
        Direction::Up,
        Direction::Down,
    ];

    /// The four planar inter-router directions.
    pub const COMPASS: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The six inter-router directions of a 3D mesh, in port-index
    /// order (the deterministic exploration order for BFS-based route
    /// construction).
    pub const COMPASS3D: [Direction; 6] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::Up,
        Direction::Down,
    ];

    /// The port index of this direction (0..=6).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a direction from a port index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_PORTS`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// The direction a flit *arrives from* when sent in this direction
    /// (e.g. a flit sent `East` arrives on the neighbor's `West` port).
    ///
    /// # Panics
    ///
    /// Panics for `Local`, which has no opposite.
    pub fn opposite(self) -> Self {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
            Direction::Local => panic!("Local port has no opposite direction"),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
            Direction::Up => "U",
            Direction::Down => "D",
        };
        f.write_str(s)
    }
}

/// Identifies one *output link*: the channel leaving router `src` in
/// direction `dir`.
///
/// `dir == Local` identifies the ejection channel into the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId {
    /// The upstream (sending) router.
    pub src: NodeId,
    /// The output direction at `src`.
    pub dir: Direction,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.src, self.dir)
    }
}

/// Date-line virtual-channel class of a routed hop.
///
/// On wrap-around (torus) topologies each ring is split by a *date
/// line* at its wrap link. A hop whose remaining travel in the current
/// dimension still crosses the date line must use the low half of the
/// VC range; once past it, the high half. Since every packet's class
/// sequence is monotone (`Lo` then `Hi` within a dimension, and
/// dimensions are visited in fixed X-then-Y order), the channel
/// dependency graph is acyclic and dimension-order torus routing is
/// deadlock-free. Mesh topologies and up*/down* fault recovery place
/// no restriction (`Any`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum VcClass {
    /// No restriction: any VC at the downstream input port.
    Any = 0,
    /// Low half of the VC range (`0..v/2`): still has to cross the
    /// date line in the current dimension.
    Lo = 1,
    /// High half of the VC range (`v/2..v`): past the date line.
    Hi = 2,
}

impl VcClass {
    /// Class iteration order for VC allocation: unrestricted
    /// requesters first, then the two date-line halves.
    pub const ALL: [VcClass; 3] = [VcClass::Any, VcClass::Lo, VcClass::Hi];

    /// The class index (0..=2).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a class from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// The admissible VC indices at a port with `vcs_per_port` VCs.
    ///
    /// `Lo` is `0..v/2`, `Hi` is `v/2..v`, `Any` is the full range.
    /// Both halves are non-empty whenever `v >= 2` (the minimum VC
    /// count a torus topology demands).
    #[inline]
    pub fn vc_range(self, vcs_per_port: u8) -> std::ops::Range<usize> {
        let v = vcs_per_port as usize;
        match self {
            VcClass::Any => 0..v,
            VcClass::Lo => 0..v / 2,
            VcClass::Hi => v / 2..v,
        }
    }

    /// Whether `vc` is admissible for this class.
    #[inline]
    pub fn admits(self, vc: usize, vcs_per_port: u8) -> bool {
        self.vc_range(vcs_per_port).contains(&vc)
    }
}

/// The behavior every network shape must provide: node enumeration,
/// port/neighbor adjacency, minimal routing, and a deterministic text
/// encoding for fingerprints and case files.
///
/// Node indices are row-major over a `proj_width × proj_height`
/// projection grid shared by all implementations, so grid-indexed
/// consumers need no per-topology code.
pub trait Topology {
    /// Total number of routers.
    fn num_nodes(&self) -> usize;

    /// Ports per router, including `Local` (5 planar, 7 stacked).
    fn num_ports(&self) -> usize;

    /// The inter-router directions of this topology, in port-index
    /// order (the deterministic neighbor-exploration order).
    fn compass(&self) -> &'static [Direction];

    /// Width of the row-major projection grid.
    fn proj_width(&self) -> u16;

    /// Height of the row-major projection grid (`h × depth` for a 3D
    /// mesh).
    fn proj_height(&self) -> u16;

    /// The neighbor of `node` in direction `dir`, or `None` at an edge
    /// (or when `dir` is `Local` or not a port of this topology).
    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId>;

    /// Minimal hop count between two nodes (wrap-aware on tori).
    fn hop_distance(&self, a: NodeId, b: NodeId) -> u16;

    /// The minimal-route output port at `current` for a packet headed
    /// to `dst`, with the date-line VC class of the hop. Returns
    /// `(Local, Any)` when `current == dst` (eject).
    fn min_route(&self, current: NodeId, dst: NodeId) -> (Direction, VcClass);

    /// Minimum `vcs_per_port` the topology's deadlock-avoidance scheme
    /// requires (2 on tori, 1 elsewhere).
    fn min_vcs(&self) -> u8 {
        1
    }

    /// Deterministic text encoding (`8x8`, `torus:8x8`, `ftorus:8x8`,
    /// `3d:4x4x2`), parseable by [`Topo::parse`].
    fn encode(&self) -> String;
}

/// One step along a ring of circumference `k`, from coordinate `c`
/// towards `d` (`c != d`): returns `(positive, crosses_dateline)`.
///
/// `positive` picks the direction of the minimal ring distance (ties
/// break towards the positive direction, matching X-Y's East/South
/// preference); `crosses_dateline` is whether the remaining travel
/// still crosses the ring's wrap link (between coordinate `k-1` and
/// `0`), which selects [`VcClass::Lo`].
#[inline]
fn ring_step(c: u16, d: u16, k: u16) -> (bool, bool) {
    debug_assert!(c != d && c < k && d < k);
    let fwd = (d + k - c) % k;
    let bwd = (c + k - d) % k;
    let positive = fwd <= bwd;
    let crosses = if positive { c > d } else { c < d };
    (positive, crosses)
}

/// Minimal ring distance between two coordinates on a ring of
/// circumference `k`.
#[inline]
fn ring_dist(c: u16, d: u16, k: u16) -> u16 {
    let fwd = (d + k - c) % k;
    let bwd = (c + k - d) % k;
    fwd.min(bwd)
}

/// A 2D mesh topology.
///
/// # Example
///
/// ```
/// use noc_topo::{Mesh, Direction, NodeId, Topology};
///
/// let mesh = Mesh::new(8, 8);
/// assert_eq!(mesh.num_nodes(), 64);
/// let origin = mesh.node_at(0, 0);
/// assert_eq!(mesh.neighbor(origin, Direction::East), Some(mesh.node_at(1, 0)));
/// assert_eq!(mesh.neighbor(origin, Direction::North), None); // edge of chip
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count exceeds
    /// `u16::MAX`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32 + 1,
            "mesh too large for u16 node ids"
        );
        Self { width, height }
    }

    /// Mesh width (columns).
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of routers.
    pub fn num_nodes(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The node at position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.width && y < self.height, "coordinate out of mesh");
        NodeId(y * self.width + x)
    }

    /// The coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(node.index() < self.num_nodes(), "node out of mesh");
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// The neighbor of `node` in direction `dir`, or `None` at a mesh
    /// edge (or when `dir` is `Local`).
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let Coord { x, y } = self.coord(node);
        let (nx, ny) = match dir {
            Direction::North => (x, y.checked_sub(1)?),
            Direction::South => (x, y + 1),
            Direction::East => (x + 1, y),
            Direction::West => (x.checked_sub(1)?, y),
            Direction::Local | Direction::Up | Direction::Down => return None,
        };
        if nx < self.width && ny < self.height {
            Some(self.node_at(nx, ny))
        } else {
            None
        }
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(|i| NodeId(i as u16))
    }

    /// Iterates over all inter-router output links (`Local` excluded).
    pub fn links(self) -> impl Iterator<Item = LinkId> {
        self.nodes().flat_map(move |n| {
            Direction::COMPASS
                .into_iter()
                .filter(move |&d| self.neighbor(n, d).is_some())
                .map(move |d| LinkId { src: n, dir: d })
        })
    }

    /// Manhattan distance between two nodes (the X-Y hop count).
    pub fn hop_distance(self, a: NodeId, b: NodeId) -> u16 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }
}

impl Topology for Mesh {
    fn num_nodes(&self) -> usize {
        Mesh::num_nodes(*self)
    }

    fn num_ports(&self) -> usize {
        NUM_PORTS
    }

    fn compass(&self) -> &'static [Direction] {
        &Direction::COMPASS
    }

    fn proj_width(&self) -> u16 {
        self.width
    }

    fn proj_height(&self) -> u16 {
        self.height
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        Mesh::neighbor(*self, node, dir)
    }

    fn hop_distance(&self, a: NodeId, b: NodeId) -> u16 {
        Mesh::hop_distance(*self, a, b)
    }

    fn min_route(&self, current: NodeId, dst: NodeId) -> (Direction, VcClass) {
        let c = self.coord(current);
        let d = self.coord(dst);
        let dir = if c.x < d.x {
            Direction::East
        } else if c.x > d.x {
            Direction::West
        } else if c.y < d.y {
            Direction::South
        } else if c.y > d.y {
            Direction::North
        } else {
            Direction::Local
        };
        (dir, VcClass::Any)
    }

    fn encode(&self) -> String {
        format!("{}x{}", self.width, self.height)
    }
}

/// A 2D torus: a mesh whose rows and columns wrap around into rings.
///
/// Dimension-order routing takes the shorter way around each ring
/// (ties towards East/South) and stays deadlock-free via the date-line
/// VC split, so a torus network needs `vcs_per_port >= 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// Creates a `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either ring has fewer than 2 nodes (a 1-ring would be
    /// a self-loop link) or the node count exceeds `u16::MAX`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "torus dimensions must be at least 2"
        );
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32 + 1,
            "torus too large for u16 node ids"
        );
        Self { width, height }
    }

    /// Torus width (ring circumference along x).
    pub fn width(self) -> u16 {
        self.width
    }

    /// Torus height (ring circumference along y).
    pub fn height(self) -> u16 {
        self.height
    }

    fn coord(self, node: NodeId) -> Coord {
        assert!(
            node.index() < Topology::num_nodes(&self),
            "node out of torus"
        );
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    fn num_ports(&self) -> usize {
        NUM_PORTS
    }

    fn compass(&self) -> &'static [Direction] {
        &Direction::COMPASS
    }

    fn proj_width(&self) -> u16 {
        self.width
    }

    fn proj_height(&self) -> u16 {
        self.height
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let Coord { x, y } = self.coord(node);
        let (w, h) = (self.width, self.height);
        let (nx, ny) = match dir {
            Direction::North => (x, (y + h - 1) % h),
            Direction::South => (x, (y + 1) % h),
            Direction::East => ((x + 1) % w, y),
            Direction::West => ((x + w - 1) % w, y),
            Direction::Local | Direction::Up | Direction::Down => return None,
        };
        Some(NodeId(ny * w + nx))
    }

    fn hop_distance(&self, a: NodeId, b: NodeId) -> u16 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ring_dist(ca.x, cb.x, self.width) + ring_dist(ca.y, cb.y, self.height)
    }

    fn min_route(&self, current: NodeId, dst: NodeId) -> (Direction, VcClass) {
        let c = self.coord(current);
        let d = self.coord(dst);
        if c.x != d.x {
            let (positive, crosses) = ring_step(c.x, d.x, self.width);
            let dir = if positive {
                Direction::East
            } else {
                Direction::West
            };
            let class = if crosses { VcClass::Lo } else { VcClass::Hi };
            (dir, class)
        } else if c.y != d.y {
            let (positive, crosses) = ring_step(c.y, d.y, self.height);
            let dir = if positive {
                Direction::South
            } else {
                Direction::North
            };
            let class = if crosses { VcClass::Lo } else { VcClass::Hi };
            (dir, class)
        } else {
            (Direction::Local, VcClass::Any)
        }
    }

    fn min_vcs(&self) -> u8 {
        2
    }

    fn encode(&self) -> String {
        format!("torus:{}x{}", self.width, self.height)
    }
}

/// A folded 2D torus.
///
/// A folded torus interleaves each ring's nodes in the physical layout
/// so that every link spans at most two tile pitches instead of the
/// plain torus's full-width wrap link. At this simulator's level of
/// abstraction (uniform per-hop link latency) its *logical* behavior —
/// adjacency, routing, deadlock avoidance — is identical to [`Torus`];
/// it is kept as a distinct topology kind because campaigns, case
/// files, and fingerprints distinguish the physical design point (a
/// folded torus would take different link latency/energy parameters).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FoldedTorus {
    inner: Torus,
}

impl FoldedTorus {
    /// Creates a `width × height` folded torus.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Torus::new`].
    pub fn new(width: u16, height: u16) -> Self {
        Self {
            inner: Torus::new(width, height),
        }
    }

    /// Folded-torus width (ring circumference along x).
    pub fn width(self) -> u16 {
        self.inner.width()
    }

    /// Folded-torus height (ring circumference along y).
    pub fn height(self) -> u16 {
        self.inner.height()
    }
}

impl fmt::Debug for FoldedTorus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FoldedTorus")
            .field("width", &self.inner.width())
            .field("height", &self.inner.height())
            .finish()
    }
}

impl Topology for FoldedTorus {
    fn num_nodes(&self) -> usize {
        Topology::num_nodes(&self.inner)
    }

    fn num_ports(&self) -> usize {
        NUM_PORTS
    }

    fn compass(&self) -> &'static [Direction] {
        &Direction::COMPASS
    }

    fn proj_width(&self) -> u16 {
        self.inner.width()
    }

    fn proj_height(&self) -> u16 {
        self.inner.height()
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.inner.neighbor(node, dir)
    }

    fn hop_distance(&self, a: NodeId, b: NodeId) -> u16 {
        self.inner.hop_distance(a, b)
    }

    fn min_route(&self, current: NodeId, dst: NodeId) -> (Direction, VcClass) {
        self.inner.min_route(current, dst)
    }

    fn min_vcs(&self) -> u8 {
        2
    }

    fn encode(&self) -> String {
        format!("ftorus:{}x{}", self.inner.width(), self.inner.height())
    }
}

/// A 3D mesh: `depth` stacked `width × height` layers joined by
/// vertical `Up`/`Down` links, routed X-Y-Z dimension-order.
///
/// Node indices flatten layers row-major:
/// `index = (z * height + y) * width + x`, which makes the projection
/// grid a `width × (height × depth)` rectangle (each layer is a band
/// of `height` consecutive rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh3d {
    width: u16,
    height: u16,
    depth: u16,
}

impl Mesh3d {
    /// Creates a `width × height × depth` 3D mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the node count exceeds
    /// `u16::MAX`.
    pub fn new(width: u16, height: u16, depth: u16) -> Self {
        assert!(
            width > 0 && height > 0 && depth > 0,
            "3d mesh dimensions must be positive"
        );
        assert!(
            (width as u64) * (height as u64) * (depth as u64) <= u16::MAX as u64 + 1,
            "3d mesh too large for u16 node ids"
        );
        Self {
            width,
            height,
            depth,
        }
    }

    /// Layer width (columns).
    pub fn width(self) -> u16 {
        self.width
    }

    /// Layer height (rows per layer).
    pub fn height(self) -> u16 {
        self.height
    }

    /// Number of stacked layers.
    pub fn depth(self) -> u16 {
        self.depth
    }

    /// The (x, y, z) position of `node`.
    fn coord3(self, node: NodeId) -> (u16, u16, u16) {
        assert!(
            node.index() < Topology::num_nodes(&self),
            "node out of 3d mesh"
        );
        let layer = self.width * self.height;
        let z = node.0 / layer;
        let rem = node.0 % layer;
        (rem % self.width, rem / self.width, z)
    }
}

impl Topology for Mesh3d {
    fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize * self.depth as usize
    }

    fn num_ports(&self) -> usize {
        MAX_PORTS
    }

    fn compass(&self) -> &'static [Direction] {
        &Direction::COMPASS3D
    }

    fn proj_width(&self) -> u16 {
        self.width
    }

    fn proj_height(&self) -> u16 {
        self.height * self.depth
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (x, y, z) = self.coord3(node);
        let (nx, ny, nz) = match dir {
            Direction::North => (x, y.checked_sub(1)?, z),
            Direction::South => (x, y + 1, z),
            Direction::East => (x + 1, y, z),
            Direction::West => (x.checked_sub(1)?, y, z),
            Direction::Up => (x, y, z + 1),
            Direction::Down => (x, y, z.checked_sub(1)?),
            Direction::Local => return None,
        };
        if nx < self.width && ny < self.height && nz < self.depth {
            Some(NodeId((nz * self.height + ny) * self.width + nx))
        } else {
            None
        }
    }

    fn hop_distance(&self, a: NodeId, b: NodeId) -> u16 {
        let ca = self.coord3(a);
        let cb = self.coord3(b);
        ca.0.abs_diff(cb.0) + ca.1.abs_diff(cb.1) + ca.2.abs_diff(cb.2)
    }

    fn min_route(&self, current: NodeId, dst: NodeId) -> (Direction, VcClass) {
        let c = self.coord3(current);
        let d = self.coord3(dst);
        let dir = if c.0 < d.0 {
            Direction::East
        } else if c.0 > d.0 {
            Direction::West
        } else if c.1 < d.1 {
            Direction::South
        } else if c.1 > d.1 {
            Direction::North
        } else if c.2 < d.2 {
            Direction::Up
        } else if c.2 > d.2 {
            Direction::Down
        } else {
            Direction::Local
        };
        (dir, VcClass::Any)
    }

    fn encode(&self) -> String {
        format!("3d:{}x{}x{}", self.width, self.height, self.depth)
    }
}

/// The topology zoo, as one copyable value.
///
/// `Topo` is what configurations carry (`NocConfig::mesh` — the field
/// keeps its historical name). It exposes the same inherent accessors
/// the original concrete `Mesh` had (`width`/`height` report the
/// *projection* grid), plus the [`Topology`] trait by delegation.
///
/// Its `Debug` form delegates to the inner type, so a 2D mesh still
/// renders as `Mesh { width: 8, height: 8 }` — campaign fingerprints
/// embed this text and stay byte-identical.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topo {
    /// A 2D mesh.
    Mesh(Mesh),
    /// A 2D torus.
    Torus(Torus),
    /// A folded 2D torus.
    FoldedTorus(FoldedTorus),
    /// A 3D mesh.
    Mesh3d(Mesh3d),
}

impl fmt::Debug for Topo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topo::Mesh(t) => t.fmt(f),
            Topo::Torus(t) => t.fmt(f),
            Topo::FoldedTorus(t) => t.fmt(f),
            Topo::Mesh3d(t) => t.fmt(f),
        }
    }
}

impl From<Mesh> for Topo {
    fn from(t: Mesh) -> Self {
        Topo::Mesh(t)
    }
}

impl From<Torus> for Topo {
    fn from(t: Torus) -> Self {
        Topo::Torus(t)
    }
}

impl From<FoldedTorus> for Topo {
    fn from(t: FoldedTorus) -> Self {
        Topo::FoldedTorus(t)
    }
}

impl From<Mesh3d> for Topo {
    fn from(t: Mesh3d) -> Self {
        Topo::Mesh3d(t)
    }
}

macro_rules! delegate {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            Topo::Mesh($t) => $body,
            Topo::Torus($t) => $body,
            Topo::FoldedTorus($t) => $body,
            Topo::Mesh3d($t) => $body,
        }
    };
}

impl Topo {
    /// A 2D mesh topology.
    pub fn mesh(width: u16, height: u16) -> Self {
        Topo::Mesh(Mesh::new(width, height))
    }

    /// A 2D torus topology.
    pub fn torus(width: u16, height: u16) -> Self {
        Topo::Torus(Torus::new(width, height))
    }

    /// A folded-torus topology.
    pub fn ftorus(width: u16, height: u16) -> Self {
        Topo::FoldedTorus(FoldedTorus::new(width, height))
    }

    /// A 3D mesh topology.
    pub fn mesh3d(width: u16, height: u16, depth: u16) -> Self {
        Topo::Mesh3d(Mesh3d::new(width, height, depth))
    }

    /// Short kind name (`mesh`, `torus`, `ftorus`, `3d`).
    pub fn kind(&self) -> &'static str {
        match self {
            Topo::Mesh(_) => "mesh",
            Topo::Torus(_) => "torus",
            Topo::FoldedTorus(_) => "ftorus",
            Topo::Mesh3d(_) => "3d",
        }
    }

    /// Whether this is a plain 2D mesh.
    pub fn is_mesh2d(&self) -> bool {
        matches!(self, Topo::Mesh(_))
    }

    /// Whether rings wrap around (torus or folded torus).
    pub fn has_wraparound(&self) -> bool {
        matches!(self, Topo::Torus(_) | Topo::FoldedTorus(_))
    }

    /// The 3D dimensions `(w, h, depth)` when this is a 3D mesh.
    pub fn dims3(&self) -> Option<(u16, u16, u16)> {
        match self {
            Topo::Mesh3d(t) => Some((t.width(), t.height(), t.depth())),
            _ => None,
        }
    }

    /// Projection-grid width (columns).
    pub fn width(&self) -> u16 {
        delegate!(self, t => t.proj_width())
    }

    /// Projection-grid height (rows; `h × depth` for a 3D mesh).
    pub fn height(&self) -> u16 {
        delegate!(self, t => t.proj_height())
    }

    /// Total number of routers.
    pub fn num_nodes(&self) -> usize {
        delegate!(self, t => Topology::num_nodes(t))
    }

    /// Ports per router, including `Local`.
    pub fn num_ports(&self) -> usize {
        delegate!(self, t => Topology::num_ports(t))
    }

    /// The inter-router directions, in port-index order.
    pub fn compass(&self) -> &'static [Direction] {
        delegate!(self, t => Topology::compass(t))
    }

    /// The node at projection position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the projection grid.
    pub fn node_at(&self, x: u16, y: u16) -> NodeId {
        assert!(
            x < self.width() && y < self.height(),
            "coordinate out of mesh"
        );
        NodeId(y * self.width() + x)
    }

    /// The projection coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(node.index() < self.num_nodes(), "node out of mesh");
        Coord {
            x: node.0 % self.width(),
            y: node.0 / self.width(),
        }
    }

    /// The neighbor of `node` in direction `dir`, or `None` at an edge
    /// (or for `Local` / a port the topology lacks).
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        delegate!(self, t => Topology::neighbor(t, node, dir))
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(|i| NodeId(i as u16))
    }

    /// Iterates over all inter-router output links (`Local` excluded).
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        let topo = *self;
        self.nodes().flat_map(move |n| {
            topo.compass()
                .iter()
                .filter(move |&&d| topo.neighbor(n, d).is_some())
                .map(move |&d| LinkId { src: n, dir: d })
        })
    }

    /// Minimal hop count between two nodes (wrap-aware on tori).
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u16 {
        delegate!(self, t => Topology::hop_distance(t, a, b))
    }

    /// Minimal-route output port and date-line VC class; see
    /// [`Topology::min_route`].
    pub fn min_route(&self, current: NodeId, dst: NodeId) -> (Direction, VcClass) {
        delegate!(self, t => Topology::min_route(t, current, dst))
    }

    /// Minimum `vcs_per_port` the topology requires.
    pub fn min_vcs(&self) -> u8 {
        delegate!(self, t => Topology::min_vcs(t))
    }

    /// Deterministic text encoding; see [`Topology::encode`].
    pub fn encode(&self) -> String {
        delegate!(self, t => Topology::encode(t))
    }

    /// Parses an [`encode`](Self::encode)d topology string.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn parse(s: &str) -> Result<Self, String> {
        fn dims2(s: &str, what: &str) -> Result<(u16, u16), String> {
            let (w, h) = s
                .split_once('x')
                .ok_or_else(|| format!("malformed {what} dimensions: {s:?}"))?;
            let w: u16 = w
                .parse()
                .map_err(|_| format!("malformed {what} width: {w:?}"))?;
            let h: u16 = h
                .parse()
                .map_err(|_| format!("malformed {what} height: {h:?}"))?;
            Ok((w, h))
        }
        let check = |ok: bool, what: &str| {
            if ok {
                Ok(())
            } else {
                Err(format!("out-of-range {what} dimensions: {s:?}"))
            }
        };
        if let Some(rest) = s.strip_prefix("torus:") {
            let (w, h) = dims2(rest, "torus")?;
            check(
                w >= 2 && h >= 2 && (w as u32) * (h as u32) <= u16::MAX as u32 + 1,
                "torus",
            )?;
            Ok(Topo::torus(w, h))
        } else if let Some(rest) = s.strip_prefix("ftorus:") {
            let (w, h) = dims2(rest, "ftorus")?;
            check(
                w >= 2 && h >= 2 && (w as u32) * (h as u32) <= u16::MAX as u32 + 1,
                "ftorus",
            )?;
            Ok(Topo::ftorus(w, h))
        } else if let Some(rest) = s.strip_prefix("3d:") {
            let mut parts = rest.splitn(3, 'x');
            let mut next = |what: &str| -> Result<u16, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("malformed 3d {what}: {rest:?}"))?
                    .parse()
                    .map_err(|_| format!("malformed 3d {what}: {rest:?}"))
            };
            let (w, h, d) = (next("width")?, next("height")?, next("depth")?);
            check(
                w > 0
                    && h > 0
                    && d > 0
                    && (w as u64) * (h as u64) * (d as u64) <= u16::MAX as u64 + 1,
                "3d mesh",
            )?;
            Ok(Topo::mesh3d(w, h, d))
        } else {
            let (w, h) = dims2(s, "mesh")?;
            check(
                w > 0 && h > 0 && (w as u32) * (h as u32) <= u16::MAX as u32 + 1,
                "mesh",
            )?;
            Ok(Topo::mesh(w, h))
        }
    }
}

impl Topology for Topo {
    fn num_nodes(&self) -> usize {
        Topo::num_nodes(self)
    }

    fn num_ports(&self) -> usize {
        Topo::num_ports(self)
    }

    fn compass(&self) -> &'static [Direction] {
        Topo::compass(self)
    }

    fn proj_width(&self) -> u16 {
        self.width()
    }

    fn proj_height(&self) -> u16 {
        self.height()
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        Topo::neighbor(self, node, dir)
    }

    fn hop_distance(&self, a: NodeId, b: NodeId) -> u16 {
        Topo::hop_distance(self, a, b)
    }

    fn min_route(&self, current: NodeId, dst: NodeId) -> (Direction, VcClass) {
        Topo::min_route(self, current, dst)
    }

    fn min_vcs(&self) -> u8 {
        Topo::min_vcs(self)
    }

    fn encode(&self) -> String {
        Topo::encode(self)
    }
}

/// Precomputed `node × direction → neighbor` lookup.
///
/// [`Topo::neighbor`] re-derives coordinates (divisions) on every
/// call; the simulator resolves a link endpoint several times per flit
/// per hop, so the network builds this dense table once and indexes it
/// on the hot path. `table[node][port]` equals
/// `topo.neighbor(node, Direction::from_index(port))` for every pair.
#[derive(Debug, Clone)]
pub struct NeighborTable {
    table: Vec<[Option<NodeId>; MAX_PORTS]>,
}

impl NeighborTable {
    /// Builds the table for `topo` (`num_nodes × MAX_PORTS` entries).
    pub fn new(topo: impl Into<Topo>) -> Self {
        let topo = topo.into();
        let table = topo
            .nodes()
            .map(|n| {
                let mut row = [None; MAX_PORTS];
                for dir in Direction::ALL {
                    row[dir.index()] = topo.neighbor(n, dir);
                }
                row
            })
            .collect();
        Self { table }
    }

    /// The neighbor of `node` in direction `dir`; `None` at an edge or
    /// for `Local`. Identical to [`Topo::neighbor`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology the table was built
    /// for.
    #[inline]
    pub fn get(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.table[node.index()][dir.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_round_trip() {
        let mesh = Mesh::new(8, 8);
        for node in mesh.nodes() {
            let c = mesh.coord(node);
            assert_eq!(mesh.node_at(c.x, c.y), node);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let mesh = Mesh::new(4, 6);
        for node in mesh.nodes() {
            for dir in Direction::COMPASS {
                if let Some(n) = mesh.neighbor(node, dir) {
                    assert_eq!(mesh.neighbor(n, dir.opposite()), Some(node));
                }
            }
        }
    }

    #[test]
    fn corner_nodes_have_two_neighbors() {
        let mesh = Mesh::new(8, 8);
        let corners = [
            mesh.node_at(0, 0),
            mesh.node_at(7, 0),
            mesh.node_at(0, 7),
            mesh.node_at(7, 7),
        ];
        for c in corners {
            let n = Direction::COMPASS
                .into_iter()
                .filter(|&d| mesh.neighbor(c, d).is_some())
                .count();
            assert_eq!(n, 2);
        }
    }

    #[test]
    fn interior_nodes_have_four_neighbors() {
        let mesh = Mesh::new(8, 8);
        let n = mesh.node_at(3, 4);
        let count = Direction::COMPASS
            .into_iter()
            .filter(|&d| mesh.neighbor(n, d).is_some())
            .count();
        assert_eq!(count, 4);
    }

    #[test]
    fn link_count_matches_formula() {
        // Directed inter-router links in a w×h mesh: 2*(w-1)*h + 2*w*(h-1).
        let mesh = Mesh::new(8, 8);
        assert_eq!(mesh.links().count(), 2 * 7 * 8 + 2 * 8 * 7);
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let mesh = Mesh::new(8, 8);
        assert_eq!(
            mesh.hop_distance(mesh.node_at(0, 0), mesh.node_at(7, 7)),
            14
        );
        assert_eq!(mesh.hop_distance(mesh.node_at(3, 3), mesh.node_at(3, 3)), 0);
        assert_eq!(mesh.hop_distance(mesh.node_at(2, 5), mesh.node_at(4, 1)), 6);
    }

    #[test]
    fn direction_index_round_trip() {
        for dir in Direction::ALL {
            assert_eq!(Direction::from_index(dir.index()), dir);
        }
    }

    #[test]
    fn up_down_are_opposites() {
        assert_eq!(Direction::Up.opposite(), Direction::Down);
        assert_eq!(Direction::Down.opposite(), Direction::Up);
        assert_eq!(Direction::Up.to_string(), "U");
        assert_eq!(Direction::Down.to_string(), "D");
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_opposite_panics() {
        let _ = Direction::Local.opposite();
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_mesh_panics() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    fn neighbor_local_is_none() {
        let mesh = Mesh::new(2, 2);
        assert_eq!(mesh.neighbor(NodeId(0), Direction::Local), None);
    }

    #[test]
    fn mesh_has_no_vertical_neighbors() {
        let mesh = Mesh::new(4, 4);
        for node in mesh.nodes() {
            assert_eq!(mesh.neighbor(node, Direction::Up), None);
            assert_eq!(mesh.neighbor(node, Direction::Down), None);
        }
    }

    #[test]
    fn neighbor_table_matches_topology() {
        let topos = [
            Topo::mesh(1, 1),
            Topo::mesh(1, 5),
            Topo::mesh(4, 4),
            Topo::mesh(8, 3),
            Topo::torus(4, 4),
            Topo::torus(2, 3),
            Topo::ftorus(5, 4),
            Topo::mesh3d(3, 2, 4),
        ];
        for topo in topos {
            let table = NeighborTable::new(topo);
            for node in topo.nodes() {
                for dir in Direction::ALL {
                    assert_eq!(
                        table.get(node, dir),
                        topo.neighbor(node, dir),
                        "{} {node} {dir}",
                        topo.encode()
                    );
                }
            }
        }
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Direction::North.to_string(), "N");
        let link = LinkId {
            src: NodeId(1),
            dir: Direction::East,
        };
        assert_eq!(link.to_string(), "n1→E");
        assert_eq!(Coord { x: 1, y: 2 }.to_string(), "(1, 2)");
    }

    // ---- torus ----

    #[test]
    fn torus_every_node_has_four_neighbors() {
        let t = Topo::torus(4, 3);
        for node in t.nodes() {
            for dir in Direction::COMPASS {
                assert!(t.neighbor(node, dir).is_some(), "{node} {dir}");
            }
        }
    }

    #[test]
    fn torus_neighbors_are_symmetric() {
        let t = Topo::torus(5, 4);
        for node in t.nodes() {
            for dir in Direction::COMPASS {
                let n = t.neighbor(node, dir).unwrap();
                assert_eq!(t.neighbor(n, dir.opposite()), Some(node));
            }
        }
    }

    #[test]
    fn torus_wraps_around() {
        let t = Topo::torus(4, 4);
        assert_eq!(
            t.neighbor(t.node_at(3, 0), Direction::East),
            Some(t.node_at(0, 0))
        );
        assert_eq!(
            t.neighbor(t.node_at(0, 0), Direction::West),
            Some(t.node_at(3, 0))
        );
        assert_eq!(
            t.neighbor(t.node_at(0, 0), Direction::North),
            Some(t.node_at(0, 3))
        );
        assert_eq!(
            t.neighbor(t.node_at(0, 3), Direction::South),
            Some(t.node_at(0, 0))
        );
    }

    #[test]
    fn torus_hop_distance_is_wrap_aware() {
        let t = Topo::torus(8, 8);
        // 0→7 along a ring of 8 is 1 hop the short way.
        assert_eq!(t.hop_distance(t.node_at(0, 0), t.node_at(7, 0)), 1);
        assert_eq!(t.hop_distance(t.node_at(0, 0), t.node_at(4, 0)), 4);
        assert_eq!(t.hop_distance(t.node_at(0, 0), t.node_at(7, 7)), 2);
        // Diameter of an 8×8 torus is 8, not 14.
        let max = t
            .nodes()
            .flat_map(|a| t.nodes().map(move |b| (a, b)))
            .map(|(a, b)| t.hop_distance(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 8);
    }

    #[test]
    fn torus_route_crossing_dateline_is_lo_then_hi() {
        let t = Topo::torus(8, 8);
        // 6 → 1 eastbound: crosses the 7→0 wrap link.
        let (dir, class) = t.min_route(t.node_at(6, 0), t.node_at(1, 0));
        assert_eq!((dir, class), (Direction::East, VcClass::Lo));
        // After the wrap (now at x=0) the date line is behind us.
        let (dir, class) = t.min_route(t.node_at(0, 0), t.node_at(1, 0));
        assert_eq!((dir, class), (Direction::East, VcClass::Hi));
        // Non-wrapping route is Hi from the start.
        let (dir, class) = t.min_route(t.node_at(1, 0), t.node_at(3, 0));
        assert_eq!((dir, class), (Direction::East, VcClass::Hi));
        // Westbound wrap: 1 → 6 crosses 0→7.
        let (dir, class) = t.min_route(t.node_at(1, 0), t.node_at(6, 0));
        assert_eq!((dir, class), (Direction::West, VcClass::Lo));
    }

    #[test]
    fn torus_ties_break_east_and_south() {
        let t = Topo::torus(4, 4);
        // Distance 2 both ways on a 4-ring: positive direction wins.
        let (dir, _) = t.min_route(t.node_at(0, 0), t.node_at(2, 0));
        assert_eq!(dir, Direction::East);
        let (dir, _) = t.min_route(t.node_at(0, 0), t.node_at(0, 2));
        assert_eq!(dir, Direction::South);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn one_wide_torus_panics() {
        let _ = Torus::new(1, 4);
    }

    #[test]
    fn folded_torus_matches_torus_logically() {
        let f = Topo::ftorus(4, 6);
        let t = Topo::torus(4, 6);
        for node in f.nodes() {
            for dir in Direction::ALL {
                assert_eq!(f.neighbor(node, dir), t.neighbor(node, dir));
            }
            for dst in f.nodes() {
                assert_eq!(f.min_route(node, dst), t.min_route(node, dst));
                assert_eq!(f.hop_distance(node, dst), t.hop_distance(node, dst));
            }
        }
        assert_ne!(f.encode(), t.encode());
        assert_ne!(f, t);
    }

    // ---- 3D mesh ----

    #[test]
    fn mesh3d_neighbors_are_symmetric() {
        let t = Topo::mesh3d(3, 4, 2);
        for node in t.nodes() {
            for dir in Direction::COMPASS3D {
                if let Some(n) = t.neighbor(node, dir) {
                    assert_eq!(t.neighbor(n, dir.opposite()), Some(node));
                }
            }
        }
    }

    #[test]
    fn mesh3d_vertical_links_jump_one_layer() {
        let t = Topo::mesh3d(4, 4, 3);
        // (1, 2, z) ↔ (1, 2, z+1): indices differ by one layer (16).
        let a = NodeId(1 + 2 * 4);
        let b = t.neighbor(a, Direction::Up).unwrap();
        assert_eq!(b, NodeId(a.0 + 16));
        assert_eq!(t.neighbor(b, Direction::Down), Some(a));
        assert_eq!(t.neighbor(a, Direction::Down), None); // bottom layer
        let top = NodeId(a.0 + 32);
        assert_eq!(t.neighbor(top, Direction::Up), None); // top layer
    }

    #[test]
    fn mesh3d_hop_distance_is_3d_manhattan() {
        let t = Topo::mesh3d(4, 4, 4);
        let a = NodeId(0);
        let b = NodeId((3 * 4 + 3) * 4 + 3); // (3, 3, 3)
        assert_eq!(t.hop_distance(a, b), 9);
    }

    #[test]
    fn mesh3d_routes_x_then_y_then_z() {
        let t = Topo::mesh3d(3, 3, 3);
        let at = |x: u16, y: u16, z: u16| NodeId((z * 3 + y) * 3 + x);
        let dst = at(2, 2, 2);
        assert_eq!(t.min_route(at(0, 0, 0), dst).0, Direction::East);
        assert_eq!(t.min_route(at(2, 0, 0), dst).0, Direction::South);
        assert_eq!(t.min_route(at(2, 2, 0), dst).0, Direction::Up);
        assert_eq!(t.min_route(dst, at(2, 2, 0)).0, Direction::Down);
        assert_eq!(t.min_route(dst, dst).0, Direction::Local);
    }

    #[test]
    fn mesh3d_projection_is_row_major() {
        let t = Topo::mesh3d(3, 2, 4);
        assert_eq!(t.width(), 3);
        assert_eq!(t.height(), 8);
        for node in t.nodes() {
            let c = t.coord(node);
            assert_eq!(t.node_at(c.x, c.y), node);
        }
    }

    // ---- capacity boundaries (u16 node ids) ----

    #[test]
    fn radix_32_and_stacked_configs_fit() {
        assert_eq!(Topo::mesh(16, 16).num_nodes(), 256);
        assert_eq!(Topo::torus(16, 16).num_nodes(), 256);
        assert_eq!(Topo::mesh(32, 32).num_nodes(), 1024);
        assert_eq!(Topo::torus(32, 32).num_nodes(), 1024);
        assert_eq!(Topo::mesh3d(8, 8, 4).num_nodes(), 256);
        assert_eq!(Topo::mesh3d(16, 16, 4).num_nodes(), 1024);
    }

    #[test]
    fn capacity_boundary_is_inclusive() {
        // 65536 nodes still index as 0..=65535 in a u16.
        assert_eq!(Mesh::new(256, 256).num_nodes(), 65536);
        assert_eq!(Mesh3d::new(64, 64, 16).num_nodes(), 65536);
        let big = Topo::mesh(256, 256);
        assert_eq!(big.coord(NodeId(u16::MAX)), Coord { x: 255, y: 255 });
    }

    #[test]
    fn radix_32x32_and_8x8x4_configurations_work() {
        // The radix points the campaign layer targets, exercised
        // end-to-end through the u16 node-id space: indexing round
        // trips, wrap links close the rings, and minimal routes walk
        // to their destination in exactly `hop_distance` hops.
        let zoo = [
            Topo::mesh(32, 32),
            Topo::torus(32, 32),
            Topo::ftorus(32, 32),
            Topo::mesh3d(8, 8, 4),
        ];
        for topo in zoo {
            assert!(topo.num_nodes() <= u16::MAX as usize + 1);
            for node in topo.nodes() {
                let c = topo.coord(node);
                assert_eq!(topo.node_at(c.x, c.y), node, "{}", topo.encode());
            }
            // Walk a few long diagonals: every hop lands on a
            // neighbor and the walk length matches `hop_distance`.
            let n = topo.num_nodes() as u16;
            for (a, b) in [(0, n - 1), (1, n / 2), (n / 3, n - 2)] {
                let (src, dst) = (NodeId(a), NodeId(b));
                let mut cur = src;
                let mut hops = 0u16;
                while cur != dst {
                    let (dir, _) = topo.min_route(cur, dst);
                    cur = topo.neighbor(cur, dir).expect("route follows a live link");
                    hops += 1;
                    assert!(hops <= 2 * n, "runaway route on {}", topo.encode());
                }
                assert_eq!(hops, topo.hop_distance(src, dst), "{}", topo.encode());
            }
        }
        // Wrap links close the 32-rings: the west neighbor of the
        // origin is the east rim, one hop (not 31) away.
        let torus = Topo::torus(32, 32);
        assert_eq!(torus.neighbor(NodeId(0), Direction::West), Some(NodeId(31)));
        assert_eq!(torus.hop_distance(NodeId(0), NodeId(31)), 1);
        // The 8×8×4 vertical stack links layer 0 to layer 3 in 3 hops.
        let m3 = Topo::mesh3d(8, 8, 4);
        assert_eq!(m3.neighbor(NodeId(0), Direction::Up), Some(NodeId(64)));
        assert_eq!(m3.hop_distance(NodeId(0), NodeId(3 * 64)), 3);
    }

    #[test]
    #[should_panic(expected = "too large for u16")]
    fn over_capacity_mesh_panics() {
        let _ = Mesh::new(257, 256);
    }

    #[test]
    #[should_panic(expected = "too large for u16")]
    fn over_capacity_mesh3d_panics() {
        let _ = Mesh3d::new(64, 64, 17);
    }

    // ---- encode / parse ----

    #[test]
    fn encode_parse_round_trip() {
        let topos = [
            Topo::mesh(8, 8),
            Topo::mesh(255, 257),
            Topo::torus(16, 16),
            Topo::ftorus(4, 6),
            Topo::mesh3d(8, 8, 4),
        ];
        for t in topos {
            assert_eq!(Topo::parse(&t.encode()), Ok(t), "{}", t.encode());
        }
        assert_eq!(Topo::mesh(8, 8).encode(), "8x8");
        assert_eq!(Topo::torus(16, 16).encode(), "torus:16x16");
        assert_eq!(Topo::ftorus(4, 6).encode(), "ftorus:4x6");
        assert_eq!(Topo::mesh3d(8, 8, 4).encode(), "3d:8x8x4");
    }

    #[test]
    fn parse_rejects_malformed_strings() {
        for bad in [
            "",
            "8",
            "8x",
            "x8",
            "8x8x8",
            "torus:",
            "torus:8",
            "torus:1x4",
            "3d:4x4",
            "3d:0x4x4",
            "3d:64x64x17",
            "257x256",
            "mesh:8x8",
            "8 x 8",
        ] {
            assert!(Topo::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn debug_delegates_to_inner_type() {
        assert_eq!(
            format!("{:?}", Topo::mesh(4, 4)),
            "Mesh { width: 4, height: 4 }"
        );
        assert_eq!(
            format!("{:?}", Topo::torus(4, 4)),
            "Torus { width: 4, height: 4 }"
        );
        assert_eq!(
            format!("{:?}", Topo::ftorus(4, 4)),
            "FoldedTorus { width: 4, height: 4 }"
        );
        assert_eq!(
            format!("{:?}", Topo::mesh3d(4, 4, 2)),
            "Mesh3d { width: 4, height: 4, depth: 2 }"
        );
    }

    #[test]
    fn vc_class_ranges_partition() {
        for v in [2u8, 3, 4, 8] {
            let lo = VcClass::Lo.vc_range(v);
            let hi = VcClass::Hi.vc_range(v);
            assert_eq!(lo.start, 0);
            assert_eq!(lo.end, hi.start);
            assert_eq!(hi.end, v as usize);
            assert!(!lo.is_empty() && !hi.is_empty(), "v={v}");
            for vc in 0..v as usize {
                assert!(VcClass::Any.admits(vc, v));
                assert_eq!(VcClass::Lo.admits(vc, v), !VcClass::Hi.admits(vc, v));
            }
        }
    }

    #[test]
    fn min_vcs_reflects_deadlock_scheme() {
        assert_eq!(Topo::mesh(4, 4).min_vcs(), 1);
        assert_eq!(Topo::torus(4, 4).min_vcs(), 2);
        assert_eq!(Topo::ftorus(4, 4).min_vcs(), 2);
        assert_eq!(Topo::mesh3d(4, 4, 2).min_vcs(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    prop_compose! {
        fn arb_topo()(kind in 0u8..4, w in 2u16..9, h in 2u16..9, d in 1u16..5) -> Topo {
            match kind {
                0 => Topo::mesh(w, h),
                1 => Topo::torus(w, h),
                2 => Topo::ftorus(w, h),
                _ => Topo::mesh3d(w.min(5), h.min(5), d),
            }
        }
    }

    proptest! {
        #[test]
        fn any_mesh_round_trips_nodes(w in 1u16..16, h in 1u16..16) {
            let mesh = Mesh::new(w, h);
            for node in mesh.nodes() {
                let c = mesh.coord(node);
                prop_assert_eq!(mesh.node_at(c.x, c.y), node);
            }
        }

        #[test]
        fn hop_distance_symmetric(w in 1u16..12, h in 1u16..12, a in 0u16..144, b in 0u16..144) {
            let mesh = Mesh::new(w, h);
            let n = mesh.num_nodes() as u16;
            let a = NodeId(a % n);
            let b = NodeId(b % n);
            prop_assert_eq!(mesh.hop_distance(a, b), mesh.hop_distance(b, a));
        }

        #[test]
        fn hop_distance_triangle_inequality(a in 0u16..64, b in 0u16..64, c in 0u16..64) {
            let mesh = Mesh::new(8, 8);
            let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
            prop_assert!(
                mesh.hop_distance(a, c) <= mesh.hop_distance(a, b) + mesh.hop_distance(b, c)
            );
        }

        /// Any topology: neighbors are symmetric, hop distance is a
        /// metric on samples, and the minimal route steps onto a real
        /// neighbor while strictly decreasing the distance.
        #[test]
        fn zoo_min_route_decreases_distance(topo in arb_topo(), a in 0usize..512, b in 0usize..512) {
            let n = topo.num_nodes();
            let (a, b) = (NodeId((a % n) as u16), NodeId((b % n) as u16));
            prop_assert_eq!(topo.hop_distance(a, b), topo.hop_distance(b, a));
            let mut current = a;
            let mut steps = 0u32;
            while current != b {
                let before = topo.hop_distance(current, b);
                let (dir, _) = topo.min_route(current, b);
                prop_assert_ne!(dir, Direction::Local);
                current = topo.neighbor(current, dir).expect("route stays on topology");
                prop_assert_eq!(topo.hop_distance(current, b), before - 1);
                steps += 1;
                prop_assert!(steps as usize <= n, "route did not converge");
            }
            let (dir, class) = topo.min_route(b, b);
            prop_assert_eq!((dir, class), (Direction::Local, VcClass::Any));
        }

        /// Any topology: every compass neighbor is symmetric and
        /// `NeighborTable` agrees with direct adjacency.
        #[test]
        fn zoo_neighbors_symmetric(topo in arb_topo()) {
            let table = NeighborTable::new(topo);
            for node in topo.nodes() {
                for &dir in topo.compass() {
                    let n = topo.neighbor(node, dir);
                    prop_assert_eq!(table.get(node, dir), n);
                    if let Some(n) = n {
                        prop_assert_eq!(topo.neighbor(n, dir.opposite()), Some(node));
                    }
                }
            }
        }

        /// Encode/parse round-trips for arbitrary zoo members.
        #[test]
        fn zoo_encode_round_trips(topo in arb_topo()) {
            prop_assert_eq!(Topo::parse(&topo.encode()), Ok(topo));
        }
    }
}
