//! Reference router: the deliberately simple per-router pipeline state.
//!
//! This is a by-value re-implementation of the optimized router in
//! `noc_sim::router` with none of its performance machinery: flits are
//! stored by value in `VecDeque` FIFOs (no arena handles), there are no
//! pipeline-stage skip counters, and every stage scans every VC every
//! cycle. Obviously correct beats fast here — the differential oracle
//! diffs this model against the optimized kernel.

use noc_coding::arq::{RetransmitBuffer, SequenceNumber};
use noc_sim::arbiter::RoundRobinArbiter;
use noc_sim::config::NocConfig;
use noc_sim::flit::{Flit, PacketId};
use noc_sim::routing::{min_route, FaultRoutes};
use noc_sim::topology::{Direction, NodeId, Topo, VcClass};
use std::collections::VecDeque;

/// A flit resident in an input VC buffer, stamped with its arrival cycle
/// so the pipeline can enforce the buffer-write stage.
#[derive(Debug, Clone)]
pub(crate) struct BufferedFlit {
    pub flit: Flit,
    pub arrived_at: u64,
}

/// Input VC pipeline state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VcState {
    /// No packet assigned.
    Idle,
    /// Route computed; awaiting an output VC.
    NeedsVa {
        out_port: Direction,
        /// Date-line VC class the hop must allocate from ([`VcClass::Any`]
        /// off-torus and in fault-adaptive mode).
        class: VcClass,
        packet: PacketId,
    },
    /// Output VC held; flits flow through SA.
    Active {
        out_port: Direction,
        out_vc: u8,
        packet: PacketId,
    },
}

/// One input virtual channel.
#[derive(Debug, Clone)]
pub(crate) struct InputVc {
    pub fifo: VecDeque<BufferedFlit>,
    pub state: VcState,
    /// Go-back-N gate: when a flit with this sequence number was rejected,
    /// later flits on this VC are auto-rejected until its retransmission
    /// arrives (preserves per-VC flit order under hop-level ARQ).
    pub awaiting_retx: Option<SequenceNumber>,
}

impl InputVc {
    fn new() -> Self {
        Self {
            fifo: VecDeque::new(),
            state: VcState::Idle,
            awaiting_retx: None,
        }
    }

    /// An input VC counts as occupied for the buffer-utilization feature
    /// when it holds flits or an active packet.
    pub(crate) fn occupied(&self) -> bool {
        !self.fifo.is_empty() || self.state != VcState::Idle
    }
}

/// Credit/allocation state of one output VC.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutputVc {
    pub allocated: bool,
    pub credits: u8,
}

/// A NACKed flit waiting for priority resend on its output port.
#[derive(Debug, Clone)]
pub(crate) struct PendingRetransmit {
    pub flit: Flit,
    pub out_vc: u8,
    pub seq: SequenceNumber,
}

/// One output port: its VC credit state, the ARQ retransmit buffer, and
/// the link-busy horizon used by operation modes 2 and 3.
#[derive(Debug, Clone)]
pub(crate) struct OutputPort {
    pub vcs: Vec<OutputVc>,
    /// Earliest cycle at which the port may transmit again.
    pub next_free: u64,
    /// Copies of unacknowledged flits sent on ECC-enabled links.
    pub retx_buffer: RetransmitBuffer<(Flit, u8)>,
    /// NACKed flits queued for priority resend.
    pub retx_pending: VecDeque<PendingRetransmit>,
}

/// A reference router: one input port of `V` VCs and one output port per
/// topology direction, plus the arbiters for VA and SA.
#[derive(Debug, Clone)]
pub struct RefRouter {
    pub(crate) id: NodeId,
    /// `inputs[port][vc]`.
    pub(crate) inputs: Vec<Vec<InputVc>>,
    /// `outputs[port]`.
    pub(crate) outputs: Vec<OutputPort>,
    /// Per output port, over `NUM_PORTS * V` flattened input VCs.
    pub(crate) va_arbiters: Vec<RoundRobinArbiter>,
    /// Per input port, over its `V` VCs.
    pub(crate) sa_input_arbiters: Vec<RoundRobinArbiter>,
    /// Per output port, over the input ports.
    pub(crate) sa_output_arbiters: Vec<RoundRobinArbiter>,
    /// VCs per port (for the date-line class ranges).
    vcs_per_port: u8,
}

impl RefRouter {
    /// Builds an empty router for node `id` under `config`.
    pub(crate) fn new(id: NodeId, config: &NocConfig) -> Self {
        let v = config.vcs_per_port as usize;
        let num_ports = config.mesh.num_ports();
        let inputs = (0..num_ports)
            .map(|_| (0..v).map(|_| InputVc::new()).collect())
            .collect();
        let outputs = (0..num_ports)
            .map(|p| OutputPort {
                vcs: (0..v)
                    .map(|_| OutputVc {
                        allocated: false,
                        // The ejection port drains into the core; model it
                        // as never back-pressured.
                        credits: if p == Direction::Local.index() {
                            u8::MAX
                        } else {
                            config.vc_depth
                        },
                    })
                    .collect(),
                next_free: 0,
                retx_buffer: RetransmitBuffer::new(config.retransmit_buffer_depth),
                retx_pending: VecDeque::new(),
            })
            .collect();
        Self {
            id,
            inputs,
            outputs,
            va_arbiters: (0..num_ports)
                .map(|_| RoundRobinArbiter::new(num_ports * v))
                .collect(),
            sa_input_arbiters: (0..num_ports).map(|_| RoundRobinArbiter::new(v)).collect(),
            sa_output_arbiters: (0..num_ports)
                .map(|_| RoundRobinArbiter::new(num_ports))
                .collect(),
            vcs_per_port: config.vcs_per_port,
        }
    }

    /// Number of currently occupied input VCs (the RL buffer-utilization
    /// feature).
    pub fn occupied_input_vcs(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|port| port.iter())
            .filter(|vc| vc.occupied())
            .count()
    }

    /// Route computation: idle input VCs whose head flit has completed its
    /// buffer-write stage compute their output port — via minimal
    /// dimension-ordered routing (with its date-line VC class on tori),
    /// or, once hard faults are active, via the fault-adaptive up*/down*
    /// table (class `Any`: the fault tree is deadlock-free by
    /// construction).
    ///
    /// A head flit whose destination is unreachable on the live topology
    /// keeps its VC idle and reports its packet id into `doomed`; the
    /// network purges every flit of that packet right after the RC phase.
    pub(crate) fn rc_stage(
        &mut self,
        cycle: u64,
        mesh: Topo,
        fault: Option<&FaultRoutes>,
        doomed: &mut Vec<(PacketId, bool)>,
    ) {
        for port in &mut self.inputs {
            for vc in port.iter_mut() {
                if vc.state != VcState::Idle {
                    continue;
                }
                let Some(front) = vc.fifo.front() else {
                    continue;
                };
                if front.arrived_at >= cycle {
                    continue; // still in the BW stage
                }
                debug_assert!(
                    front.flit.kind.is_head(),
                    "non-head flit {:?} at front of idle VC",
                    front.flit.kind
                );
                let (out_port, class) = match fault {
                    None => min_route(mesh, self.id, front.flit.dst),
                    Some(f) => match f.next_hop(self.id, front.flit.dst) {
                        Some(dir) => (dir, VcClass::Any),
                        None => {
                            doomed.push((front.flit.packet, !front.flit.class.is_control()));
                            continue;
                        }
                    },
                };
                vc.state = VcState::NeedsVa {
                    out_port,
                    class,
                    packet: front.flit.packet,
                };
            }
        }
    }

    /// Virtual-channel allocation: one grant per output port per cycle.
    ///
    /// Returns the number of allocations performed (for the power model).
    pub(crate) fn va_stage(&mut self) -> u64 {
        let v = self.inputs[0].len();
        let num_ports = self.inputs.len();
        let mut allocations = 0;
        for out_p in 0..num_ports {
            // One grant per output port per cycle: the first class (in
            // Any, Lo, Hi order) with both a requester and a free output
            // VC in its admissible range competes; off-torus every
            // requester is `Any` over the full range, so this degenerates
            // to the classic first-free-VC scan.
            let mut chosen = None;
            for class in VcClass::ALL {
                let wanted = self.inputs.iter().flatten().any(|vc| {
                    matches!(vc.state, VcState::NeedsVa { out_port, class: c, .. }
                        if out_port.index() == out_p && c == class)
                });
                if !wanted {
                    continue;
                }
                let range = class.vc_range(self.vcs_per_port);
                if let Some(free) = self.outputs[out_p].vcs[range.clone()]
                    .iter()
                    .position(|o| !o.allocated)
                {
                    chosen = Some((class, range.start + free));
                    break;
                }
            }
            let Some((granted_class, free_vc)) = chosen else {
                continue;
            };
            // Gather requesting input VCs of the granted class
            // (flattened index).
            let mut requests = vec![false; num_ports * v];
            for (in_p, port) in self.inputs.iter().enumerate() {
                for (in_v, vc) in port.iter().enumerate() {
                    if matches!(vc.state, VcState::NeedsVa { out_port, class, .. }
                        if out_port.index() == out_p && class == granted_class)
                    {
                        requests[in_p * v + in_v] = true;
                    }
                }
            }
            let winner = self.va_arbiters[out_p]
                .grant(&requests)
                .expect("a request was asserted");
            let (in_p, in_v) = (winner / v, winner % v);
            let VcState::NeedsVa { packet, .. } = self.inputs[in_p][in_v].state else {
                unreachable!("VA winner must be in NeedsVa");
            };
            self.inputs[in_p][in_v].state = VcState::Active {
                out_port: Direction::from_index(out_p),
                out_vc: free_vc as u8,
                packet,
            };
            self.outputs[out_p].vcs[free_vc].allocated = true;
            allocations += 1;
        }
        allocations
    }
}
