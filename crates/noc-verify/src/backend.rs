//! [`SimBackend`] implementation for the reference engine, plus the
//! deliberately broken backend used to prove the oracle has teeth.

use crate::refnet::RefNetwork;
use crate::refproto::RefProtocol;
use noc_fault::timing::TimingErrorModel;
use noc_fault::variation::VariationMap;
use noc_sim::config::NocConfig;
use noc_sim::network::{HardFaultEvent, Network};
use noc_sim::stats::{EventCounters, NetworkStats, RouterEpochStats};
use noc_sim::topology::NodeId;
use rlnoc_core::backend::{BatchSimBackend, SimBackend};
use rlnoc_core::modes::OperationMode;
use rlnoc_core::protocol::FaultTolerantProtocol;
use rlnoc_telemetry::Telemetry;

/// The reference data plane: [`RefNetwork`] over [`RefProtocol`],
/// plugged into the production experiment pipeline via
/// [`Experiment::run_with_backend`](rlnoc_core::experiment::Experiment::run_with_backend).
#[derive(Debug)]
pub struct ReferenceBackend {
    net: RefNetwork<RefProtocol>,
}

impl SimBackend for ReferenceBackend {
    fn build(
        noc: NocConfig,
        timing: TimingErrorModel,
        variation: VariationMap,
        protocol_seed: u64,
        network_seed: u64,
    ) -> Self {
        let protocol = RefProtocol::new(noc.mesh, timing, variation, protocol_seed);
        Self {
            net: RefNetwork::new(noc, protocol, network_seed),
        }
    }

    fn set_telemetry(&mut self, _telemetry: &Telemetry) {
        // Telemetry is observation-only by contract; the reference
        // engine simply observes nothing.
    }

    fn set_hard_faults(&mut self, events: Vec<HardFaultEvent>) {
        self.net.set_hard_faults(events);
    }

    fn cycle(&self) -> u64 {
        self.net.cycle()
    }

    fn offer(&mut self, src: NodeId, dst: NodeId) {
        self.net.offer(src, dst);
    }

    fn step(&mut self) {
        self.net.step();
    }

    fn is_quiescent(&self) -> bool {
        self.net.is_quiescent()
    }

    fn stats(&self) -> &NetworkStats {
        self.net.stats()
    }

    fn reset_stats(&mut self) {
        self.net.reset_stats();
    }

    fn epoch_stats(&self) -> &[RouterEpochStats] {
        self.net.epoch_stats()
    }

    fn reset_epoch_stats(&mut self) {
        self.net.reset_epoch_stats();
    }

    fn counters(&self) -> &[EventCounters] {
        self.net.counters()
    }

    fn raw_error_probabilities(&self) -> Vec<f64> {
        self.net.protocol().raw_error_probabilities()
    }

    fn set_mode(&mut self, node: usize, mode: OperationMode) {
        self.net.protocol_mut().set_mode(node, mode);
    }

    fn set_all_modes(&mut self, mode: OperationMode) {
        self.net.protocol_mut().set_all_modes(mode);
    }

    fn set_temperatures(&mut self, temps: &[f64]) {
        self.net.protocol_mut().set_temperatures(temps);
    }

    fn set_utilizations(&mut self, utils: &[f64]) {
        self.net.protocol_mut().set_utilizations(utils);
    }
}

/// The reference engine can serve as a `BatchSim` lane too — it shares
/// nothing (every lane rebuilds its own tables), which is exactly the
/// degenerate sharing the behavioral contract allows. This keeps the
/// batched driver itself inside the differential oracle's reach.
impl BatchSimBackend for ReferenceBackend {
    type Shared = ();

    fn make_shared(_noc: &NocConfig) -> Self::Shared {}

    fn build_with_shared(
        _shared: &Self::Shared,
        noc: NocConfig,
        timing: TimingErrorModel,
        variation: VariationMap,
        protocol_seed: u64,
        network_seed: u64,
    ) -> Self {
        <Self as SimBackend>::build(noc, timing, variation, protocol_seed, network_seed)
    }
}

/// A production backend with one planted bug: router 0's temperature
/// update is dropped, so its fault probability goes stale — the
/// stale-cache defect class the epoch-cached probability optimization
/// could plausibly introduce. Exists so tests can prove the
/// differential oracle detects a real (injected) divergence.
#[derive(Debug)]
pub struct StaleTemperatureBackend {
    net: Network<FaultTolerantProtocol>,
}

impl SimBackend for StaleTemperatureBackend {
    fn build(
        noc: NocConfig,
        timing: TimingErrorModel,
        variation: VariationMap,
        protocol_seed: u64,
        network_seed: u64,
    ) -> Self {
        Self {
            net: <Network<FaultTolerantProtocol> as SimBackend>::build(
                noc,
                timing,
                variation,
                protocol_seed,
                network_seed,
            ),
        }
    }

    fn set_telemetry(&mut self, telemetry: &Telemetry) {
        SimBackend::set_telemetry(&mut self.net, telemetry);
    }

    fn set_hard_faults(&mut self, events: Vec<HardFaultEvent>) {
        SimBackend::set_hard_faults(&mut self.net, events);
    }

    fn cycle(&self) -> u64 {
        SimBackend::cycle(&self.net)
    }

    fn offer(&mut self, src: NodeId, dst: NodeId) {
        SimBackend::offer(&mut self.net, src, dst);
    }

    fn step(&mut self) {
        SimBackend::step(&mut self.net);
    }

    fn is_quiescent(&self) -> bool {
        SimBackend::is_quiescent(&self.net)
    }

    fn stats(&self) -> &NetworkStats {
        SimBackend::stats(&self.net)
    }

    fn reset_stats(&mut self) {
        SimBackend::reset_stats(&mut self.net);
    }

    fn epoch_stats(&self) -> &[RouterEpochStats] {
        SimBackend::epoch_stats(&self.net)
    }

    fn finish_epoch(&mut self) {
        SimBackend::finish_epoch(&mut self.net);
    }

    fn reset_epoch_stats(&mut self) {
        SimBackend::reset_epoch_stats(&mut self.net);
    }

    fn counters(&self) -> &[EventCounters] {
        SimBackend::counters(&self.net)
    }

    fn raw_error_probabilities(&self) -> Vec<f64> {
        SimBackend::raw_error_probabilities(&self.net)
    }

    fn set_mode(&mut self, node: usize, mode: OperationMode) {
        SimBackend::set_mode(&mut self.net, node, mode);
    }

    fn set_all_modes(&mut self, mode: OperationMode) {
        SimBackend::set_all_modes(&mut self.net, mode);
    }

    fn set_temperatures(&mut self, temps: &[f64]) {
        // The bug: node 0 keeps its construction-time temperature.
        let mut stale = temps.to_vec();
        stale[0] = 50.0;
        SimBackend::set_temperatures(&mut self.net, &stale);
    }

    fn set_utilizations(&mut self, utils: &[f64]) {
        SimBackend::set_utilizations(&mut self.net, utils);
    }
}
