//! Verification harness for the RL-NoC simulator stack.
//!
//! The optimized data plane (`noc-sim` + `rlnoc-core`) claims
//! *bit-identical* behavior to its pre-optimization form. This crate
//! makes that claim continuously checkable with three instruments:
//!
//! * **A reference model** — [`refnet::RefNetwork`] over
//!   [`refproto::RefProtocol`] and [`refrouter::RefRouter`]: a
//!   deliberately slow, obviously-correct re-implementation of the cycle
//!   semantics (by-value flits, `HashMap` bookkeeping, bitwise
//!   SECDED/CRC oracles, no caches, no skip counters) that plugs into
//!   the production experiment pipeline through the
//!   [`SimBackend`](rlnoc_core::backend::SimBackend) seam.
//! * **A differential driver** — [`diff`] runs randomly generated
//!   [`FuzzCase`](rlnoc_core::fuzzcase::FuzzCase)s on both engines,
//!   demands bit-identical [`ExperimentReport`](rlnoc_core::ExperimentReport)s,
//!   and greedily shrinks any failure to a minimal replayable case file.
//! * **Runtime invariant checkers** — compiled into `noc-sim`/`noc-rl`
//!   behind their `verify` features (forwarded by this crate's `verify`
//!   feature) and armed at runtime with `RLNOC_VERIFY=1`: flit-arena
//!   conservation, credit conservation, ARQ window sanity, and a
//!   no-progress watchdog.
//!
//! The `verify_fuzz` binary drives all of it, with a `--budget` mode
//! sized for CI. See DESIGN.md §10 for the architecture and README
//! "Correctness" for replay instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod diff;
pub mod refnet;
pub mod refproto;
pub mod refrouter;
pub mod reftree;

pub use backend::{ReferenceBackend, StaleTemperatureBackend};
pub use diff::{
    batch_sample_width, run_case, run_case_batched, run_case_with, shrink, shrink_divergence,
    CaseOutcome,
};
pub use refnet::RefNetwork;
pub use refproto::RefProtocol;
pub use refrouter::RefRouter;
pub use reftree::{RefNode, RefTree};
