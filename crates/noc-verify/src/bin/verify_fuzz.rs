//! Deterministic differential fuzzer.
//!
//! Generates `FuzzCase`s from a SplitMix64 case stream, runs each on the
//! optimized kernel and the reference model in parallel, and fails loudly
//! on the first report divergence — after shrinking it to a minimal
//! replayable case file. Every eighth case additionally re-runs as a
//! batched `BatchSim` replicate group (widths cycling 2/4/8) and every
//! lane is diffed against its serial run.
//!
//! ```text
//! verify_fuzz [--seed N] [--cases N] [--budget 60s] [--jobs N]
//!             [--out DIR] [--replay FILE]
//! ```
//!
//! * `--cases N`   run exactly N cases (default 200).
//! * `--budget T`  time-budget mode for CI: run batches until `T`
//!   elapses (suffix `s`/`m`; plain number = seconds). Overrides
//!   `--cases` as the stopping rule but still runs at least one batch.
//! * `--replay F`  run a single saved case file and report its diffs.
//! * `--out DIR`   where to write `divergence.case` on failure
//!   (default `.`).
//!
//! Exit status: 0 = all cases agree; 1 = divergence (case file written);
//! 2 = usage or I/O error.

use rlnoc_core::fuzzcase::FuzzCase;
use rlnoc_telemetry::Telemetry;
use rlnoc_verify::diff::{batch_sample_width, run_case, run_case_batched, shrink_divergence};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct Options {
    seed: u64,
    cases: u64,
    budget: Option<Duration>,
    jobs: usize,
    out: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_budget(text: &str) -> Result<Duration, String> {
    let (num, mult) = if let Some(rest) = text.strip_suffix('m') {
        (rest, 60.0)
    } else if let Some(rest) = text.strip_suffix('s') {
        (rest, 1.0)
    } else {
        (text, 1.0)
    };
    num.parse::<f64>()
        .map(|v| Duration::from_secs_f64(v * mult))
        .map_err(|_| format!("bad duration `{text}` (try `60s` or `2m`)"))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 0x5EED_F022,
        cases: 200,
        budget: None,
        jobs: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        out: PathBuf::from("."),
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--cases" => opts.cases = value("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--budget" => opts.budget = Some(parse_budget(&value("--budget")?)?),
            "--jobs" => opts.jobs = value("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--replay" => opts.replay = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => {
                println!(
                    "verify_fuzz [--seed N] [--cases N] [--budget 60s] [--jobs N] \
                     [--out DIR] [--replay FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Runs one batch of case indices in parallel; returns the first
/// divergent outcome by case index, if any.
fn run_batch(
    seed: u64,
    range: std::ops::Range<u64>,
    jobs: usize,
) -> Option<rlnoc_verify::CaseOutcome> {
    let telemetry = Telemetry::disabled();
    let indices: Vec<u64> = range.collect();
    let outcomes = rlnoc_runner::pool::run_indexed(indices, jobs, &telemetry, |_, i| {
        let case = FuzzCase::generate(seed, i);
        let outcome = run_case(&case);
        if !outcome.agrees() {
            return outcome;
        }
        // Sampled cases additionally re-run as a batched replicate
        // group, folding the BatchSim engine into the default stream.
        match batch_sample_width(i) {
            Some(lanes) => run_case_batched(&case, lanes),
            None => outcome,
        }
    });
    outcomes.into_iter().find(|o| !o.agrees())
}

fn report_divergence(outcome: &rlnoc_verify::CaseOutcome, out_dir: &Path) -> i32 {
    eprintln!("DIVERGENCE on case: {}", outcome.case);
    for d in &outcome.diffs {
        eprintln!("  {d}");
    }
    eprintln!("shrinking…");
    let minimal = shrink_divergence(&outcome.case, 64);
    let path = out_dir.join("divergence.case");
    match std::fs::write(&path, minimal.to_text()) {
        Ok(()) => {
            eprintln!("minimal case: {minimal}");
            eprintln!(
                "written to {} — replay with `verify_fuzz --replay {0}`",
                path.display()
            );
            1
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            2
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("verify_fuzz: {e}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let case = match FuzzCase::from_text(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        println!("replaying: {case}");
        let outcome = run_case(&case);
        if outcome.agrees() {
            println!("backends agree: reports are bit-identical");
            return;
        }
        eprintln!("backends diverge:");
        for d in &outcome.diffs {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }

    let start = Instant::now();
    // Batch size balances pool utilization against budget granularity.
    let batch = (opts.jobs as u64 * 8).max(32);
    let mut done = 0u64;
    loop {
        let n = match opts.budget {
            Some(_) => batch,
            None => batch.min(opts.cases - done),
        };
        if n == 0 {
            break;
        }
        if let Some(bad) = run_batch(opts.seed, done..done + n, opts.jobs) {
            std::process::exit(report_divergence(&bad, &opts.out));
        }
        done += n;
        println!(
            "{done} cases agree ({:.1}s elapsed)",
            start.elapsed().as_secs_f64()
        );
        match opts.budget {
            Some(budget) => {
                if start.elapsed() >= budget {
                    break;
                }
            }
            None => {
                if done >= opts.cases {
                    break;
                }
            }
        }
    }
    println!(
        "OK: {done} differential cases, zero divergence, {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
